#!/usr/bin/env python3
"""Istio's bookinfo as an application graph (repro.graph).

    productpage ──▶ details
        │
        └─────────▶ reviews ──▶ ratings

Four services, three RPC edges, each edge carrying its own element
chain — the smallest graph that exercises fan-out *and* a two-hop
deadline chain. The topology lives in ``bookinfo.graph.json`` (the
same spec ``python -m repro graph examples/bookinfo.graph.json``
loads); this script walks it through placement, the graph runtime, and
a short mesh workload, then shows the deadline budget shrinking hop by
hop: the productpage edges carry 40 ms, and by the time a request
reaches ratings only what productpage→reviews left over remains.

Run:  python examples/bookinfo.py
"""

import pathlib

from repro.graph import (
    MESH_SCHEMA,
    ServiceGraph,
    check_deadline_propagation,
    mesh_program,
    run_graph_scenario,
    solve_graph_placement,
)

SPEC = pathlib.Path(__file__).with_name("bookinfo.graph.json")


def main() -> None:
    graph = ServiceGraph.load(str(SPEC))
    program = mesh_program()

    print(f"graph {graph.name}: {len(graph.services)} services, "
          f"{len(graph.edges)} edges, depth {graph.depth()}")
    errors = graph.check_chains(program, MESH_SCHEMA)
    findings = check_deadline_propagation(graph, path=SPEC.name)
    print(f"validation: {len(errors)} chain error(s), "
          f"{len(findings)} lint finding(s)")

    placement = solve_graph_placement(graph, program, MESH_SCHEMA)
    for service in graph.topological_order():
        print(f"  {service:12s} on {placement.machine_of(service)}")

    # a short open-loop run: diurnal Poisson arrivals, Zipf-skewed users
    result = run_graph_scenario(
        graph=graph, base_rps=600.0, duration_s=0.3, users=1_000_000
    )
    workload = result.workload
    print(f"\nworkload: {workload.metrics.issued} issued, "
          f"goodput {result.goodput_rps:.0f} rps "
          f"({result.goodput_ratio:.1%} ok)")
    for edge in graph.edges:
        stats = result.runtime.stats(edge.src, edge.dst)
        mean_ms = (
            stats.latency_s_total / stats.calls * 1e3 if stats.calls else 0.0
        )
        budget = (
            f"{edge.deadline_budget_ms:g} ms budget"
            if edge.deadline_budget_ms is not None
            else "no budget"
        )
        print(f"  {edge.name:22s} {stats.calls:6d} calls  "
              f"{stats.ok:6d} ok  mean {mean_ms:6.3f} ms  ({budget})")

    # deadline propagation: the ratings hop runs under whatever remains
    # of the 40 ms the productpage edge stamped, never a fresh 20 ms
    ratings = result.runtime.stats("reviews", "ratings")
    expired = sum(
        count
        for token, count in ratings.aborted_by.items()
        if "Deadline" in token
    )
    print(f"\nratings hop inherits productpage's remaining budget: "
          f"{expired} call(s) arrived already expired")


if __name__ == "__main__":
    main()
