#!/usr/bin/env python3
"""The placement solver across deployment environments (paper Figure 2).

One network program — the §2 chain — realized four different ways
depending on what the environment offers: plain hosts, eBPF-capable
kernels, SmartNICs, a programmable ToR switch, or extra cores for
scale-out. The solver also *re-orders* the chain where the compiler
proves it safe, which is what unlocks switch offload (config 3).

Run:  python examples/offload_planner.py
"""

from repro import AdnCompiler, FieldType, FunctionRegistry, RpcSchema
from repro.control import ClusterSpec, PlacementRequest, solve_placement
from repro.dsl import load_stdlib
from repro.dsl.ast_nodes import ChainDecl

SECTION2 = ("LbKeyHash", "Compression", "Decompression", "AccessControl")

ENVIRONMENTS = {
    "config 1 — in-app (proxyless)": dict(
        strategy="inapp", cluster=ClusterSpec()
    ),
    "config 2 — kernel + SmartNIC": dict(
        strategy="offload",
        cluster=ClusterSpec(smartnics=True, programmable_switch=False),
    ),
    "config 3 — programmable switch": dict(
        strategy="offload",
        cluster=ClusterSpec(smartnics=True, programmable_switch=True),
    ),
    "config 4 — scale-out engines": dict(
        strategy="scaleout", replicas=4, cluster=ClusterSpec()
    ),
}


def main() -> None:
    schema = RpcSchema.of(
        "objectstore",
        payload=FieldType.BYTES,
        username=FieldType.STR,
        obj_id=FieldType.INT,
    )
    registry = FunctionRegistry()
    program = load_stdlib(schema=schema)
    compiler = AdnCompiler(registry=registry)
    chain = compiler.compile_chain(
        ChainDecl(src="A", dst="B", elements=SECTION2), program, schema
    )

    print("chain as written :", " -> ".join(SECTION2))
    print("after optimizer  :", " -> ".join(chain.element_order))
    print()
    print("element legality matrix:")
    for name, compiled in chain.elements.items():
        print(f"  {name:14s} {', '.join(compiled.legal_backends())}")

    for label, spec in ENVIRONMENTS.items():
        plan = solve_placement(
            PlacementRequest(
                chain=chain,
                schema=schema,
                strategy=spec["strategy"],
                cluster=spec["cluster"],
                replicas=spec.get("replicas", 1),
            )
        )
        print(f"\n{label}")
        for segment in plan.segments:
            where = f"{segment.platform.value}@{segment.machine}"
            replicas = f" x{segment.replicas}" if segment.replicas > 1 else ""
            print(f"  [{where}{replicas}] {', '.join(segment.elements)}")
        print(
            f"  transport: client={plan.client_transport} "
            f"server={plan.server_transport}"
        )


if __name__ == "__main__":
    main()
