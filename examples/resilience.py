#!/usr/bin/env python3
"""Stream-shaping filters (paper §5.1): retries, timeouts, circuit
breaking — the "complex processing" the SQL elements cannot express,
declared as filter elements and composed onto the RPC path.

Scenario: a flaky backend (10% fault injection). We compare the raw
client experience against one shaped by a Retry filter, then watch a
circuit breaker protect the client during a full outage.

Run:  python examples/resilience.py
"""

from repro import AdnCompiler, FieldType, FunctionRegistry, RpcSchema
from repro.dsl import load_stdlib, parse, validate_program
from repro.dsl.ast_nodes import ChainDecl
from repro.runtime import AdnMrpcStack, wrap_circuit_breaker
from repro.runtime.message import RpcOutcome, reset_rpc_ids
from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)

#: a flakier fault element than the stdlib's, plus a retry filter
NETWORK_PROGRAM = """
element FlakyFault {
    meta { abort_probability: 0.1; }
    on request { SELECT * FROM input WHERE rand() >= 0.1; }
    on response { SELECT * FROM input; }
}

filter Retry {
    meta { max_retries: 3; retry_on: 'FlakyFault'; }
    use operator retry;
}
"""


def build_stack(sim, cluster, with_retry: bool):
    registry = FunctionRegistry()
    program = load_stdlib(schema=SCHEMA).merged(parse(NETWORK_PROGRAM))
    program = validate_program(program, schema=SCHEMA, registry=registry)
    compiler = AdnCompiler(registry=registry)
    chain = compiler.compile_chain(
        ChainDecl(src="A", dst="B", elements=("FlakyFault",)), program, SCHEMA
    )
    filters = [program.filters["Retry"]] if with_retry else None
    return AdnMrpcStack(
        sim, cluster, chain, SCHEMA, registry,
        filters=filters, filter_order=["Retry"],
    )


def run(with_retry: bool):
    reset_rpc_ids()
    sim = Simulator()
    cluster = two_machine_cluster(sim)
    stack = build_stack(sim, cluster, with_retry)
    client = ClosedLoopClient(
        sim, stack.call, concurrency=32, total_rpcs=4000, warmup_rpcs=400
    )
    return client.run()


def main() -> None:
    print("backend injects faults into 10% of requests\n")
    raw = run(with_retry=False)
    shaped = run(with_retry=True)
    print(f"{'':14s}{'aborted':>10s}{'rate krps':>12s}{'median us':>12s}")
    for label, metrics in (("raw", raw), ("with Retry", shaped)):
        print(
            f"{label:14s}{metrics.aborted:>10d}"
            f"{metrics.throughput_krps:>12.1f}"
            f"{metrics.latency.median_us():>12.1f}"
        )
    survival = 1 - shaped.aborted / shaped.completed
    print(f"\nretry filter lifts success rate to {survival * 100:.2f}% "
          f"(raw: {(1 - raw.aborted / raw.completed) * 100:.1f}%)")

    # --- circuit breaking during a total outage -----------------------
    print("\n--- circuit breaker during an outage ---")
    sim = Simulator()
    outage = {"on": True}

    def flaky_backend(**fields):
        issued = sim.now
        yield sim.timeout(100e-6)
        if outage["on"]:
            return RpcOutcome(
                request=dict(fields),
                response={"status": "aborted:Backend"},
                issued_at=issued,
                completed_at=sim.now,
                aborted_by="Backend",
            )
        return RpcOutcome(
            request=dict(fields), response={"status": "ok"},
            issued_at=issued, completed_at=sim.now,
        )

    shaped_call = wrap_circuit_breaker(
        sim, flaky_backend, failure_threshold=5, reset_ms=20.0
    )

    def one():
        outcome = yield sim.process(shaped_call())
        return outcome

    results = []
    def driver():
        for index in range(100):
            if index == 60:
                outage["on"] = False  # the backend recovers
            outcome = yield sim.process(one())
            results.append(outcome.aborted_by or "ok")
            yield sim.timeout(1e-3)

    sim.run_until_complete(sim.process(driver()), limit=10)
    short_circuited = results.count("CircuitBreaker")
    reached_backend = results.count("Backend")
    ok = results.count("ok")
    print(f"outage calls short-circuited locally : {short_circuited}")
    print(f"outage calls that hit the backend    : {reached_backend}")
    print(f"successful calls after recovery      : {ok}")
    print(f"breaker end state                    : "
          f"{shaped_call.breaker.state}")


if __name__ == "__main__":
    main()
