#!/usr/bin/env python3
"""Quickstart: define an ADN in the DSL, compile it, inspect the
generated per-platform code, and run RPCs through the simulated data
plane.

Run:  python examples/quickstart.py
"""

from repro import AdnCompiler, FieldType, FunctionRegistry, RpcSchema
from repro.dsl import load_stdlib
from repro.dsl.ast_nodes import ChainDecl
from repro.runtime import AdnMrpcStack
from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster


def main() -> None:
    # 1. The application's RPC schema: each RPC is a tuple of fields.
    schema = RpcSchema.of(
        "kv",
        payload=FieldType.BYTES,
        username=FieldType.STR,
        obj_id=FieldType.INT,
    )

    # 2. The network program: the paper's evaluation chain — every RPC
    #    is logged, access-controlled, and fault-injected. All three
    #    elements come from the standard library (each is tens of lines
    #    of SQL-like DSL; print one to see).
    program = load_stdlib(["Logging", "Acl", "Fault"], schema=schema)
    print("--- the Acl element, as the developer writes it ---")
    from repro.dsl import stdlib_source

    print(stdlib_source("Acl"))

    # 3. Compile. The compiler lowers each element to an IR, analyzes
    #    field usage, reorders/parallelizes where semantics allow, and
    #    emits code for every platform that can host each element.
    registry = FunctionRegistry()
    compiler = AdnCompiler(registry=registry)
    chain = compiler.compile_chain(
        ChainDecl(src="A", dst="B", elements=("Logging", "Acl", "Fault")),
        program,
        schema,
    )
    print("--- compiler decisions ---")
    print(f"optimized order : {' -> '.join(chain.element_order)}")
    print(f"parallel stages : {chain.ir.stages}")
    for name, compiled in chain.elements.items():
        print(f"{name:8s} can run on: {', '.join(compiled.legal_backends())}")

    print("\n--- a slice of the generated eBPF for Acl ---")
    print(
        "\n".join(
            chain.elements["Acl"].artifact("ebpf").source.splitlines()[:12]
        )
    )

    # 4. Run it: two simulated hosts, the client keeps 32 RPCs in
    #    flight; the elements really execute (denials really abort).
    sim = Simulator()
    cluster = two_machine_cluster(sim)
    stack = AdnMrpcStack(sim, cluster, chain, schema, registry)
    client = ClosedLoopClient(
        sim, stack.call, concurrency=32, total_rpcs=2000, warmup_rpcs=200
    )
    metrics = client.run()

    print("\n--- results ---")
    print(f"completed : {metrics.completed} RPCs")
    print(f"aborted   : {metrics.aborted} (ACL denials + injected faults)")
    print(f"rate      : {metrics.throughput_krps:.1f} krps")
    print(f"median    : {metrics.latency.median_us():.1f} us")
    print(f"p99       : {metrics.latency.percentile(99) * 1e6:.1f} us")

    # 5. Peek at element state on the data plane: the logger's table.
    logger_state = stack.processors[0].element_state("Logging")
    print(f"log entries recorded: {len(logger_state.table('log_tab'))}")


if __name__ == "__main__":
    main()
