#!/usr/bin/env python3
"""A three-tier microservice app, each hop with its own ADN.

frontend ──(Logging, Fault)──▶ cart ──(LbKeyHash, Acl)──▶ inventory

The cart service's handler calls inventory before answering, so one
client request exercises both chains end to end: logging at the edge,
fault injection on tier 1, key-hash load balancing and access control on
tier 2. The end-to-end latency decomposes across tiers.

Run:  python examples/three_tier.py
"""

from repro import AdnCompiler, FieldType, FunctionRegistry, RpcSchema
from repro.dsl import load_stdlib
from repro.dsl.ast_nodes import ChainDecl
from repro.runtime import AdnMrpcStack
from repro.runtime.message import reset_rpc_ids
from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster

SCHEMA = RpcSchema.of(
    "shop",
    payload=FieldType.BYTES,
    username=FieldType.STR,
    obj_id=FieldType.INT,
)


def build_chain(names, src, dst, registry):
    program = load_stdlib(schema=SCHEMA)
    compiler = AdnCompiler(registry=registry)
    return compiler.compile_chain(
        ChainDecl(src=src, dst=dst, elements=tuple(names)), program, SCHEMA
    )


def main() -> None:
    reset_rpc_ids()
    sim = Simulator()
    cluster = two_machine_cluster(sim)

    # tier 2: cart -> inventory (LB over 3 replicas + access control)
    registry2 = FunctionRegistry()
    inventory_chain = build_chain(
        ("LbKeyHash", "Acl"), "cart", "inventory", registry2
    )
    inventory_stack = AdnMrpcStack(
        sim,
        cluster,
        inventory_chain,
        SCHEMA,
        registry2,
        client_service="cart",
        server_service="inventory",
        server_replicas=3,
    )

    tier2_latencies = []

    def cart_handler(request):
        """The cart service: check inventory before confirming."""
        started = sim.now
        outcome = yield sim.process(
            inventory_stack.call(
                payload=b"reserve",
                username=request.get("username"),
                obj_id=request.get("obj_id"),
            )
        )
        tier2_latencies.append(sim.now - started)
        status = b"reserved" if outcome.ok else b"unavailable"
        return {"payload": status}

    # tier 1: frontend -> cart (logging + fault injection)
    registry1 = FunctionRegistry()
    cart_chain = build_chain(("Logging", "Fault"), "frontend", "cart", registry1)
    cart_stack = AdnMrpcStack(
        sim,
        cluster,
        cart_chain,
        SCHEMA,
        registry1,
        client_service="frontend",
        server_service="cart",
        server_handler=cart_handler,
    )

    def workload(rng, index):
        return {
            "payload": b"checkout",
            "username": "usr2" if rng.random() < 0.9 else "usr1",
            "obj_id": rng.randrange(256),
        }

    client = ClosedLoopClient(
        sim,
        cart_stack.call,
        concurrency=16,
        total_rpcs=2000,
        warmup_rpcs=200,
        fields_fn=workload,
    )
    metrics = client.run()

    # count tier-2 outcomes via the inventory stack's ACL drop counters
    acl_drops = 0
    for processor in inventory_stack.processors:
        acl_drops += processor.element_dropped.get("Acl", 0)

    print("three-tier checkout: frontend -> cart -> inventory\n")
    print(f"client RPCs completed    : {metrics.completed}")
    print(f"tier-1 fault aborts      : {metrics.aborted}")
    print(f"tier-2 ACL denials       : {acl_drops} "
          "(usr1 cannot reserve; surfaced as 'unavailable')")
    print(f"end-to-end median        : {metrics.latency.median_us():.1f} us")
    if tier2_latencies:
        tier2_median = sorted(tier2_latencies)[len(tier2_latencies) // 2]
        print(f"tier-2 share (median)    : {tier2_median * 1e6:.1f} us")
    print(f"throughput               : {metrics.throughput_krps:.1f} krps")

    log_table = None
    for processor in cart_stack.processors:
        if "Logging" in processor.segment.elements:
            log_table = processor.element_state("Logging").table("log_tab")
    print(f"tier-1 log records       : {len(log_table)}")


if __name__ == "__main__":
    main()
