#!/usr/bin/env python3
"""Disruption-free autoscaling (paper §4 Q3 / §5.2, Figure 2 config 4).

A workload spike hits an ADN processor. The controller's autoscaler
watches utilization, scales the processor out — splitting its keyed
element state across instances with a two-phase live migration — and
scales back in when the spike passes. The only data-plane impact is a
sub-millisecond routing flip; no RPC is ever dropped.

Run:  python examples/autoscaling.py
"""

from repro.control.scaling import Autoscaler, AutoscalerConfig
from repro.dsl.ast_nodes import ColumnDef, StateDecl
from repro.dsl.schema import FieldType
from repro.runtime.message import RpcOutcome
from repro.sim import Resource, Simulator, SteppedLoadClient
from repro.state.table import StateTable

SERVICE_US = 100.0
PHASES = [
    (3_000, 0.5),   # calm
    (18_000, 1.5),  # 6x spike
    (3_000, 0.5),   # calm again
]


def build_session_table(rows: int = 5000) -> StateTable:
    """The processor's keyed state (think: an LB's session affinity
    table) — what must migrate when capacity changes."""
    decl = StateDecl(
        name="sessions",
        columns=(
            ColumnDef("session_id", FieldType.INT, is_key=True),
            ColumnDef("replica", FieldType.STR),
        ),
    )
    table = StateTable(decl)
    for session_id in range(rows):
        table.insert(
            {"session_id": session_id, "replica": f"B.{session_id % 3 + 1}"}
        )
    return table


def run(autoscale: bool):
    sim = Simulator()
    engine = Resource(sim, capacity=1, name="adn-processor")
    sessions = build_session_table()

    def call(**fields):
        issued = sim.now
        yield from engine.use(SERVICE_US * 1e-6)
        return RpcOutcome(
            request={}, response={}, issued_at=issued, completed_at=sim.now
        )

    autoscaler = None
    if autoscale:
        autoscaler = Autoscaler(
            sim,
            engine,
            AutoscalerConfig(
                sample_interval_s=0.05,
                cooldown_s=0.15,
                high_watermark=0.8,
                low_watermark=0.2,
                max_capacity=4,
            ),
            stateful_tables=[sessions],
        )
        sim.process(autoscaler.run(sum(d for _r, d in PHASES)))
    client = SteppedLoadClient(sim, call, phases=PHASES)
    metrics = client.run()
    return metrics, client, autoscaler, engine, sessions


def main() -> None:
    print("workload: 3k rps -> 18k rps spike -> 3k rps; "
          f"processor serves {1e6 / SERVICE_US:.0f} rps per instance\n")

    static_metrics, static_client, _a, _e, _s = run(autoscale=False)
    auto_metrics, auto_client, autoscaler, engine, sessions = run(
        autoscale=True
    )

    def phase_line(client, label):
        cells = []
        for name, phase in zip(("calm", "spike", "calm"), client.per_phase):
            cells.append(
                f"{name}: p50 {phase.latency.median * 1e3:7.2f} ms  "
                f"p99 {phase.latency.percentile(99) * 1e3:8.2f} ms"
            )
        print(f"{label:12s} " + " | ".join(cells))

    phase_line(static_client, "static (1)")
    phase_line(auto_client, "autoscaled")

    print("\n--- autoscaler actions ---")
    for event in autoscaler.events:
        line = (
            f"t={event.at_s:5.2f}s {event.action:9s} "
            f"{event.capacity_before}->{event.capacity_after} "
            f"(util {event.utilization * 100:5.1f}%)"
        )
        if event.migration is not None:
            line += (
                f"  migrated {event.migration.rows_copied} rows, "
                f"flip pause {event.migration.pause_s * 1e6:.0f} us"
            )
        print(line)

    print(
        f"\nRPCs served: static={static_metrics.completed} "
        f"autoscaled={auto_metrics.completed} "
        f"(dropped: {auto_metrics.aborted})"
    )
    print(f"session table intact after scaling: {len(sessions)} rows")
    print(f"final capacity: {engine.capacity}")


if __name__ == "__main__":
    main()
