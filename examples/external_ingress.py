#!/usr/bin/env python3
"""External communication (paper §7): ingress/egress gateways and
application peering.

An external client that only speaks gRPC calls into an ADN application.
The ingress gateway parses the wrapped stack once, at the edge; inside,
the message travels as a bare tuple with minimal headers. We then show
two ADN applications exchanging a message directly ("application
peering") versus down-shifting through the standard format.

Run:  python examples/external_ingress.py
"""

from repro import AdnCompiler, FieldType, FunctionRegistry, RpcSchema
from repro.compiler.headers import plan_hop_headers
from repro.dsl import load_stdlib
from repro.dsl.ast_nodes import ChainDecl
from repro.net.http2 import default_grpc_headers, encode_grpc_message
from repro.net.serialization import ProtoCodec
from repro.runtime.gateway import (
    EgressGateway,
    IngressGateway,
    peering_savings,
)
from repro.runtime.message import make_request

SCHEMA = RpcSchema.of(
    "store",
    payload=FieldType.BYTES,
    username=FieldType.STR,
    obj_id=FieldType.INT,
)


def main() -> None:
    # --- an external gRPC request arrives at the ingress ---------------
    proto = ProtoCodec(SCHEMA)
    grpc_payload = proto.encode(
        {"payload": b"PUT object-42", "username": "usr2", "obj_id": 42}
    )
    headers = default_grpc_headers("Put", "objectstore")
    headers["x-rpc-id"] = "1001"
    external_bytes = encode_grpc_message(headers, grpc_payload)
    print(f"external gRPC message : {len(external_bytes)} bytes on the wire")

    ingress = IngressGateway(SCHEMA)
    tuple_row = ingress.translate_in(external_bytes)
    print("after ingress         :", {
        k: tuple_row[k] for k in ("method", "rpc_id", "obj_id", "username")
    })
    print(f"ingress translation   : {ingress.cost_us():.1f} us CPU "
          "(paid once, at the edge)")

    # inside the ADN the same information is a minimal-header tuple
    registry = FunctionRegistry()
    program = load_stdlib(schema=SCHEMA)
    chain = AdnCompiler(registry=registry).compile_chain(
        ChainDecl(src="ingress", dst="B", elements=("LbKeyHash", "Acl")),
        program,
        SCHEMA,
    )
    layout = plan_hop_headers(chain.ir, SCHEMA, [0])[0].layout
    from repro.net.wire import AdnWireCodec

    codec = AdnWireCodec(layout)
    internal_bytes = codec.encode(
        {k: v for k, v in tuple_row.items() if k in layout.field_names}
    )
    print(f"inside the ADN        : {len(internal_bytes)} bytes "
          f"({', '.join(layout.field_names)})")

    # --- egress back out ------------------------------------------------
    egress = EgressGateway(SCHEMA, authority="external-consumer")
    response = make_request(
        SCHEMA, src="B.1", dst="external", payload=b"OK", obj_id=42
    )
    out_bytes = egress.translate_out(response)
    print(f"egress translation    : back to {len(out_bytes)} gRPC bytes")

    # --- application peering vs down-shift ------------------------------
    print("\n--- two ADN apps exchanging a message (§7 peering) ---")
    other_chain = AdnCompiler(registry=FunctionRegistry()).compile_chain(
        ChainDecl(src="X", dst="Y", elements=("Logging", "Fault")),
        load_stdlib(schema=SCHEMA),
        SCHEMA,
    )
    other_layout = plan_hop_headers(other_chain.ir, SCHEMA, [0])[0].layout
    message = make_request(
        SCHEMA, src="A.0", dst="peer-app", payload=b"x" * 64,
        username="usr2", obj_id=7,
    )
    savings = peering_savings(layout, other_layout, SCHEMA, message)
    print(f"peered   : {savings['peered_bytes']:.0f} bytes, "
          f"{savings['peered_cpu_us']:.1f} us")
    print(f"downshift: {savings['downshift_bytes']:.0f} bytes, "
          f"{savings['downshift_cpu_us']:.1f} us")
    print(f"peering saves {savings['byte_ratio']:.1f}x bytes and "
          f"{savings['cpu_ratio']:.0f}x translation CPU")


if __name__ == "__main__":
    main()
