#!/usr/bin/env python3
"""The paper's §2 example, end to end through the control plane.

An application with two services: A calls B; B has two replicas, each
holding a subset of the object-identifier space. The developer wants
the network to (1) load-balance requests to B.1/B.2 by the object id in
the request, (2) compress/decompress the payload, and (3) perform
access control on user+object identifiers — all without touching the
application or wrapping RPCs in HTTP/TCP.

The whole network is the `app` spec below. The controller compiles it,
places it, and updates it live when B scales.

Run:  python examples/object_store.py
"""

from repro import FieldType, RpcSchema
from repro.control import AdnController, MiniKube
from repro.runtime.message import reset_rpc_ids
from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster

APP_SPEC = """
app ObjectStore {
    service A;
    service B replicas 2;
    chain A -> B { LbKeyHash, Compression, Decompression, AccessControl }
    constrain Compression colocate sender;
    constrain Decompression colocate receiver;
    constrain AccessControl outside_app;
    guarantee reliable ordered;
}
"""

OBJECT_SPACE = 64


def main() -> None:
    schema = RpcSchema.of(
        "objectstore",
        payload=FieldType.BYTES,
        username=FieldType.STR,
        obj_id=FieldType.INT,
    )

    # -- control plane: apply the ADNConfig and the deployment ---------
    kube = MiniKube()
    controller = AdnController(kube, schema)
    kube.apply_deployment("B", replicas=2)
    kube.apply_adn_config("objectstore", APP_SPEC, "ObjectStore")
    print("--- controller reconciliation log ---")
    for record in controller.history:
        for action in record.actions:
            print(f"  gen {record.generation}: {action}")

    chain = controller.installed[("A", "B")].chain
    print(f"\noptimized chain order: {' -> '.join(chain.element_order)}")

    # -- data plane: install and drive traffic -------------------------
    reset_rpc_ids()
    sim = Simulator()
    cluster = two_machine_cluster(sim)
    stack = controller.install_stack(sim, cluster, "A", "B")

    # whitelist the object space for the writing user
    for processor in stack.processors:
        if "AccessControl" in processor.segment.elements:
            acl = processor.element_state("AccessControl").table("acl")
            for obj_id in range(OBJECT_SPACE):
                acl.insert(
                    {"username": "usr2", "obj_id": obj_id, "allowed": True}
                )

    def workload(rng, index):
        return {
            "payload": b"object-contents " * 16,
            "username": "usr2" if rng.random() < 0.95 else "usr1",
            "obj_id": rng.randrange(OBJECT_SPACE),
        }

    client = ClosedLoopClient(
        sim,
        stack.call,
        concurrency=32,
        total_rpcs=3000,
        warmup_rpcs=300,
        fields_fn=workload,
    )
    metrics = client.run()
    print("\n--- phase 1: two replicas ---")
    print(f"rate {metrics.throughput_krps:.1f} krps, "
          f"median {metrics.latency.median_us():.1f} us, "
          f"aborted {metrics.aborted} (usr1 has no write permission)")

    # -- live reconfiguration: B scales to 3 replicas ------------------
    kube.apply_deployment("B", replicas=3)
    lb_table = None
    for processor in stack.processors:
        if "LbKeyHash" in processor.segment.elements:
            lb_table = processor.element_state("LbKeyHash").table("endpoints")
    assert lb_table is not None
    replicas = sorted(row["replica"] for row in lb_table.rows())
    print(f"\ncontroller pushed new endpoints live: {replicas}")

    client2 = ClosedLoopClient(
        sim,
        stack.call,
        concurrency=32,
        total_rpcs=3000,
        warmup_rpcs=300,
        seed=2,
        fields_fn=workload,
    )
    metrics2 = client2.run()
    print("--- phase 2: three replicas (no restart, no dropped RPCs) ---")
    print(f"rate {metrics2.throughput_krps:.1f} krps, "
          f"median {metrics2.latency.median_us():.1f} us")

    # -- show where each object went -----------------------------------
    from repro.dsl import DEFAULT_REGISTRY

    hash_fn = DEFAULT_REGISTRY.get("hash").impl
    routed = {}
    for obj_id in range(8):
        index = hash_fn(obj_id) % len(replicas)
        routed.setdefault(replicas[index], []).append(obj_id)
    print("\nobject placement by key hash (first 8 ids):")
    for replica, objects in sorted(routed.items()):
        print(f"  {replica}: {objects}")


if __name__ == "__main__":
    main()
