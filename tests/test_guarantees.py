"""Delivery-guarantee tests (paper Q1): ordered/reliable flags shape
the wire format and the transport — and their absence keeps headers
minimal."""

import pytest

from repro.compiler.compiler import AdnCompiler
from repro.compiler.headers import guarantee_fields, plan_hop_headers
from repro.control import AdnController, MiniKube
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.dsl.ast_nodes import ChainDecl, GuaranteeDecl
from repro.runtime import AdnMrpcStack
from repro.runtime.message import reset_rpc_ids
from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)


def compiled_chain(*names):
    registry = FunctionRegistry()
    program = load_stdlib(schema=SCHEMA)
    compiler = AdnCompiler(registry=registry)
    decl = ChainDecl(src="A", dst="B", elements=tuple(names))
    return compiler.compile_chain(decl, program, SCHEMA), registry


class TestGuaranteeFields:
    def test_none_adds_nothing(self):
        assert guarantee_fields(None) == {}
        assert guarantee_fields(GuaranteeDecl()) == {}

    def test_ordered_adds_seq(self):
        fields = guarantee_fields(GuaranteeDecl(ordered=True))
        assert set(fields) == {"seq"}

    def test_reliable_adds_ack(self):
        fields = guarantee_fields(GuaranteeDecl(reliable=True))
        assert set(fields) == {"ack"}

    def test_both(self):
        fields = guarantee_fields(GuaranteeDecl(reliable=True, ordered=True))
        assert set(fields) == {"seq", "ack"}


class TestHeaderImpact:
    def test_guarantees_grow_the_header(self):
        chain, _registry = compiled_chain("Acl")
        bare = plan_hop_headers(chain.ir, SCHEMA, [0])[0].layout
        full = plan_hop_headers(
            chain.ir,
            SCHEMA,
            [0],
            guarantees=GuaranteeDecl(reliable=True, ordered=True),
        )[0].layout
        assert "seq" in full.field_names
        assert "ack" in full.field_names
        assert "seq" not in bare.field_names
        assert full.min_size_bytes() > bare.min_size_bytes()

    def test_response_direction_plan(self):
        chain, _registry = compiled_chain("Logging", "Acl")
        response_plan = plan_hop_headers(
            chain.ir, SCHEMA, [1], kind="response"
        )[0]
        # the logger's response handler reads rpc_id and payload — both
        # must survive the return crossing
        assert "rpc_id" in response_plan.needed_fields
        assert "payload" in response_plan.needed_fields


class TestOrderedTransport:
    def run_stack(self, guarantees):
        reset_rpc_ids()
        chain, registry = compiled_chain("Logging", "Acl", "Fault")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = AdnMrpcStack(
            sim, cluster, chain, SCHEMA, registry, guarantees=guarantees
        )
        client = ClosedLoopClient(
            sim, stack.call, concurrency=8, total_rpcs=300
        )
        metrics = client.run()
        return stack, metrics

    def test_ordered_assigns_monotonic_seq(self):
        stack, metrics = self.run_stack(GuaranteeDecl(ordered=True))
        assert metrics.completed == 300
        assert stack._next_seq > 0
        assert stack.out_of_order_detected == 0  # FIFO underlay

    def test_unordered_has_no_seq_machinery(self):
        stack, metrics = self.run_stack(None)
        assert metrics.completed == 300
        assert stack._next_seq == 0
        assert "seq" not in stack.hop_plan.layout.field_names

    def test_guaranteed_wire_costs_more(self):
        bare_stack, _m1 = self.run_stack(None)
        full_stack, _m2 = self.run_stack(
            GuaranteeDecl(reliable=True, ordered=True)
        )
        assert full_stack.wire_bytes_total > bare_stack.wire_bytes_total


class TestControllerIntegration:
    APP = """
    app Shop {
        service A;
        service B;
        chain A -> B { Acl }
        guarantee reliable ordered;
    }
    """

    def test_guarantees_flow_from_app_spec(self):
        reset_rpc_ids()
        kube = MiniKube()
        controller = AdnController(kube, SCHEMA)
        kube.apply_adn_config("shop", self.APP, "Shop")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = controller.install_stack(sim, cluster, "A", "B")
        assert stack.guarantees is not None
        assert stack.guarantees.ordered
        assert "seq" in stack.hop_plan.layout.field_names
        client = ClosedLoopClient(sim, stack.call, concurrency=4, total_rpcs=100)
        metrics = client.run()
        assert metrics.completed == 100
        assert stack.out_of_order_detected == 0
