"""Element catalog tests."""

import pytest

from repro import elements
from repro.dsl.stdlib import STDLIB_SOURCES


class TestCatalogConsistency:
    def test_every_catalog_element_has_source(self):
        for name in elements.CATALOG:
            assert name in STDLIB_SOURCES, name

    def test_every_stdlib_element_is_cataloged(self):
        cataloged = set(elements.CATALOG) | set(elements.FILTER_CATALOG)
        for name in STDLIB_SOURCES:
            assert name in cataloged, name

    def test_categories(self):
        categories = elements.categories()
        assert "security" in categories
        assert "load-balancing" in categories

    def test_names_by_category(self):
        security = elements.names("security")
        assert "Acl" in security
        assert "AccessControl" in security
        assert "Logging" not in security

    def test_paper_eval_elements_flagged(self):
        for name in elements.PAPER_EVAL_ELEMENTS:
            assert elements.CATALOG[name].evaluated_in_paper

    def test_section2_chain_members_exist(self):
        for name in elements.SECTION2_CHAIN:
            assert name in elements.CATALOG

    def test_source_and_loc_accessors(self):
        assert "element Acl" in elements.source_of("Acl")
        assert 0 < elements.dsl_loc("Acl") <= 30


class TestCompileCatalog:
    def test_compile_subset(self):
        compiled = elements.compile_catalog(["Acl", "Fault"])
        assert set(compiled) == {"Acl", "Fault"}
        assert compiled["Acl"].dsl_loc > 0
        assert "python" in compiled["Acl"].legal_backends()

    def test_compile_everything(self):
        compiled = elements.compile_catalog()
        assert set(compiled) == set(elements.CATALOG)
        # every element must at least run in software
        for name, element in compiled.items():
            assert "python" in element.legal_backends(), name
            assert "wasm" in element.legal_backends(), name

    def test_offloadability_summary(self):
        compiled = elements.compile_catalog()
        p4_capable = {
            name
            for name, element in compiled.items()
            if "p4" in element.legal_backends()
        }
        # exactly the header-only, match-action-friendly elements
        assert "Acl" in p4_capable
        assert "LbKeyHash" in p4_capable
        assert "Fault" in p4_capable
        assert "Compression" not in p4_capable
        assert "Logging" not in p4_capable
        assert "Mirror" not in p4_capable
