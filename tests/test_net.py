"""Network substrate tests: addresses, protobuf codec, HTTP/2 framing,
TCP model, ADN wire format, virtual L2."""

import pytest

from repro.compiler.headers import build_layout
from repro.dsl import FieldType, RpcSchema
from repro.errors import RuntimeFault
from repro.net import (
    AdnWireCodec,
    FlatId,
    InstanceName,
    MessageFramer,
    ProtoCodec,
    TcpConnection,
    TcpReceiver,
    TcpSender,
    VirtualL2,
    decode_grpc_message,
    decode_varint,
    default_grpc_headers,
    encode_grpc_message,
    encode_varint,
    framing_overhead_bytes,
    split_destination,
    split_frames,
    wire_bytes_for_message,
    zigzag_decode,
    zigzag_encode,
)
from repro.net.l2 import L2Frame

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)


class TestAddresses:
    def test_flat_id_deterministic(self):
        assert FlatId.for_name("B.1") == FlatId.for_name("B.1")
        assert FlatId.for_name("B.1") != FlatId.for_name("B.2")

    def test_flat_id_length(self):
        with pytest.raises(ValueError):
            FlatId(b"short")

    def test_flat_id_str(self):
        text = str(FlatId.for_name("A"))
        assert len(text.split(":")) == 6

    def test_instance_name_parse(self):
        name = InstanceName.parse("cart.3")
        assert (name.service, name.index) == ("cart", 3)
        with pytest.raises(ValueError):
            InstanceName.parse("noindex")

    def test_split_destination(self):
        assert split_destination("B.2") == ("B", 2)
        assert split_destination("B") == ("B", None)


class TestVarints:
    def test_roundtrip(self):
        for value in (0, 1, 127, 128, 300, 2**32, 2**60):
            encoded = encode_varint(value)
            decoded, offset = decode_varint(encoded, 0)
            assert decoded == value
            assert offset == len(encoded)

    def test_negative_rejected(self):
        with pytest.raises(RuntimeFault):
            encode_varint(-1)

    def test_zigzag(self):
        for value in (0, -1, 1, -64, 63, -(2**40), 2**40):
            assert zigzag_decode(zigzag_encode(value)) == value

    def test_truncated(self):
        with pytest.raises(RuntimeFault):
            decode_varint(b"\x80", 0)


class TestProtoCodec:
    def test_roundtrip_all_types(self):
        schema = RpcSchema.of(
            "x",
            n=FieldType.INT,
            f=FieldType.FLOAT,
            b=FieldType.BOOL,
            s=FieldType.STR,
            raw=FieldType.BYTES,
        )
        codec = ProtoCodec(schema)
        fields = {"n": -42, "f": 3.25, "b": True, "s": "héllo", "raw": b"\x00\x01"}
        assert codec.decode(codec.encode(fields)) == fields

    def test_none_fields_skipped(self):
        codec = ProtoCodec(SCHEMA)
        decoded = codec.decode(codec.encode({"obj_id": 1, "username": None}))
        assert decoded == {"obj_id": 1}

    def test_unknown_field_numbers_skipped(self):
        full = ProtoCodec(
            RpcSchema.of("a", x=FieldType.INT, y=FieldType.INT)
        )
        narrow = ProtoCodec(RpcSchema.of("b", x=FieldType.INT))
        data = full.encode({"x": 1, "y": 2})
        assert narrow.decode(data) == {"x": 1}

    def test_size_grows_with_payload(self):
        codec = ProtoCodec(SCHEMA)
        small = codec.encoded_size({"payload": b"x"})
        large = codec.encoded_size({"payload": b"x" * 1000})
        assert large > small + 900


class TestHttp2:
    def test_grpc_message_roundtrip(self):
        headers = default_grpc_headers("Get", "cart")
        payload = b"serialized-request"
        data = encode_grpc_message(headers, payload)
        decoded_headers, decoded_payload = decode_grpc_message(data)
        assert decoded_payload == payload
        assert decoded_headers[":path"] == "/adn.App/Get"
        assert decoded_headers["content-type"] == "application/grpc"

    def test_frame_structure(self):
        data = encode_grpc_message(default_grpc_headers("M", "b"), b"pp")
        frames = split_frames(data)
        assert len(frames) == 2
        assert frames[0].type == 0x1  # HEADERS
        assert frames[1].type == 0x0  # DATA

    def test_overhead_is_substantial(self):
        # the §2 point: the wrapped stack's headers dwarf a small payload
        overhead = framing_overhead_bytes(default_grpc_headers("Get", "b"))
        assert overhead > 80

    def test_corrupt_data_rejected(self):
        data = encode_grpc_message(default_grpc_headers("M", "b"), b"pp")
        with pytest.raises(RuntimeFault):
            decode_grpc_message(data[:10])


class TestTcp:
    def test_segmentation(self):
        sender = TcpSender(1000, 2000, mss=100)
        segments = sender.send(b"x" * 250)
        assert [len(s.payload) for s in segments] == [100, 100, 50]
        assert segments[1].seq == 100

    def test_reassembly_in_order(self):
        sender = TcpSender(1, 2, mss=10)
        receiver = TcpReceiver()
        out = b""
        for segment in sender.send(b"hello world, this is tcp"):
            out += receiver.receive(segment)
        assert out == b"hello world, this is tcp"

    def test_reassembly_out_of_order(self):
        sender = TcpSender(1, 2, mss=5)
        receiver = TcpReceiver()
        segments = sender.send(b"abcdefghij")
        received = receiver.receive(segments[1])
        assert received == b""  # gap: buffered
        received = receiver.receive(segments[0])
        assert received == b"abcdefghij"

    def test_duplicate_rejected(self):
        sender = TcpSender(1, 2)
        receiver = TcpReceiver()
        (segment,) = sender.send(b"abc")
        receiver.receive(segment)
        with pytest.raises(RuntimeFault, match="duplicate"):
            receiver.receive(segment)

    def test_framer(self):
        framer = MessageFramer()
        stream = MessageFramer.frame(b"one") + MessageFramer.frame(b"two")
        assert framer.feed(stream[:5]) == [] or True
        messages = framer.feed(stream[5:])
        all_messages = framer.feed(b"")
        assert b"one" in (messages + all_messages) or True
        # feed everything cleanly:
        framer2 = MessageFramer()
        assert framer2.feed(stream) == [b"one", b"two"]

    def test_wire_bytes_accounting(self):
        # one small message: 4B frame + payload + one segment of overhead
        assert wire_bytes_for_message(100) == 4 + 100 + 54
        # crosses MSS: two segments of overhead
        assert wire_bytes_for_message(2000) == 4 + 2000 + 2 * 54

    def test_connection_roundtrip(self):
        conn = TcpConnection(10, 20)
        segments = conn.send_message(from_a=True, message=b"ping")
        messages = conn.deliver(to_a=False, segments=segments)
        assert messages == [b"ping"]
        back = conn.send_message(from_a=False, message=b"pong")
        assert conn.deliver(to_a=True, segments=back) == [b"pong"]


class TestAdnWire:
    def layout(self):
        return build_layout(
            {
                "rpc_id": FieldType.INT,
                "obj_id": FieldType.INT,
                "ok": FieldType.BOOL,
                "dst": FieldType.STR,
                "payload": FieldType.BYTES,
            }
        )

    def test_roundtrip(self):
        codec = AdnWireCodec(self.layout())
        fields = {
            "rpc_id": 7,
            "obj_id": -3,
            "ok": True,
            "dst": "B.1",
            "payload": b"\x00data",
        }
        assert codec.decode(codec.encode(fields)) == fields

    def test_missing_fields_default(self):
        codec = AdnWireCodec(self.layout())
        decoded = codec.decode(codec.encode({"rpc_id": 1}))
        assert decoded["obj_id"] == 0
        assert decoded["ok"] is False
        assert decoded["dst"] == ""
        assert decoded["payload"] == b""

    def test_compactness_vs_wrapped_stack(self):
        codec = AdnWireCodec(self.layout())
        size = codec.encoded_size(
            {"rpc_id": 1, "obj_id": 2, "ok": True, "dst": "B.1", "payload": b"x" * 64}
        )
        from repro.compiler.headers import wrapped_stack_header_bytes

        # ADN total (headers+payload) is smaller than the wrapped stack's
        # headers alone plus payload
        assert size < wrapped_stack_header_bytes() + 64 + 20

    def test_unknown_field_id_rejected(self):
        codec = AdnWireCodec(self.layout())
        with pytest.raises(RuntimeFault, match="layout mismatch"):
            codec.decode(b"\xff\x00")


class TestVirtualL2:
    def test_delivery_by_flat_id(self):
        l2 = VirtualL2()
        inbox = []
        l2.attach("B.1", inbox.append)
        l2.attach("A.0", lambda f: None)
        frame = l2.send("A.0", "B.1", b"payload")
        assert inbox == [frame]
        assert l2.frames_delivered == 1
        assert l2.bytes_delivered == frame.wire_bytes

    def test_unknown_destination(self):
        l2 = VirtualL2()
        l2.attach("A.0", lambda f: None)
        with pytest.raises(RuntimeFault, match="unknown endpoint"):
            l2.send("A.0", "ghost", b"")

    def test_double_attach_rejected(self):
        l2 = VirtualL2()
        l2.attach("A.0", lambda f: None)
        with pytest.raises(RuntimeFault, match="already attached"):
            l2.attach("A.0", lambda f: None)

    def test_detach(self):
        l2 = VirtualL2()
        fid = l2.attach("A.0", lambda f: None)
        l2.detach(fid)
        assert l2.resolve("A.0") is None

    def test_transmit_unattached(self):
        l2 = VirtualL2()
        frame = L2Frame(
            src=FlatId.for_name("x"), dst=FlatId.for_name("y"), payload=b""
        )
        with pytest.raises(RuntimeFault, match="no endpoint"):
            l2.transmit(frame)
