"""Integration tests: the full pipeline (DSL source → controller →
placement → simulated data plane) and the Figure 2 configurations."""

import pytest

from repro.compiler.compiler import AdnCompiler
from repro.control import (
    AdnController,
    ClusterSpec,
    MiniKube,
    PlacementRequest,
    solve_placement,
)
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.dsl.ast_nodes import ChainDecl
from repro.platforms import Platform
from repro.runtime import AdnMrpcStack
from repro.runtime.message import reset_rpc_ids
from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)


def compile_section2_chain(registry=None):
    registry = registry or FunctionRegistry()
    program = load_stdlib(schema=SCHEMA)
    compiler = AdnCompiler(registry=registry)
    decl = ChainDecl(
        src="A",
        dst="B",
        elements=("LbKeyHash", "Compression", "Decompression", "AccessControl"),
    )
    return compiler.compile_chain(decl, program, SCHEMA), registry


def run_stack(chain, registry, plan=None, cluster_kwargs=None, total=300,
              concurrency=16, seed_acl=True):
    reset_rpc_ids()
    sim = Simulator()
    cluster = two_machine_cluster(sim, **(cluster_kwargs or {}))
    stack = AdnMrpcStack(
        sim, cluster, chain, SCHEMA, registry, plan=plan, server_replicas=2
    )
    if seed_acl:
        for processor in stack.processors:
            if "AccessControl" in processor.segment.elements:
                table = processor.element_state("AccessControl").table("acl")
                for obj in range(50):
                    table.insert(
                        {"username": "usr2", "obj_id": obj * 997, "allowed": True}
                    )
    client = ClosedLoopClient(
        sim, stack.call, concurrency=concurrency, total_rpcs=total,
        fields_fn=lambda rng, i: {
            "payload": b"hello world " * 8,
            "username": "usr2",
            "obj_id": (i % 50) * 997,
        },
    )
    metrics = client.run()
    metrics.cpu_busy_s = cluster.cpu_busy_by_machine()
    return metrics, stack, cluster


class TestSection2Pipeline:
    """The §2 example app end to end: LB by object id, compression,
    access control — with payload integrity verified through the chain."""

    def test_payload_survives_compress_decompress(self):
        chain, registry = compile_section2_chain()
        metrics, stack, _cluster = run_stack(chain, registry, total=100)
        assert metrics.completed == 100
        # whitelist covers every issued obj_id → no aborts from ACL
        assert metrics.aborted == 0

    def test_lb_routes_to_replicas(self):
        chain, registry = compile_section2_chain()
        _metrics, stack, _cluster = run_stack(chain, registry, total=200)
        # the LB's endpoint table was seeded with B.1/B.2 by the stack
        lb_processor = next(
            p for p in stack.processors
            if "LbKeyHash" in p.segment.elements
        )
        table = lb_processor.element_state("LbKeyHash").table("endpoints")
        assert len(table) == 2

    def test_unauthorized_object_aborted(self):
        chain, registry = compile_section2_chain()
        reset_rpc_ids()
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = AdnMrpcStack(sim, cluster, chain, SCHEMA, registry)
        # empty whitelist: everything denied
        process = sim.process(
            stack.call(payload=b"x", username="usr2", obj_id=1)
        )
        outcome = sim.run_until_complete(process)
        assert outcome.aborted_by == "AccessControl"


class TestFigure2Configurations:
    """The four realizations of the RPC processing chain (Figure 2)."""

    def solve(self, chain, strategy, cluster_spec=None, replicas=1):
        return solve_placement(
            PlacementRequest(
                chain=chain,
                schema=SCHEMA,
                strategy=strategy,
                cluster=cluster_spec or ClusterSpec(),
                replicas=replicas,
            )
        )

    def test_config1_in_app(self):
        chain, registry = compile_section2_chain()
        plan = self.solve(chain, "inapp")
        # everything runs in the RPC library except the mandatory ACL
        locations = plan.element_locations()
        assert locations["LbKeyHash"][0] is Platform.RPC_LIB
        assert locations["Compression"][0] is Platform.RPC_LIB
        assert locations["AccessControl"][0] is not Platform.RPC_LIB
        metrics, _stack, _cluster = run_stack(chain, registry, plan=plan)
        assert metrics.completed == 300

    def test_config2_kernel_and_nic(self):
        chain, registry = compile_section2_chain()
        spec = ClusterSpec(smartnics=True, programmable_switch=False)
        plan = self.solve(chain, "offload", spec)
        platforms = {seg.platform for seg in plan.segments}
        assert platforms & {Platform.KERNEL_EBPF, Platform.SMARTNIC}
        metrics, _stack, _cluster = run_stack(
            chain, registry, plan=plan, cluster_kwargs={"smartnics": True}
        )
        assert metrics.completed == 300

    def test_config3_switch_offload_with_reorder(self):
        chain, registry = compile_section2_chain()
        spec = ClusterSpec(smartnics=True, programmable_switch=True)
        plan = self.solve(chain, "offload", spec)
        locations = plan.element_locations()
        # the solver re-reordered the chain so the sender-pinned
        # compression runs first and the ACL lands on the ToR switch
        # (Figure 2 configuration 3)
        assert locations["AccessControl"][0] is Platform.SWITCH_P4
        traversal = [n for seg in plan.segments for n in seg.elements]
        assert traversal.index("Compression") < traversal.index("AccessControl")
        metrics, _stack, cluster = run_stack(
            chain,
            registry,
            plan=plan,
            cluster_kwargs={"smartnics": True, "programmable_switch": True},
        )
        assert metrics.completed == 300
        assert "AccessControl" in cluster.switch.installed_elements

    def test_config4_scale_out(self):
        chain, registry = compile_section2_chain()
        plan = self.solve(chain, "scaleout", replicas=4)
        engine_segments = [
            seg for seg in plan.segments if seg.platform is Platform.MRPC
        ]
        assert engine_segments
        assert all(seg.replicas == 4 for seg in engine_segments)
        metrics, _stack, _cluster = run_stack(chain, registry, plan=plan)
        assert metrics.completed == 300

    def test_offload_reduces_host_cpu(self):
        chain, registry = compile_section2_chain()
        software_plan = self.solve(chain, "software")
        metrics_sw, _s, _c = run_stack(chain, registry, plan=software_plan)
        chain2, registry2 = compile_section2_chain()
        spec = ClusterSpec(smartnics=True, programmable_switch=True)
        offload_plan = self.solve(chain2, "offload", spec)
        metrics_off, _s2, _c2 = run_stack(
            chain2,
            registry2,
            plan=offload_plan,
            cluster_kwargs={"smartnics": True, "programmable_switch": True},
        )
        assert metrics_off.cpu_us_per_rpc() < metrics_sw.cpu_us_per_rpc()


class TestControllerEndToEnd:
    APP = """
    app Store {
        service A;
        service B replicas 2;
        chain A -> B { LbKeyHash, Logging, Acl, Fault }
    }
    """

    def test_full_lifecycle(self):
        reset_rpc_ids()
        kube = MiniKube()
        controller = AdnController(kube, SCHEMA)
        kube.apply_deployment("B", 2)
        kube.apply_adn_config("store", self.APP, "Store")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = controller.install_stack(sim, cluster, "A", "B")
        client = ClosedLoopClient(sim, stack.call, concurrency=16, total_rpcs=400)
        metrics = client.run()
        assert metrics.completed == 400
        # scale the deployment; traffic continues and spreads wider
        kube.apply_deployment("B", 3)
        client2 = ClosedLoopClient(
            sim, stack.call, concurrency=16, total_rpcs=400, seed=2
        )
        metrics2 = client2.run()
        assert metrics2.completed == 400
        lb_state = None
        for processor in stack.processors:
            if "LbKeyHash" in processor.segment.elements:
                lb_state = processor.element_state("LbKeyHash")
        assert lb_state is not None
        assert len(lb_state.table("endpoints")) == 3
