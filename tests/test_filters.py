"""Stream-shaping filter operator tests (paper §5.1): timeout, retry,
rate shaping, congestion control — standalone and composed onto the ADN
data plane."""

import pytest

from repro.compiler.compiler import AdnCompiler
from repro.control import AdnController, MiniKube
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.dsl.ast_nodes import ChainDecl, FilterDef
from repro.errors import RuntimeFault
from repro.runtime import (
    AdnMrpcStack,
    apply_filter,
    apply_filters,
    wrap_congestion_control,
    wrap_rate_shaper,
    wrap_retry,
    wrap_timeout,
)
from repro.runtime.message import RpcOutcome, reset_rpc_ids
from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)


def slow_call(sim, service_s, abort_first=0):
    """A call taking ``service_s``, aborting its first N invocations."""
    state = {"count": 0}

    def call(**fields):
        issued = sim.now
        state["count"] += 1
        yield sim.timeout(service_s)
        aborted = "Fault" if state["count"] <= abort_first else ""
        return RpcOutcome(
            request=dict(fields),
            response={"status": f"aborted:{aborted}" if aborted else "ok"},
            issued_at=issued,
            completed_at=sim.now,
            aborted_by=aborted,
        )

    call.state = state
    return call


def run_one(sim, call, **fields):
    return sim.run_until_complete(sim.process(call(**fields)))


class TestTimeout:
    def test_fast_call_unaffected(self):
        sim = Simulator()
        shaped = wrap_timeout(sim, slow_call(sim, 1e-3), timeout_ms=10.0)
        outcome = run_one(sim, shaped)
        assert outcome.ok

    def test_slow_call_aborted(self):
        sim = Simulator()
        shaped = wrap_timeout(sim, slow_call(sim, 0.1), timeout_ms=10.0)
        outcome = run_one(sim, shaped)
        assert outcome.aborted_by == "Timeout"
        assert outcome.latency_s == pytest.approx(10e-3)

    def test_late_work_still_happens(self):
        sim = Simulator()
        call = slow_call(sim, 0.1)
        shaped = wrap_timeout(sim, call, timeout_ms=10.0)
        run_one(sim, shaped)
        sim.run()  # let the abandoned attempt finish
        assert call.state["count"] == 1


class TestRetry:
    def test_retries_transient_faults(self):
        sim = Simulator()
        call = slow_call(sim, 1e-4, abort_first=2)
        shaped = wrap_retry(sim, call, max_retries=3)
        outcome = run_one(sim, shaped)
        assert outcome.ok
        assert outcome.notes["attempts"] == 3
        assert call.state["count"] == 3

    def test_budget_exhausted(self):
        sim = Simulator()
        call = slow_call(sim, 1e-4, abort_first=10)
        shaped = wrap_retry(sim, call, max_retries=2)
        outcome = run_one(sim, shaped)
        assert outcome.aborted_by == "Fault"
        assert call.state["count"] == 3  # original + 2 retries

    def test_non_retryable_abort_returned_immediately(self):
        sim = Simulator()

        def denied(**fields):
            yield sim.timeout(1e-5)
            return RpcOutcome(
                request={},
                response={"status": "aborted:Acl"},
                issued_at=sim.now,
                completed_at=sim.now,
                aborted_by="Acl",
            )

        shaped = wrap_retry(sim, denied, max_retries=5)
        outcome = run_one(sim, shaped)
        assert outcome.aborted_by == "Acl"
        assert outcome.notes["attempts"] == 1

    def test_backoff_spaces_attempts(self):
        sim = Simulator()
        call = slow_call(sim, 1e-5, abort_first=2)
        shaped = wrap_retry(sim, call, max_retries=3, backoff_ms=5.0)
        outcome = run_one(sim, shaped)
        assert outcome.ok
        assert sim.now >= 10e-3  # two backoffs

    def test_retry_wraps_timeout(self):
        """A retry filter with timeout_ms retries timed-out attempts."""
        sim = Simulator()
        call = slow_call(sim, 0.05)  # always slower than the deadline
        filter_def = FilterDef(
            name="Retry",
            operator="retry",
            meta={"max_retries": 2, "timeout_ms": 1.0},
        )
        shaped = apply_filter(sim, call, filter_def)
        outcome = run_one(sim, shaped)
        assert outcome.aborted_by == "Timeout"
        assert outcome.notes["attempts"] == 3


class TestRateShaper:
    def test_paces_issues(self):
        sim = Simulator()
        call = slow_call(sim, 1e-6)
        shaped = wrap_rate_shaper(sim, call, rate_rps=1000)
        finish = []

        def worker():
            outcome = yield sim.process(shaped())
            finish.append(sim.now)
            return outcome

        for _ in range(5):
            sim.process(worker())
        sim.run()
        # issues spaced 1ms apart
        gaps = [b - a for a, b in zip(finish, finish[1:])]
        for gap in gaps:
            assert gap == pytest.approx(1e-3, rel=0.05)

    def test_zero_rate_rejected(self):
        sim = Simulator()
        with pytest.raises(RuntimeFault):
            wrap_rate_shaper(sim, slow_call(sim, 1e-6), rate_rps=0)


class TestCongestionControl:
    def test_window_grows_on_success(self):
        sim = Simulator()
        shaped = wrap_congestion_control(
            sim, slow_call(sim, 1e-5), initial_window=2.0
        )
        for _ in range(20):
            run_one(sim, shaped)
        assert shaped.window.cwnd > 2.0

    def test_window_halves_on_abort(self):
        sim = Simulator()
        shaped = wrap_congestion_control(
            sim, slow_call(sim, 1e-5, abort_first=1000), initial_window=8.0
        )
        run_one(sim, shaped)
        assert shaped.window.cwnd == pytest.approx(4.0)

    def test_window_gates_concurrency(self):
        sim = Simulator()
        shaped = wrap_congestion_control(
            sim, slow_call(sim, 1e-3), initial_window=2.0
        )
        finish = []

        def worker():
            yield sim.process(shaped())
            finish.append(sim.now)

        for _ in range(4):
            sim.process(worker())
        sim.run()
        # only 2 in flight at once: two waves
        assert finish[0] == pytest.approx(1e-3, rel=0.01)
        assert finish[-1] == pytest.approx(2e-3, rel=0.01)


class TestOnAdnStack:
    def build_stack(self, sim, cluster, filters=None, order=None):
        registry = FunctionRegistry()
        program = load_stdlib(schema=SCHEMA)
        compiler = AdnCompiler(registry=registry)
        decl = ChainDecl(src="A", dst="B", elements=("Fault",))
        chain = compiler.compile_chain(decl, program, SCHEMA)
        return AdnMrpcStack(
            sim,
            cluster,
            chain,
            SCHEMA,
            registry,
            filters=filters,
            filter_order=order,
        )

    def test_retry_masks_injected_faults(self):
        reset_rpc_ids()
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        retry = FilterDef(name="Retry", operator="retry", meta={"max_retries": 4})
        stack = self.build_stack(sim, cluster, filters=[retry], order=["Retry"])
        client = ClosedLoopClient(sim, stack.call, concurrency=16, total_rpcs=800)
        metrics = client.run()
        # 2% fault rate with 4 retries: abort probability ~0.02^5
        assert metrics.aborted == 0
        assert metrics.completed == 800

    def test_no_filters_means_raw_path(self):
        reset_rpc_ids()
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = self.build_stack(sim, cluster)
        assert stack.call == stack.call_raw

    def test_controller_wires_filters_from_app_spec(self):
        reset_rpc_ids()
        app = """
        app Shop {
            service A;
            service B;
            chain A -> B { Retry, Fault }
        }
        """
        kube = MiniKube()
        controller = AdnController(kube, SCHEMA)
        kube.apply_adn_config("shop", app, "Shop")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = controller.install_stack(sim, cluster, "A", "B")
        assert stack.call != stack.call_raw  # Retry filter applied
        client = ClosedLoopClient(sim, stack.call, concurrency=8, total_rpcs=500)
        metrics = client.run()
        # stdlib Retry has max_retries 3: residual abort rate ~0.02^4
        assert metrics.aborted <= 1


class TestComposition:
    def test_apply_filters_order(self):
        sim = Simulator()
        call = slow_call(sim, 0.05)
        filters = [
            FilterDef(name="Retry", operator="retry", meta={"max_retries": 1}),
            FilterDef(name="Timeout", operator="timeout", meta={"timeout_ms": 1.0}),
        ]
        shaped = apply_filters(
            sim, call, filters, order=["Retry", "Timeout"]
        )
        outcome = run_one(sim, shaped)
        # Retry is outermost: the timed-out attempt is retried once
        assert outcome.aborted_by == "Timeout"
        assert outcome.notes["attempts"] == 2

    def test_unknown_operator_rejected(self):
        sim = Simulator()
        bogus = FilterDef(name="X", operator="dedup", meta={})
        with pytest.raises(RuntimeFault, match="no runtime"):
            apply_filter(sim, slow_call(sim, 1e-6), bogus)


class TestCircuitBreaker:
    def test_trips_after_threshold(self):
        from repro.runtime import wrap_circuit_breaker

        sim = Simulator()
        call = slow_call(sim, 1e-5, abort_first=1000)
        shaped = wrap_circuit_breaker(
            sim, call, failure_threshold=3, reset_ms=100.0
        )
        for _ in range(3):
            run_one(sim, shaped)
        assert shaped.breaker.state == "open"
        outcome = run_one(sim, shaped)
        assert outcome.aborted_by == "CircuitBreaker"
        assert call.state["count"] == 3  # the downstream was spared

    def test_half_open_probe_recloses(self):
        from repro.runtime import wrap_circuit_breaker

        sim = Simulator()
        call = slow_call(sim, 1e-5, abort_first=3)
        shaped = wrap_circuit_breaker(
            sim, call, failure_threshold=3, reset_ms=1.0
        )
        for _ in range(3):
            run_one(sim, shaped)
        assert shaped.breaker.state == "open"

        def wait_and_probe():
            yield sim.timeout(2e-3)  # past the reset window
            outcome = yield sim.process(shaped())
            return outcome

        outcome = sim.run_until_complete(sim.process(wait_and_probe()))
        assert outcome.ok
        assert shaped.breaker.state == "closed"

    def test_from_filter_def(self):
        from repro.dsl import load_stdlib

        program = load_stdlib(["CircuitBreaker"])
        filter_def = program.filters["CircuitBreaker"]
        sim = Simulator()
        call = slow_call(sim, 1e-5, abort_first=100)
        shaped = apply_filter(sim, call, filter_def)
        for _ in range(5):
            run_one(sim, shaped)
        outcome = run_one(sim, shaped)
        assert outcome.aborted_by == "CircuitBreaker"

    def test_stdlib_pacer_loads(self):
        from repro.dsl import load_stdlib

        program = load_stdlib(["Pacer"])
        filter_def = program.filters["Pacer"]
        sim = Simulator()
        shaped = apply_filter(sim, slow_call(sim, 1e-6), filter_def)
        outcome = run_one(sim, shaped)
        assert outcome.ok
