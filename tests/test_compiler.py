"""Top-level compiler driver tests."""

import pytest

from repro.compiler.compiler import AdnCompiler, compile_elements
from repro.dsl import FieldType, RpcSchema, load_stdlib
from repro.dsl.ast_nodes import ChainDecl
from repro.errors import CompileError

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)

APP_SOURCE = """
app Store {
    service A;
    service B replicas 2;
    chain A -> B { LbKeyHash, Compression, AccessControl }
    constrain Compression colocate sender;
    constrain AccessControl outside_app;
    constrain LbKeyHash before Compression;
}
"""


@pytest.fixture(scope="module")
def compiler():
    return AdnCompiler()


class TestCompileElement:
    def test_legality_matrix(self, compiler):
        program = load_stdlib(["Acl", "Compression", "Logging"], schema=SCHEMA)
        acl = compiler.compile_element(program.elements["Acl"])
        assert set(acl.legal_backends()) == {
            "python", "ebpf", "nic", "p4", "wasm"
        }
        compression = compiler.compile_element(program.elements["Compression"])
        assert set(compression.legal_backends()) == {"python", "wasm"}
        logging = compiler.compile_element(program.elements["Logging"])
        assert "p4" not in logging.legal_backends()

    def test_artifact_access(self, compiler):
        program = load_stdlib(["Acl"], schema=SCHEMA)
        compiled = compiler.compile_element(program.elements["Acl"])
        assert compiled.artifact("python").factory is not None
        assert "p4" in compiled.artifacts

    def test_missing_artifact_raises_with_reason(self, compiler):
        program = load_stdlib(["Compression"], schema=SCHEMA)
        compiled = compiler.compile_element(program.elements["Compression"])
        with pytest.raises(CompileError, match="payload UDF"):
            compiled.artifact("p4")

    def test_dsl_loc_recorded(self, compiler):
        compiled = compile_elements(["Acl"])
        assert compiled["Acl"].dsl_loc > 0


class TestCompileChain:
    def test_chain_optimized_and_compiled(self, compiler):
        program = load_stdlib(schema=SCHEMA)
        decl = ChainDecl(src="A", dst="B", elements=("Logging", "Acl", "Fault"))
        chain = compiler.compile_chain(decl, program, SCHEMA)
        assert set(chain.elements) == {"Logging", "Acl", "Fault"}
        for compiled in chain.elements.values():
            assert "python" in compiled.artifacts

    def test_unknown_element_rejected(self, compiler):
        program = load_stdlib(schema=SCHEMA)
        decl = ChainDecl(src="A", dst="B", elements=("Ghost",))
        with pytest.raises(CompileError, match="unknown element"):
            compiler.compile_chain(decl, program, SCHEMA)

    def test_filters_separated(self, compiler):
        program = load_stdlib(schema=SCHEMA)
        decl = ChainDecl(src="A", dst="B", elements=("Acl", "Retry"))
        chain = compiler.compile_chain(decl, program, SCHEMA)
        assert "Retry" in chain.filters
        assert "Retry" not in chain.elements


class TestCompileSource:
    def test_full_app_compile(self, compiler):
        app = compiler.compile_source(APP_SOURCE, SCHEMA)
        assert app.app.name == "Store"
        chain = app.chain("A", "B")
        # pinned pair respected; AccessControl may hoist ahead of both? no:
        # LbKeyHash before Compression is pinned; order must contain all 3
        assert sorted(chain.element_order) == [
            "AccessControl",
            "Compression",
            "LbKeyHash",
        ]
        index = {name: i for i, name in enumerate(chain.element_order)}
        assert index["LbKeyHash"] < index["Compression"]

    def test_app_name_required_when_ambiguous(self, compiler):
        two_apps = APP_SOURCE + APP_SOURCE.replace("Store", "Store2")
        with pytest.raises(CompileError, match="exactly one app"):
            compiler.compile_source(two_apps, SCHEMA)
        app = compiler.compile_source(two_apps, SCHEMA, app_name="Store2")
        assert app.app.name == "Store2"

    def test_unknown_chain_lookup(self, compiler):
        app = compiler.compile_source(APP_SOURCE, SCHEMA)
        with pytest.raises(KeyError):
            app.chain("B", "A")

    def test_custom_element_with_stdlib(self, compiler):
        source = (
            """
            element Stamp {
                on request { SELECT input.*, now() AS stamped_at FROM input; }
                on response { SELECT * FROM input; }
            }
            """
            + "app P { service x; service y; chain x -> y { Stamp, Acl } }"
        )
        app = compiler.compile_source(source, SCHEMA)
        chain = app.chain("x", "y")
        assert "Stamp" in chain.elements
        assert "Acl" in chain.elements
