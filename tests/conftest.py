"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.compiler.compiler import AdnCompiler
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.dsl.ast_nodes import ChainDecl
from repro.ir import ElementInstance, analyze_element, build_element_ir
from repro.runtime.message import reset_rpc_ids
from repro.sim import Simulator, two_machine_cluster


@pytest.fixture
def schema() -> RpcSchema:
    """The benchmark app's schema: short byte-string payload plus the
    fields the evaluated elements inspect."""
    return RpcSchema.of(
        "bench",
        payload=FieldType.BYTES,
        username=FieldType.STR,
        obj_id=FieldType.INT,
    )


@pytest.fixture
def registry() -> FunctionRegistry:
    return FunctionRegistry()


@pytest.fixture
def stdlib_program(schema):
    return load_stdlib(schema=schema)


@pytest.fixture
def compiler(registry) -> AdnCompiler:
    return AdnCompiler(registry=registry)


@pytest.fixture
def paper_chain(compiler, stdlib_program, schema):
    """The compiled Figure 5 chain: Logging, Acl, Fault."""
    decl = ChainDecl(src="A", dst="B", elements=("Logging", "Acl", "Fault"))
    return compiler.compile_chain(decl, stdlib_program, schema)


@pytest.fixture
def sim() -> Simulator:
    reset_rpc_ids()
    return Simulator()


@pytest.fixture
def cluster(sim):
    return two_machine_cluster(sim)


def make_rpc(**overrides):
    """A complete request tuple with sensible defaults."""
    rpc = {
        "src": "A.0",
        "dst": "B",
        "rpc_id": 1,
        "method": "get",
        "kind": "request",
        "status": "ok",
        "payload": b"hello world " * 3,
        "username": "usr2",
        "obj_id": 7,
    }
    rpc.update(overrides)
    return rpc


def instance_of(program, name, registry=None) -> ElementInstance:
    """Build a runnable interpreter instance of a stdlib element."""
    ir = build_element_ir(program.elements[name])
    analyze_element(ir, registry)
    return ElementInstance(ir, registry)
