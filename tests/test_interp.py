"""Reference interpreter unit tests (semantics beyond what the stdlib
tests cover: joins, fan-out, NULL handling, errors)."""

import pytest

from repro.dsl.parser import parse_element
from repro.dsl.validator import validate_element
from repro.errors import RuntimeFault
from repro.ir.analysis import analyze_element
from repro.ir.builder import build_element_ir
from repro.ir.interp import ElementInstance


def instance(source, registry=None):
    ir = build_element_ir(validate_element(parse_element(source)))
    analyze_element(ir, registry)
    return ElementInstance(ir, registry)


RPC = {
    "src": "A.0",
    "dst": "B",
    "rpc_id": 1,
    "method": "get",
    "kind": "request",
    "status": "ok",
    "a": 5,
    "b": 2,
}


class TestProjections:
    def test_field_override(self):
        element = instance(
            "element E { on request { SELECT input.*, a + b AS a FROM input; } }"
        )
        out = element.process(dict(RPC), "request")
        assert out[0]["a"] == 7
        assert out[0]["b"] == 2

    def test_narrowing_drops_fields(self):
        element = instance(
            "element E { on request { SELECT input.a FROM input; } }"
        )
        out = element.process(dict(RPC), "request")
        assert out[0] == {"a": 5}

    def test_case_expression(self):
        element = instance(
            """
            element E {
                on request {
                    SELECT input.*, CASE WHEN a > 3 THEN 'big' ELSE 'small' END AS size
                    FROM input;
                }
            }
            """
        )
        out = element.process(dict(RPC), "request")
        assert out[0]["size"] == "big"


class TestJoins:
    SOURCE = """
    element E {
        state t (k: int KEY, v: str);
        init { INSERT INTO t VALUES (5, 'five'), (6, 'six'); }
        on request {
            SELECT input.*, t.v AS label FROM input JOIN t ON t.k == input.a;
        }
    }
    """

    def test_matching_join(self):
        element = instance(self.SOURCE)
        out = element.process(dict(RPC), "request")
        assert out[0]["label"] == "five"

    def test_non_matching_join_drops(self):
        element = instance(self.SOURCE)
        rpc = dict(RPC, a=99)
        assert element.process(rpc, "request") == []

    def test_fan_out_join(self):
        element = instance(
            """
            element E {
                state t (k: int, v: str);
                init { INSERT INTO t VALUES (5, 'x'), (5, 'y'); }
                on request {
                    SELECT input.*, t.v AS tag FROM input JOIN t ON t.k == input.a;
                }
            }
            """
        )
        out = element.process(dict(RPC), "request")
        assert sorted(row["tag"] for row in out) == ["x", "y"]

    def test_star_over_joined_table(self):
        element = instance(
            """
            element E {
                state t (k: int KEY, v: str);
                init { INSERT INTO t VALUES (5, 'five'); }
                on request {
                    SELECT t.* FROM input JOIN t ON t.k == input.a;
                }
            }
            """
        )
        out = element.process(dict(RPC), "request")
        assert out[0] == {"k": 5, "v": "five"}


class TestStateMutations:
    def test_update_uses_input(self):
        element = instance(
            """
            element E {
                state t (k: int KEY, n: int);
                init { INSERT INTO t VALUES (5, 0); }
                on request {
                    UPDATE t SET n = n + input.b WHERE k == input.a;
                    SELECT * FROM input;
                }
            }
            """
        )
        element.process(dict(RPC), "request")
        element.process(dict(RPC), "request")
        assert element.state.table("t").get(5)["n"] == 4

    def test_delete_where(self):
        element = instance(
            """
            element E {
                state t (k: int KEY, n: int);
                init { INSERT INTO t VALUES (1, 10), (2, 20), (3, 30); }
                on request {
                    DELETE FROM t WHERE n >= input.a * 4;
                    SELECT * FROM input;
                }
            }
            """
        )
        element.process(dict(RPC), "request")  # a=5 → delete n >= 20
        assert len(element.state.table("t")) == 1

    def test_guarded_set_skipped(self):
        element = instance(
            """
            element E {
                var n: int = 0;
                on request {
                    SET n = n + 1 WHERE input.a > 100;
                    SELECT * FROM input;
                }
            }
            """
        )
        element.process(dict(RPC), "request")
        assert element.state.vars["n"] == 0

    def test_vars_persist_across_calls(self):
        element = instance(
            """
            element E {
                var n: int = 0;
                on request { SET n = n + 1; SELECT * FROM input; }
            }
            """
        )
        for _ in range(3):
            element.process(dict(RPC), "request")
        assert element.state.vars["n"] == 3


class TestEdgeCases:
    def test_missing_handler_forwards(self):
        element = instance("element E { on request { SELECT * FROM input; } }")
        out = element.process(dict(RPC), "response")
        assert out == [dict(RPC)]

    def test_unknown_field_raises(self):
        element = instance(
            "element E { on request { SELECT input.ghost FROM input; } }"
        )
        with pytest.raises(RuntimeFault, match="no field"):
            element.process(dict(RPC), "request")

    def test_null_comparison_is_false(self):
        element = instance(
            "element E { on request { SELECT * FROM input WHERE input.a > 3; } }"
        )
        rpc = dict(RPC, a=None)
        assert element.process(rpc, "request") == []

    def test_division_by_zero_raises(self):
        element = instance(
            "element E { on request { SELECT input.a / 0 AS x FROM input; } }"
        )
        with pytest.raises(RuntimeFault, match="division"):
            element.process(dict(RPC), "request")

    def test_clone_fresh_reinitializes(self):
        element = instance(
            """
            element E {
                state t (k: int KEY, v: str);
                init { INSERT INTO t VALUES (1, 'x'); }
                var n: int = 0;
                on request { SET n = n + 1; SELECT * FROM input; }
            }
            """
        )
        element.process(dict(RPC), "request")
        clone = element.clone_fresh()
        assert clone.state.vars["n"] == 0
        assert len(clone.state.table("t")) == 1

    def test_multiple_statements_all_from_original_input(self):
        # each statement re-reads the element's input, not prior outputs
        element = instance(
            """
            element E {
                on request {
                    SELECT input.*, a + 1 AS a FROM input;
                    SELECT input.*, a + 10 AS a FROM input;
                }
            }
            """
        )
        out = element.process(dict(RPC), "request")
        assert [row["a"] for row in out] == [6, 15]


class TestColumnAggregates:
    SOURCE = """
    element E {
        state t (k: int KEY, v: int);
        init { INSERT INTO t VALUES (1, 10), (2, 20), (3, 30); }
        on request {
            SELECT input.*, sum_of(t, v) AS total, min_of(t, v) AS lo,
                   max_of(t, v) AS hi, avg_of(t, v) AS mean
            FROM input;
        }
    }
    """

    def test_aggregates_evaluate(self):
        element = instance(self.SOURCE)
        out = element.process(dict(RPC), "request")[0]
        assert out["total"] == 60
        assert out["lo"] == 10
        assert out["hi"] == 30
        assert out["mean"] == pytest.approx(20.0)

    def test_empty_table_semantics(self):
        element = instance(
            """
            element E {
                state t (k: int KEY, v: int);
                on request {
                    SELECT input.*, sum_of(t, v) AS total FROM input
                    WHERE sum_of(t, v) == 0;
                }
            }
            """
        )
        out = element.process(dict(RPC), "request")
        assert out[0]["total"] == 0

    def test_aggregate_validation(self):
        from repro.errors import DslValidationError

        with pytest.raises(DslValidationError, match="column"):
            instance(
                """
                element E {
                    state t (k: int KEY, v: int);
                    on request {
                        SELECT * FROM input WHERE sum_of(t, ghost) > 0;
                    }
                }
                """
            )

    def test_aggregate_needs_table(self):
        from repro.errors import DslValidationError

        with pytest.raises(DslValidationError, match="state-table name"):
            instance(
                "element E { on request { SELECT * FROM input WHERE sum_of(input.a, x) > 0; } }"
            )

    def test_aggregates_software_only(self):
        from repro.compiler.backends import EbpfBackend, P4Backend
        from repro.dsl import DEFAULT_REGISTRY

        ir = build_element_ir(
            validate_element(
                parse_element(
                    """
                    element E {
                        state t (k: int KEY, v: int);
                        on request {
                            SELECT * FROM input WHERE sum_of(t, v) < 10;
                        }
                    }
                    """
                )
            )
        )
        analyze_element(ir, DEFAULT_REGISTRY)
        assert not EbpfBackend(DEFAULT_REGISTRY).check(ir).legal
        assert not P4Backend(DEFAULT_REGISTRY).check(ir).legal
