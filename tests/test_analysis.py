"""Element analysis unit tests: read/write sets, drop/multiply flags,
determinism, and field propagation."""

import pytest

from repro.dsl import FieldType, RpcSchema, load_stdlib
from repro.dsl.parser import parse_element
from repro.dsl.validator import validate_element
from repro.ir.analysis import analyze_element
from repro.ir.builder import build_element_ir


def analyzed(source, schema=None):
    ir = build_element_ir(validate_element(parse_element(source), schema=schema))
    return analyze_element(ir)


@pytest.fixture(scope="module")
def stdlib_analyses():
    schema = RpcSchema.of(
        "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
    )
    program = load_stdlib(schema=schema)
    result = {}
    for name, element in program.elements.items():
        ir = build_element_ir(element)
        result[name] = analyze_element(ir)
    return result


class TestReadWriteSets:
    def test_reads_from_where(self):
        analysis = analyzed(
            "element E { on request { SELECT * FROM input WHERE input.a > input.b; } }"
        )
        assert analysis.fields_read == {"a", "b"}

    def test_writes_from_aliases(self):
        analysis = analyzed(
            "element E { on request { SELECT input.*, hash(input.a) AS h FROM input; } }"
        )
        assert "h" in analysis.fields_written
        assert analysis.fields_read == {"a"}

    def test_reads_from_join_condition(self):
        analysis = analyzed(
            """
            element E {
                state t (k: int KEY, v: str);
                on request {
                    SELECT input.* FROM input JOIN t ON t.k == input.obj;
                }
            }
            """
        )
        assert "obj" in analysis.fields_read
        assert "t" in analysis.handlers["request"].state_read

    def test_state_written_by_insert(self):
        analysis = analyzed(
            """
            element E {
                state t (x: int KEY);
                on request {
                    INSERT INTO t SELECT input.x FROM input;
                    SELECT * FROM input;
                }
            }
            """
        )
        assert analysis.state_written == {"t"}
        assert analysis.observable_effects


class TestDropAndMultiply:
    def test_filter_can_drop(self):
        analysis = analyzed(
            "element E { on request { SELECT * FROM input WHERE input.a > 0; } }"
        )
        assert analysis.can_drop

    def test_join_can_drop(self):
        analysis = analyzed(
            """
            element E {
                state t (k: int KEY, v: str);
                on request {
                    SELECT input.* FROM input JOIN t ON t.k == input.x;
                }
            }
            """
        )
        assert analysis.can_drop

    def test_unconditional_forward_cannot_drop(self):
        analysis = analyzed("element E { on request { SELECT * FROM input; } }")
        assert not analysis.can_drop

    def test_no_emit_always_drops(self):
        analysis = analyzed(
            """
            element E {
                state t (x: int KEY);
                on request { INSERT INTO t SELECT input.x FROM input; }
            }
            """
        )
        assert analysis.can_drop

    def test_multi_emit_multiplies(self):
        analysis = analyzed(
            """
            element E {
                on request {
                    SELECT * FROM input;
                    SELECT * FROM input WHERE input.a > 0;
                }
            }
            """
        )
        assert analysis.can_multiply
        assert not analysis.can_drop  # first emit is unconditional

    def test_unique_key_join_does_not_multiply(self):
        analysis = analyzed(
            """
            element E {
                state t (k: int KEY, v: str);
                on request {
                    SELECT input.* FROM input JOIN t ON t.k == input.x;
                }
            }
            """
        )
        assert not analysis.can_multiply

    def test_non_key_join_multiplies(self):
        analysis = analyzed(
            """
            element E {
                state t (k: int, v: str);
                on request {
                    SELECT input.* FROM input JOIN t ON t.k == input.x;
                }
            }
            """
        )
        assert analysis.can_multiply

    def test_multi_column_key_join(self):
        analysis = analyzed(
            """
            element E {
                state t (a: int KEY, b: int KEY, v: str);
                on request {
                    SELECT input.* FROM input
                    JOIN t ON t.a == input.x AND t.b == input.y;
                }
            }
            """
        )
        assert not analysis.can_multiply

    def test_partial_key_join_multiplies(self):
        analysis = analyzed(
            """
            element E {
                state t (a: int KEY, b: int KEY, v: str);
                on request {
                    SELECT input.* FROM input JOIN t ON t.a == input.x;
                }
            }
            """
        )
        assert analysis.can_multiply


class TestDeterminismAndNarrowing:
    def test_rand_breaks_determinism(self):
        analysis = analyzed(
            "element E { on request { SELECT * FROM input WHERE rand() > 0.5; } }"
        )
        assert not analysis.deterministic

    def test_deterministic_element(self):
        analysis = analyzed(
            "element E { on request { SELECT * FROM input WHERE input.a == 1; } }"
        )
        assert analysis.deterministic

    def test_narrowing_projection(self):
        analysis = analyzed(
            "element E { on request { SELECT input.a FROM input; } }"
        )
        handler = analysis.handlers["request"]
        assert handler.narrowed_to == {"a"}
        assert handler.propagate_fields(frozenset({"a", "b", "c"})) == {"a"}

    def test_star_projection_propagates_everything(self):
        analysis = analyzed(
            "element E { on request { SELECT input.*, 1 AS extra FROM input; } }"
        )
        handler = analysis.handlers["request"]
        assert handler.narrowed_to is None
        incoming = frozenset({"a", "b"})
        assert handler.propagate_fields(incoming) == {"a", "b", "extra"}

    def test_payload_funcs_detected(self):
        analysis = analyzed(
            "element E { on request { SELECT input.*, compress(input.p) AS p FROM input; } }"
        )
        assert analysis.payload_funcs == {"compress"}


class TestStdlibFacts:
    """The analysis facts the optimizer relies on, for the shipped
    elements."""

    def test_logging(self, stdlib_analyses):
        logging = stdlib_analyses["Logging"]
        assert not logging.can_drop
        assert logging.observable_effects
        assert logging.append_only_state

    def test_acl(self, stdlib_analyses):
        acl = stdlib_analyses["Acl"]
        assert acl.can_drop
        assert not acl.observable_effects
        assert acl.deterministic
        assert "username" in acl.fields_read

    def test_fault(self, stdlib_analyses):
        fault = stdlib_analyses["Fault"]
        assert fault.can_drop
        assert not fault.deterministic
        assert not fault.observable_effects

    def test_lb_writes_dst(self, stdlib_analyses):
        lb = stdlib_analyses["LbKeyHash"]
        assert "dst" in lb.fields_written
        assert "obj_id" in lb.fields_read
        assert lb.keyed_state

    def test_compression_touches_payload_only(self, stdlib_analyses):
        compression = stdlib_analyses["Compression"]
        assert compression.fields_written == {"payload"}
        # reads the payload plus the status guard (abort responses skip
        # the decompression)
        assert compression.fields_read == {"payload", "status"}

    def test_mirror_multiplies(self, stdlib_analyses):
        assert stdlib_analyses["Mirror"].can_multiply

    def test_handler_costs_positive(self, stdlib_analyses):
        for name, analysis in stdlib_analyses.items():
            assert analysis.handler_cost_us("request") > 0, name

    def test_op_counts_positive(self, stdlib_analyses):
        for name, analysis in stdlib_analyses.items():
            assert analysis.handler_ops("request") > 0, name
