"""Parser/lexer robustness: arbitrary input must either parse or raise
a DSL error — never crash with anything else, never hang."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl.lexer import tokenize
from repro.dsl.parser import parse
from repro.dsl.printer import print_program
from repro.errors import AdnError

dsl_alphabet = (
    string.ascii_letters
    + string.digits
    + " \t\n'\"(){};:,.*+-/%<>=!_#"
)


class TestFuzz:
    @given(st.text(alphabet=dsl_alphabet, max_size=300))
    @settings(max_examples=300, deadline=None)
    def test_parse_never_crashes(self, source):
        try:
            parse(source)
        except AdnError:
            pass  # rejection with a typed error is the contract

    @given(st.text(max_size=200))
    @settings(max_examples=200, deadline=None)
    def test_parse_arbitrary_unicode(self, source):
        try:
            parse(source)
        except AdnError:
            pass

    @given(st.text(alphabet=dsl_alphabet, max_size=300))
    @settings(max_examples=200, deadline=None)
    def test_lexer_never_crashes(self, source):
        try:
            tokenize(source)
        except AdnError:
            pass

    @given(st.text(alphabet=dsl_alphabet, max_size=300))
    @settings(max_examples=100, deadline=None)
    def test_accepted_input_round_trips(self, source):
        """Anything the parser accepts must print and re-parse to the
        same tree (printer totality over the parseable language)."""
        try:
            program = parse(source)
        except AdnError:
            return
        printed = print_program(program)
        reparsed = parse(printed)
        assert reparsed.elements == program.elements
        assert reparsed.filters == program.filters
        assert reparsed.apps == program.apps
