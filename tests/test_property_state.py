"""Property-based tests for state tables: split/merge inverses, delta
replay equivalence, and upsert semantics under random op sequences."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl.ast_nodes import ColumnDef, StateDecl
from repro.dsl.schema import FieldType
from repro.state.table import StateTable


def decl():
    return StateDecl(
        name="t",
        columns=(
            ColumnDef("k", FieldType.INT, is_key=True),
            ColumnDef("v", FieldType.INT),
        ),
    )


def rows_of(table):
    return sorted((row["k"], row["v"]) for row in table.rows())


keys = st.integers(min_value=0, max_value=50)
values = st.integers(min_value=-1000, max_value=1000)

#: a random mutation: ("insert", k, v) | ("update", k, v) | ("delete", k)
operations = st.one_of(
    st.tuples(st.just("insert"), keys, values),
    st.tuples(st.just("update"), keys, values),
    st.tuples(st.just("delete"), keys, values),
)


def apply_op(table, op):
    kind, key, value = op
    if kind == "insert":
        table.insert({"k": key, "v": value})
    elif kind == "update":
        table.update_where(
            lambda row: row["k"] == key, lambda row: {"v": value}
        )
    else:
        table.delete_where(lambda row: row["k"] == key)


class TestSplitMergeProperties:
    @given(
        contents=st.lists(st.tuples(keys, values), max_size=60),
        ways=st.integers(min_value=1, max_value=6),
    )
    @settings(max_examples=80)
    def test_split_merge_identity(self, contents, ways):
        table = StateTable(decl())
        for key, value in contents:
            table.insert({"k": key, "v": value})
        parts = table.split(ways)
        merged = StateTable.merge(decl(), parts)
        assert rows_of(merged) == rows_of(table)

    @given(
        contents=st.lists(st.tuples(keys, values), max_size=60),
        ways=st.integers(min_value=2, max_value=6),
    )
    @settings(max_examples=80)
    def test_split_parts_are_disjoint_and_complete(self, contents, ways):
        table = StateTable(decl())
        for key, value in contents:
            table.insert({"k": key, "v": value})
        parts = table.split(ways)
        seen = []
        for part in parts:
            seen.extend(row["k"] for row in part.rows())
        assert sorted(seen) == sorted(row["k"] for row in table.rows())
        assert len(seen) == len(set(seen))

    @given(contents=st.lists(st.tuples(keys, values), max_size=60))
    @settings(max_examples=50)
    def test_partition_routing_matches_split(self, contents):
        """The router-side hash (partition_key_for) must agree with where
        split() actually put each row — otherwise scale-out would route
        lookups to the wrong shard."""
        table = StateTable(decl())
        for key, value in contents:
            table.insert({"k": key, "v": value})
        ways = 3
        parts = table.split(ways)
        for index, part in enumerate(parts):
            for row in part.rows():
                assert table.partition_key_for(row) % ways == index


class TestDeltaReplayProperties:
    @given(
        initial=st.lists(st.tuples(keys, values), max_size=30),
        mutations=st.lists(operations, max_size=40),
    )
    @settings(max_examples=80)
    def test_snapshot_plus_deltas_equals_source(self, initial, mutations):
        source = StateTable(decl())
        for key, value in initial:
            source.insert({"k": key, "v": value})
        target = StateTable(decl())
        source.start_delta_log()
        target.load_snapshot(source.snapshot())
        for op in mutations:
            apply_op(source, op)
        target.apply_deltas(source.drain_delta_log())
        assert rows_of(target) == rows_of(source)

    @given(mutations=st.lists(operations, max_size=40))
    @settings(max_examples=60)
    def test_upsert_means_keys_unique(self, mutations):
        table = StateTable(decl())
        for op in mutations:
            apply_op(table, op)
        all_keys = [row["k"] for row in table.rows()]
        assert len(all_keys) == len(set(all_keys))
