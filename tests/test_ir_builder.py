"""IR lowering unit tests."""

import pytest

from repro.dsl.parser import parse_element
from repro.dsl.validator import validate_element
from repro.errors import CompileError
from repro.ir.builder import build_element_ir
from repro.ir.nodes import (
    AssignVar,
    DeleteRows,
    EmitRows,
    FilterRows,
    InsertLiterals,
    InsertRows,
    JoinState,
    Project,
    Scan,
    UpdateRows,
)


def lower(source):
    return build_element_ir(validate_element(parse_element(source)))


def ops_of(ir, kind="request", statement=0):
    return ir.handlers[kind].statements[statement].ops


class TestSelectLowering:
    def test_plain_select_star(self):
        ir = lower("element E { on request { SELECT * FROM input; } }")
        ops = ops_of(ir)
        assert [type(op) for op in ops] == [Scan, Project, EmitRows]
        project = ops[1]
        assert project.keep_input
        assert project.items == ()

    def test_select_with_alias(self):
        ir = lower(
            """
            element E {
                on request { SELECT input.*, hash(x) AS h FROM input; }
            }
            """
        )
        project = ops_of(ir)[1]
        assert project.keep_input
        assert project.items[0][0] == "h"

    def test_join_filter_order(self):
        ir = lower(
            """
            element E {
                state t (k: int KEY, v: int);
                on request {
                    SELECT input.* FROM input JOIN t ON t.k == input.x
                    WHERE t.v > 0;
                }
            }
            """
        )
        ops = ops_of(ir)
        assert [type(op) for op in ops] == [
            Scan,
            JoinState,
            FilterRows,
            Project,
            EmitRows,
        ]

    def test_select_into_table(self):
        ir = lower(
            """
            element E {
                state t (ts: float, p: bytes) APPEND;
                on request {
                    INSERT INTO t SELECT now(), input.p FROM input;
                    SELECT * FROM input;
                }
            }
            """
        )
        ops = ops_of(ir, statement=0)
        assert isinstance(ops[-1], InsertRows)
        project = ops[-2]
        # positional mapping onto the table's columns
        assert [name for name, _ in project.items] == ["ts", "p"]

    def test_unaliased_expression_needs_alias(self):
        with pytest.raises(CompileError, match="alias"):
            lower("element E { on request { SELECT 1 + 2 FROM input; } }")

    def test_unaliased_column_uses_own_name(self):
        ir = lower("element E { on request { SELECT input.x FROM input; } }")
        project = ops_of(ir)[1]
        assert project.items[0][0] == "x"
        assert not project.keep_input


class TestOtherLowering:
    def test_update(self):
        ir = lower(
            """
            element E {
                state t (k: str KEY, n: int);
                on request { UPDATE t SET n = n + 1; SELECT * FROM input; }
            }
            """
        )
        op = ops_of(ir)[0]
        assert isinstance(op, UpdateRows)
        assert op.table == "t"

    def test_delete(self):
        ir = lower(
            """
            element E {
                state t (k: str KEY, n: int);
                on request { DELETE FROM t WHERE n > 3; SELECT * FROM input; }
            }
            """
        )
        assert isinstance(ops_of(ir)[0], DeleteRows)

    def test_set_var(self):
        ir = lower(
            """
            element E {
                var n: int = 0;
                on request { SET n = n + 1; SELECT * FROM input; }
            }
            """
        )
        op = ops_of(ir)[0]
        assert isinstance(op, AssignVar)
        assert op.var == "n"

    def test_insert_values_in_init(self):
        ir = lower(
            """
            element E {
                state t (k: str KEY, v: str);
                init { INSERT INTO t VALUES ('a', 'b'); }
                on request { SELECT * FROM input; }
            }
            """
        )
        op = ir.init[0].ops[0]
        assert isinstance(op, InsertLiterals)
        assert op.rows == (("a", "b"),)

    def test_missing_handler_lowered_as_absent(self):
        ir = lower("element E { on request { SELECT * FROM input; } }")
        assert ir.handler("response") is None

    def test_statement_emits_property(self):
        ir = lower(
            """
            element E {
                state t (x: int KEY);
                on request {
                    INSERT INTO t SELECT input.x FROM input;
                    SELECT * FROM input;
                }
            }
            """
        )
        statements = ir.handlers["request"].statements
        assert not statements[0].emits
        assert statements[0].writes_state
        assert statements[1].emits
        assert not statements[1].writes_state

    def test_meta_copied(self):
        ir = lower(
            """
            element E {
                meta { position: sender; mandatory: true; }
                on request { SELECT * FROM input; }
            }
            """
        )
        assert ir.position == "sender"
        assert ir.mandatory
