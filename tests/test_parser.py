"""Parser unit tests."""

import pytest

from repro.dsl.ast_nodes import (
    BinaryOp,
    CaseExpr,
    ColumnRef,
    DeleteStmt,
    FuncCall,
    InsertValues,
    Literal,
    SelectItem,
    SelectStmt,
    SetStmt,
    Star,
    UnaryOp,
    UpdateStmt,
)
from repro.dsl.parser import Parser, parse, parse_element
from repro.dsl.schema import FieldType
from repro.errors import DslSyntaxError

MINIMAL = """
element E {
    on request { SELECT * FROM input; }
}
"""


def only_stmt(source):
    element = parse_element(source)
    return element.handlers[0].statements[0]


class TestElementStructure:
    def test_minimal_element(self):
        element = parse_element(MINIMAL)
        assert element.name == "E"
        assert element.handlers[0].kind == "request"

    def test_meta_block(self):
        element = parse_element(
            """
            element E {
                meta { position: sender; mandatory: true; rate: 100.5; window: 3; }
                on request { SELECT * FROM input; }
            }
            """
        )
        assert element.meta == {
            "position": "sender",
            "mandatory": True,
            "rate": 100.5,
            "window": 3,
        }

    def test_state_declaration(self):
        element = parse_element(
            """
            element E {
                state t (k: int KEY, v: str);
                on request { SELECT * FROM input; }
            }
            """
        )
        decl = element.states[0]
        assert decl.name == "t"
        assert decl.columns[0].is_key
        assert decl.columns[0].type is FieldType.INT
        assert not decl.columns[1].is_key
        assert not decl.append_only

    def test_append_only_state(self):
        element = parse_element(
            """
            element E {
                state log_t (x: bytes) APPEND;
                on request { SELECT * FROM input; }
            }
            """
        )
        assert element.states[0].append_only

    def test_var_declaration(self):
        element = parse_element(
            """
            element E {
                var n: int = 0;
                var f: float = -1.5;
                on request { SELECT * FROM input; }
            }
            """
        )
        assert element.vars[0].init.value == 0
        assert element.vars[1].init.value == -1.5

    def test_init_block(self):
        element = parse_element(
            """
            element E {
                state t (k: str KEY, v: str);
                init { INSERT INTO t VALUES ('a', 'b'), ('c', 'd'); }
                on request { SELECT * FROM input; }
            }
            """
        )
        insert = element.init[0]
        assert isinstance(insert, InsertValues)
        assert len(insert.rows) == 2

    def test_both_handlers(self):
        element = parse_element(
            """
            element E {
                on request { SELECT * FROM input; }
                on response { SELECT * FROM input; }
            }
            """
        )
        assert {h.kind for h in element.handlers} == {"request", "response"}

    def test_bad_handler_kind(self):
        with pytest.raises(DslSyntaxError):
            parse_element("element E { on sideways { SELECT * FROM input; } }")

    def test_duplicate_element_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse(MINIMAL + MINIMAL)


class TestSelect:
    def test_star(self):
        stmt = only_stmt(MINIMAL)
        assert isinstance(stmt, SelectStmt)
        assert stmt.items == (Star(None),)
        assert stmt.source == "input"

    def test_qualified_star_and_alias(self):
        stmt = only_stmt(
            """
            element E {
                on request {
                    SELECT input.*, hash(input.k) AS h FROM input;
                }
            }
            """
        )
        star, item = stmt.items
        assert star == Star("input")
        assert isinstance(item, SelectItem)
        assert item.alias == "h"
        assert isinstance(item.expr, FuncCall)

    def test_join_and_where(self):
        stmt = only_stmt(
            """
            element E {
                state t (k: int KEY, v: str);
                on request {
                    SELECT input.* FROM input JOIN t ON t.k == input.obj
                    WHERE t.v == 'x';
                }
            }
            """
        )
        assert stmt.joins[0].table == "t"
        assert isinstance(stmt.joins[0].on, BinaryOp)
        assert isinstance(stmt.where, BinaryOp)

    def test_multiple_joins(self):
        stmt = only_stmt(
            """
            element E {
                state a (k: int KEY, v: str);
                state b (k: int KEY, w: str);
                on request {
                    SELECT input.* FROM input
                    JOIN a ON a.k == input.x
                    JOIN b ON b.k == input.y;
                }
            }
            """
        )
        assert [j.table for j in stmt.joins] == ["a", "b"]

    def test_insert_select_into(self):
        stmt = only_stmt(
            """
            element E {
                state t (ts: float, p: bytes) APPEND;
                on request {
                    INSERT INTO t SELECT now(), input.payload FROM input;
                }
            }
            """
        )
        assert isinstance(stmt, SelectStmt)
        assert stmt.into == "t"

    def test_missing_from_rejected(self):
        with pytest.raises(DslSyntaxError):
            parse_element("element E { on request { SELECT *; } }")


class TestOtherStatements:
    def test_update(self):
        stmt = only_stmt(
            """
            element E {
                state t (k: str KEY, n: int);
                on request {
                    UPDATE t SET n = n + 1 WHERE k == input.m;
                }
            }
            """
        )
        assert isinstance(stmt, UpdateStmt)
        assert stmt.assignments[0][0] == "n"

    def test_delete(self):
        stmt = only_stmt(
            """
            element E {
                state t (k: str KEY, n: int);
                on request { DELETE FROM t WHERE n > 10; }
            }
            """
        )
        assert isinstance(stmt, DeleteStmt)

    def test_set_with_guard(self):
        stmt = only_stmt(
            """
            element E {
                var tokens: float = 10.0;
                on request { SET tokens = tokens - 1.0 WHERE tokens >= 1.0; }
            }
            """
        )
        assert isinstance(stmt, SetStmt)
        assert stmt.where is not None


class TestExpressions:
    def parse_expr(self, text):
        return Parser(text).parse_expr()

    def test_precedence_arithmetic(self):
        expr = self.parse_expr("1 + 2 * 3")
        assert isinstance(expr, BinaryOp)
        assert expr.op == "+"
        assert isinstance(expr.right, BinaryOp)
        assert expr.right.op == "*"

    def test_precedence_logic(self):
        expr = self.parse_expr("a == 1 or b == 2 and c == 3")
        assert expr.op == "or"
        assert expr.right.op == "and"

    def test_not_binds_tighter_than_and(self):
        expr = self.parse_expr("not a and b")
        assert expr.op == "and"
        assert isinstance(expr.left, UnaryOp)

    def test_parentheses(self):
        expr = self.parse_expr("(1 + 2) * 3")
        assert expr.op == "*"
        assert expr.left.op == "+"

    def test_unary_minus(self):
        expr = self.parse_expr("-x")
        assert isinstance(expr, UnaryOp)
        assert expr.op == "-"

    def test_modulo(self):
        expr = self.parse_expr("hash(x) % count(t)")
        assert expr.op == "%"

    def test_case_expression(self):
        expr = self.parse_expr(
            "CASE WHEN x > 1 THEN 'big' WHEN x > 0 THEN 'small' ELSE 'neg' END"
        )
        assert isinstance(expr, CaseExpr)
        assert len(expr.whens) == 2
        assert expr.default == Literal("neg")

    def test_case_requires_when(self):
        with pytest.raises(DslSyntaxError):
            self.parse_expr("CASE ELSE 1 END")

    def test_column_ref_forms(self):
        assert self.parse_expr("x") == ColumnRef(None, "x")
        assert self.parse_expr("input.x") == ColumnRef("input", "x")

    def test_literals(self):
        assert self.parse_expr("true") == Literal(True)
        assert self.parse_expr("null") == Literal(None)
        assert self.parse_expr("'s'") == Literal("s")

    def test_single_equals_is_comparison(self):
        expr = self.parse_expr("a = 1")
        assert expr.op == "=="


class TestFiltersAndApps:
    def test_filter(self):
        program = parse(
            """
            filter Retry {
                meta { max_retries: 3; }
                use operator retry;
            }
            """
        )
        filt = program.filters["Retry"]
        assert filt.operator == "retry"
        assert filt.meta["max_retries"] == 3

    def test_filter_requires_operator(self):
        with pytest.raises(DslSyntaxError):
            parse("filter F { meta { timeout_ms: 5.0; } }")

    def test_app(self):
        program = parse(
            """
            app Shop {
                service frontend;
                service cart replicas 3;
                chain frontend -> cart { Logging, Acl }
                constrain Acl outside_app;
                constrain Logging before Acl;
                guarantee reliable ordered;
            }
            """
        )
        app = program.apps["Shop"]
        assert app.service("cart").replicas == 3
        assert app.chains[0].elements == ("Logging", "Acl")
        kinds = {c.kind for c in app.constraints}
        assert kinds == {"outside_app", "before"}
        assert app.guarantees.reliable and app.guarantees.ordered

    def test_app_colocate(self):
        program = parse(
            """
            app P {
                service a;
                service b;
                chain a -> b { Enc }
                constrain Enc colocate sender;
            }
            """
        )
        constraint = program.apps["P"].constraints[0]
        assert constraint.kind == "colocate"
        assert constraint.args == ("Enc", "sender")

    def test_empty_chain(self):
        program = parse(
            "app P { service a; service b; chain a -> b { } }"
        )
        assert program.apps["P"].chains[0].elements == ()

    def test_mixed_program(self):
        program = parse(
            MINIMAL + "app P { service a; service b; chain a -> b { E } }"
        )
        assert set(program.elements) == {"E"}
        assert set(program.apps) == {"P"}
