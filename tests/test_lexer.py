"""Lexer unit tests."""

import pytest

from repro.dsl.lexer import Lexer, tokenize
from repro.dsl.tokens import TokenType
from repro.errors import DslSyntaxError


def kinds(source):
    return [t.type for t in tokenize(source)]


def values(source):
    return [t.value for t in tokenize(source) if t.type is not TokenType.EOF]


class TestBasicTokens:
    def test_empty_source_yields_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].type is TokenType.EOF

    def test_identifiers_and_keywords(self):
        tokens = tokenize("select foo FROM input")
        assert tokens[0].type is TokenType.KEYWORD
        assert tokens[0].value == "SELECT"
        assert tokens[1].type is TokenType.IDENT
        assert tokens[1].value == "foo"
        assert tokens[2].value == "FROM"

    def test_keywords_case_insensitive(self):
        for variant in ("select", "SELECT", "SeLeCt"):
            token = tokenize(variant)[0]
            assert token.type is TokenType.KEYWORD
            assert token.value == "SELECT"

    def test_identifiers_case_sensitive(self):
        assert values("Foo foo FOO_bar") == ["Foo", "foo", "FOO_bar"]

    def test_underscore_identifier(self):
        token = tokenize("_internal")[0]
        assert token.type is TokenType.IDENT
        assert token.value == "_internal"


class TestNumbers:
    def test_integer(self):
        token = tokenize("42")[0]
        assert token.type is TokenType.INT
        assert token.value == "42"

    def test_float(self):
        token = tokenize("0.02")[0]
        assert token.type is TokenType.FLOAT
        assert token.value == "0.02"

    def test_scientific_notation(self):
        token = tokenize("1e6")[0]
        assert token.type is TokenType.FLOAT
        token = tokenize("2.5E-3")[0]
        assert token.type is TokenType.FLOAT
        assert token.value == "2.5E-3"

    def test_integer_then_dot_not_float(self):
        # "1.x" must lex as INT DOT IDENT (field access), not a float
        tokens = tokenize("input.payload")
        assert [t.type for t in tokens[:3]] == [
            TokenType.IDENT,
            TokenType.DOT,
            TokenType.IDENT,
        ]


class TestStrings:
    def test_single_quoted(self):
        token = tokenize("'usr1'")[0]
        assert token.type is TokenType.STRING
        assert token.value == "usr1"

    def test_double_quoted(self):
        token = tokenize('"hello"')[0]
        assert token.value == "hello"

    def test_escapes(self):
        token = tokenize(r"'a\nb\tc\\d'")[0]
        assert token.value == "a\nb\tc\\d"

    def test_escaped_quote(self):
        token = tokenize(r"'it\'s'")[0]
        assert token.value == "it's"

    def test_unterminated_string_raises(self):
        with pytest.raises(DslSyntaxError):
            tokenize("'oops")

    def test_unknown_escape_raises(self):
        with pytest.raises(DslSyntaxError):
            tokenize(r"'\q'")


class TestOperators:
    def test_two_char_operators(self):
        assert kinds("== != <= >= ->")[:-1] == [
            TokenType.EQEQ,
            TokenType.NEQ,
            TokenType.LTE,
            TokenType.GTE,
            TokenType.ARROW,
        ]

    def test_sql_style_not_equal(self):
        assert tokenize("<>")[0].type is TokenType.NEQ

    def test_single_char_operators(self):
        assert kinds("+ - * / % = < > ( ) { } , ; : .")[:-1] == [
            TokenType.PLUS,
            TokenType.MINUS,
            TokenType.STAR,
            TokenType.SLASH,
            TokenType.PERCENT,
            TokenType.EQ,
            TokenType.LT,
            TokenType.GT,
            TokenType.LPAREN,
            TokenType.RPAREN,
            TokenType.LBRACE,
            TokenType.RBRACE,
            TokenType.COMMA,
            TokenType.SEMICOLON,
            TokenType.COLON,
            TokenType.DOT,
        ]

    def test_unexpected_character(self):
        with pytest.raises(DslSyntaxError) as excinfo:
            tokenize("@")
        assert "unexpected character" in str(excinfo.value)


class TestCommentsAndPositions:
    def test_sql_comment_skipped(self):
        assert values("-- a comment\nfoo") == ["foo"]

    def test_hash_comment_skipped(self):
        assert values("# comment\nbar") == ["bar"]

    def test_minus_not_comment(self):
        assert values("a - b") == ["a", "-", "b"]

    def test_line_and_column_tracking(self):
        tokens = tokenize("a\n  b")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_error_carries_position(self):
        lexer = Lexer("ab\n @")
        lexer.next_token()
        with pytest.raises(DslSyntaxError) as excinfo:
            lexer.next_token()
        assert excinfo.value.line == 2
        assert excinfo.value.column == 2
