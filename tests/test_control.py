"""Control-plane tests: mini cluster manager, placement solver,
controller reconciliation, hot updates."""

import pytest

from repro.compiler.compiler import AdnCompiler
from repro.control import (
    ADDED,
    AdnController,
    ClusterSpec,
    DELETED,
    KIND_ADN_CONFIG,
    KIND_DEPLOYMENT,
    MODIFIED,
    MiniKube,
    PlacementRequest,
    solve_placement,
)
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.dsl.ast_nodes import ChainDecl
from repro.errors import ControlPlaneError, PlacementError
from repro.platforms import Platform
from repro.runtime.message import reset_rpc_ids
from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)

APP = """
app Store {
    service A;
    service B replicas 2;
    chain A -> B { LbKeyHash, Logging, Acl, Fault }
}
"""


def compiled_chain(*names, registry=None):
    registry = registry or FunctionRegistry()
    program = load_stdlib(schema=SCHEMA)
    compiler = AdnCompiler(registry=registry)
    decl = ChainDecl(src="A", dst="B", elements=tuple(names))
    return compiler.compile_chain(decl, program, SCHEMA)


class TestMiniKube:
    def test_apply_get_list(self):
        kube = MiniKube()
        kube.apply_deployment("B", 2)
        obj = kube.get(KIND_DEPLOYMENT, "B")
        assert obj.spec["replicas"] == 2
        assert [o.name for o in kube.list(KIND_DEPLOYMENT)] == ["B"]

    def test_versions_increase(self):
        kube = MiniKube()
        first = kube.apply_deployment("B", 1)
        second = kube.apply_deployment("B", 2)
        assert second.version > first.version

    def test_watch_events(self):
        kube = MiniKube()
        events = []
        kube.watch(lambda event, obj: events.append((event, obj.name)))
        kube.apply_deployment("B", 1)
        kube.apply_deployment("B", 2)
        kube.delete(KIND_DEPLOYMENT, "B")
        assert events == [(ADDED, "B"), (MODIFIED, "B"), (DELETED, "B")]

    def test_watch_level_triggered(self):
        kube = MiniKube()
        kube.apply_deployment("B", 1)
        events = []
        kube.watch(lambda event, obj: events.append(event))
        assert events == [ADDED]

    def test_watch_kind_filter(self):
        kube = MiniKube()
        events = []
        kube.watch(
            lambda event, obj: events.append(obj.kind), kinds=[KIND_ADN_CONFIG]
        )
        kube.apply_deployment("B", 1)
        kube.apply_adn_config("cfg", "-- src", "App")
        assert events == [KIND_ADN_CONFIG]

    def test_unsubscribe(self):
        kube = MiniKube()
        events = []
        unsubscribe = kube.watch(lambda e, o: events.append(e))
        unsubscribe()
        kube.apply_deployment("B", 1)
        assert events == []

    def test_unknown_kind_rejected(self):
        kube = MiniKube()
        with pytest.raises(ControlPlaneError):
            kube.apply("Gadget", "g", {})

    def test_delete_missing(self):
        kube = MiniKube()
        with pytest.raises(ControlPlaneError):
            kube.delete(KIND_DEPLOYMENT, "ghost")

    def test_replicas_validated(self):
        kube = MiniKube()
        with pytest.raises(ControlPlaneError):
            kube.apply_deployment("B", 0)


class TestPlacementSolver:
    def test_software_strategy_single_engine_segment(self):
        chain = compiled_chain("Logging", "Acl", "Fault")
        plan = solve_placement(PlacementRequest(chain=chain, schema=SCHEMA))
        assert len(plan.segments) == 1
        assert plan.segments[0].platform is Platform.MRPC
        assert plan.segments[0].machine == "client-host"

    def test_inapp_strategy_uses_rpclib(self):
        chain = compiled_chain("LbKeyHash", "Compression")
        plan = solve_placement(
            PlacementRequest(chain=chain, schema=SCHEMA, strategy="inapp")
        )
        assert all(
            seg.platform is Platform.RPC_LIB for seg in plan.segments
        )
        assert plan.client_transport == "proxyless"

    def test_mandatory_element_never_in_app(self):
        chain = compiled_chain("Acl")  # meta mandatory: true
        plan = solve_placement(
            PlacementRequest(chain=chain, schema=SCHEMA, strategy="inapp")
        )
        assert plan.segments[0].platform is not Platform.RPC_LIB

    def test_offload_uses_switch_when_available(self):
        chain = compiled_chain("Acl", "Fault")
        plan = solve_placement(
            PlacementRequest(
                chain=chain,
                schema=SCHEMA,
                strategy="offload",
                cluster=ClusterSpec(programmable_switch=True, smartnics=True),
            )
        )
        platforms = {seg.platform for seg in plan.segments}
        assert Platform.SWITCH_P4 in platforms

    def test_offload_without_hardware_falls_back(self):
        chain = compiled_chain("Acl", "Fault")
        plan = solve_placement(
            PlacementRequest(
                chain=chain,
                schema=SCHEMA,
                strategy="offload",
                cluster=ClusterSpec(programmable_switch=False, smartnics=False),
            )
        )
        platforms = {seg.platform for seg in plan.segments}
        assert Platform.SWITCH_P4 not in platforms
        assert Platform.SMARTNIC not in platforms

    def test_payload_element_stays_in_software(self):
        chain = compiled_chain("Compression")
        plan = solve_placement(
            PlacementRequest(
                chain=chain,
                schema=SCHEMA,
                strategy="offload",
                cluster=ClusterSpec(programmable_switch=True, smartnics=True),
            )
        )
        assert plan.segments[0].platform in (
            Platform.MRPC,
            Platform.RPC_LIB,
        )

    def test_position_meta_respected(self):
        chain = compiled_chain("Compression", "Decompression")
        plan = solve_placement(PlacementRequest(chain=chain, schema=SCHEMA))
        locations = plan.element_locations()
        assert locations["Compression"][1] == "client-host"
        assert locations["Decompression"][1] == "server-host"

    def test_colocate_override(self):
        chain = compiled_chain("Logging")
        plan = solve_placement(
            PlacementRequest(
                chain=chain,
                schema=SCHEMA,
                colocate={"Logging": "receiver"},
            )
        )
        assert plan.element_locations()["Logging"][1] == "server-host"

    def test_path_monotonicity(self):
        chain = compiled_chain("Compression", "Acl", "Decompression")
        plan = solve_placement(
            PlacementRequest(
                chain=chain,
                schema=SCHEMA,
                strategy="offload",
                cluster=ClusterSpec(programmable_switch=True, smartnics=True),
            )
        )
        from repro.control.placement import _PATH_POSITION

        positions = []
        for segment in plan.segments:
            side = (
                "switch"
                if segment.machine == "switch"
                else ("client" if segment.machine == "client-host" else "server")
            )
            positions.append(_PATH_POSITION[(side, segment.platform)])
        assert positions == sorted(positions)

    def test_scaleout_strategy_replicates(self):
        chain = compiled_chain("Logging", "Acl", "Fault")
        plan = solve_placement(
            PlacementRequest(
                chain=chain, schema=SCHEMA, strategy="scaleout", replicas=4
            )
        )
        assert plan.segments[0].replicas == 4

    def test_unknown_strategy(self):
        chain = compiled_chain("Acl")
        with pytest.raises(PlacementError):
            solve_placement(
                PlacementRequest(chain=chain, schema=SCHEMA, strategy="magic")
            )

    def test_outside_app_request(self):
        chain = compiled_chain("Logging")
        plan = solve_placement(
            PlacementRequest(
                chain=chain,
                schema=SCHEMA,
                strategy="inapp",
                outside_app=("Logging",),
            )
        )
        assert plan.segments[0].platform is not Platform.RPC_LIB


class TestController:
    def test_reconcile_on_config(self):
        kube = MiniKube()
        controller = AdnController(kube, SCHEMA)
        kube.apply_adn_config("cfg", APP, "Store")
        assert ("A", "B") in controller.installed
        chain = controller.installed[("A", "B")].chain
        assert set(chain.element_order) == {"LbKeyHash", "Logging", "Acl", "Fault"}

    def test_install_and_run(self):
        reset_rpc_ids()
        kube = MiniKube()
        controller = AdnController(kube, SCHEMA)
        kube.apply_deployment("B", 2)
        kube.apply_adn_config("cfg", APP, "Store")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = controller.install_stack(sim, cluster, "A", "B")
        client = ClosedLoopClient(sim, stack.call, concurrency=8, total_rpcs=200)
        metrics = client.run()
        assert metrics.completed == 200

    def test_deployment_change_updates_endpoints_live(self):
        reset_rpc_ids()
        kube = MiniKube()
        controller = AdnController(kube, SCHEMA)
        kube.apply_deployment("B", 2)
        kube.apply_adn_config("cfg", APP, "Store")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = controller.install_stack(sim, cluster, "A", "B")
        kube.apply_deployment("B", 4)
        lb_table = stack.processors[0].element_state("LbKeyHash").table(
            "endpoints"
        )
        assert len(lb_table) == 4

    def test_hot_update_preserves_state(self):
        reset_rpc_ids()
        kube = MiniKube()
        controller = AdnController(kube, SCHEMA)
        kube.apply_adn_config("cfg", APP, "Store")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = controller.install_stack(sim, cluster, "A", "B")
        # run some traffic so the logger accumulates state
        client = ClosedLoopClient(sim, stack.call, concurrency=4, total_rpcs=50)
        client.run()
        log_before = len(
            stack.processors[0].element_state("Logging").table("log_tab")
        )
        assert log_before > 0
        # re-apply the same program: hot update, state carried over
        kube.apply_adn_config("cfg", APP, "Store")
        installed = controller.installed[("A", "B")]
        assert installed.stack is stack
        log_after = len(
            stack.processors[0].element_state("Logging").table("log_tab")
        )
        assert log_after == log_before

    def test_config_delete_uninstalls(self):
        kube = MiniKube()
        controller = AdnController(kube, SCHEMA)
        kube.apply_adn_config("cfg", APP, "Store")
        kube.delete(KIND_ADN_CONFIG, "cfg")
        assert controller.installed == {}

    def test_install_unknown_chain(self):
        kube = MiniKube()
        controller = AdnController(kube, SCHEMA)
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        with pytest.raises(ControlPlaneError):
            controller.install_stack(sim, cluster, "X", "Y")

    def test_history_recorded(self):
        kube = MiniKube()
        controller = AdnController(kube, SCHEMA)
        kube.apply_adn_config("cfg", APP, "Store")
        kube.apply_deployment("B", 3)
        assert controller.generation >= 2
        assert any(
            "installed chain" in action
            for record in controller.history
            for action in record.actions
        )


class TestControllerResilience:
    def test_bad_config_rejected_keeps_old(self):
        kube = MiniKube()
        controller = AdnController(kube, SCHEMA)
        kube.apply_adn_config("cfg", APP, "Store")
        assert ("A", "B") in controller.installed
        old_chain = controller.installed[("A", "B")].chain
        # a syntactically broken update must not dislodge the running app
        kube.apply_adn_config("cfg", "element Broken {", "Store")
        assert controller.installed[("A", "B")].chain is old_chain
        assert any(
            "REJECTED" in action
            for record in controller.history
            for action in record.actions
        )

    def test_semantically_bad_config_rejected(self):
        kube = MiniKube()
        controller = AdnController(kube, SCHEMA)
        bad = """
        app Store {
            service A; service B;
            chain A -> B { Ghost }
        }
        """
        kube.apply_adn_config("cfg", bad, "Store")
        assert controller.installed == {}
        assert any(
            "REJECTED" in action
            for record in controller.history
            for action in record.actions
        )

    def test_strategy_from_config(self):
        from repro.control import ClusterSpec
        from repro.platforms import Platform

        kube = MiniKube()
        controller = AdnController(
            kube,
            SCHEMA,
            cluster_spec=ClusterSpec(
                smartnics=True, programmable_switch=True
            ),
        )
        app = """
        app Store {
            service A; service B;
            chain A -> B { Acl, Fault }
        }
        """
        kube.apply_adn_config("cfg", app, "Store", strategy="offload")
        plan = controller.installed[("A", "B")].plan
        platforms = {seg.platform for seg in plan.segments}
        assert Platform.SWITCH_P4 in platforms
