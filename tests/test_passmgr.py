"""Pass-manager pipeline tests: per-pass reports, cross-element fusion
(legality + behaviour equivalence), dead-field elimination, and the
compiler's artifact cache."""

import random

import pytest

from repro.compiler.compiler import AdnCompiler
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.dsl.ast_nodes import ChainDecl
from repro.dsl.parser import parse_element
from repro.dsl.validator import validate_element
from repro.ir.analysis import analyze_element
from repro.ir.builder import build_element_ir
from repro.ir.nodes import AdvanceInput, Project
from repro.ir.optimizer import ChainContext, OptimizerOptions, optimize_chain
from repro.ir.passes import eliminate_dead_fields, fuse_elements, fuse_group
from repro.ir.passmgr import format_report_table

from conftest import make_rpc

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)


def element_ir(source, registry=None, schema=None, validate=True):
    element = parse_element(source)
    if validate:
        element = validate_element(
            element, schema=schema or SCHEMA, registry=registry
        )
    ir = build_element_ir(element)
    analyze_element(ir, registry)
    return ir


def stdlib_irs(*names, registry=None):
    program = load_stdlib(schema=SCHEMA)
    result = []
    for name in names:
        ir = build_element_ir(program.elements[name])
        analyze_element(ir, registry)
        result.append(ir)
    return result


class TestPassReports:
    def chain(self, options, *names):
        registry = FunctionRegistry()
        context = ChainContext(registry=registry, schema=SCHEMA)
        return optimize_chain(
            stdlib_irs(*names, registry=registry), context, options
        )

    def test_every_pass_reports(self):
        chain = self.chain(OptimizerOptions(), "Logging", "Acl", "Fault")
        names = [report.name for report in chain.pass_reports]
        assert names == [
            "constant_folding",
            "predicate_pushdown",
            "reorder",
            "dead_fields",
            "fuse_elements",
            "parallelize",
        ]
        for report in chain.pass_reports:
            assert report.legality_ok

    def test_disabled_pass_marked_skipped(self):
        chain = self.chain(
            OptimizerOptions(reorder=False), "Logging", "Acl", "Fault"
        )
        by_name = {report.name: report for report in chain.pass_reports}
        assert by_name["reorder"].skipped
        assert by_name["reorder"].notes == ("disabled by options",)
        # fusion is opt-in, so it is skipped by default too
        assert by_name["fuse_elements"].skipped

    def test_fusion_report_counts_merges(self):
        chain = self.chain(
            OptimizerOptions(fusion=True), "Logging", "Acl", "Fault"
        )
        by_name = {report.name: report for report in chain.pass_reports}
        assert by_name["fuse_elements"].rewrites == 2  # 3 members, 2 merges
        assert len(chain.element_names) == 1

    def test_report_table_renders(self):
        chain = self.chain(
            OptimizerOptions(fusion=True), "Logging", "Acl", "Fault"
        )
        table = format_report_table(chain.pass_reports)
        assert "pass" in table and "rewrites" in table
        for name in ("constant_folding", "fuse_elements", "dead_fields"):
            assert name in table

    def test_no_schema_skips_dead_fields(self):
        registry = FunctionRegistry()
        chain = optimize_chain(
            stdlib_irs("Logging", "Acl", registry=registry),
            ChainContext(registry=registry),  # no schema
            OptimizerOptions(),
        )
        by_name = {report.name: report for report in chain.pass_reports}
        assert by_name["dead_fields"].skipped


class TestFusionLegality:
    def fuse(self, irs, pinned=()):
        registry = FunctionRegistry()
        return fuse_elements(irs, tuple(pinned), registry)

    def test_refuses_fanout_member(self):
        elements, groups, notes = self.fuse(
            stdlib_irs("Logging", "Mirror", "Acl")
        )
        # Mirror fans out; nothing may fuse across it
        names = [e.name for e in elements]
        assert "Mirror" in names
        assert all("__" not in name or "Mirror" not in name for name in names)
        assert any("fans out" in note for note in notes)

    def test_refuses_pinned_pair(self):
        elements, groups, notes = self.fuse(
            stdlib_irs("Logging", "Acl"), pinned=[("Logging", "Acl")]
        )
        assert [e.name for e in elements] == ["Logging", "Acl"]
        assert groups == []
        assert any("ordering constraint" in note for note in notes)

    def test_refuses_response_dropper(self):
        dropper = element_ir(
            """
            element RespFilter {
                on request { SELECT * FROM input; }
                on response {
                    SELECT * FROM input WHERE input.status == 'ok';
                }
            }
            """
        )
        logging_ir, acl_ir = stdlib_irs("Logging", "Acl")
        elements, groups, notes = self.fuse([logging_ir, dropper, acl_ir])
        assert [e.name for e in elements] == ["Logging", "RespFilter", "Acl"]
        assert any("drop responses" in note for note in notes)

    def test_refuses_sender_receiver_merge(self):
        elements, groups, notes = self.fuse(
            stdlib_irs("Compression", "Decompression")
        )
        assert [e.name for e in elements] == ["Compression", "Decompression"]
        assert any("positions" in note for note in notes)

    def test_fused_metadata_and_seams(self):
        registry = FunctionRegistry()
        fused = fuse_group(
            stdlib_irs("Logging", "Acl", "Fault", registry=registry), registry
        )
        assert fused.name == "Logging__Acl__Fault"
        assert fused.meta["fused_from"] == ("Logging", "Acl", "Fault")
        seams = [
            op
            for stmt in fused.handlers["request"].statements
            for op in stmt.ops
            if isinstance(op, AdvanceInput)
        ]
        assert [seam.source for seam in seams] == ["Logging", "Acl"]

    def test_colliding_state_tables_renamed(self):
        first = element_ir(
            """
            element CountA {
                state seen (n: int);
                on request {
                    INSERT INTO seen SELECT input.obj_id FROM input;
                    SELECT * FROM input;
                }
            }
            """
        )
        second = element_ir(
            """
            element CountB {
                state seen (n: int);
                on request {
                    INSERT INTO seen SELECT input.obj_id FROM input;
                    SELECT * FROM input;
                }
            }
            """
        )
        registry = FunctionRegistry()
        fused = fuse_group([first, second], registry)
        table_names = {decl.name for decl in fused.states}
        # first occupant keeps the name; the second is prefixed
        assert table_names == {"seen", "CountB__seen"}


class TestFusedBehaviourEquivalence:
    """The fused chain is byte-identical to the unfused one on the
    paper's Logging -> ACL -> Fault evaluation chain (same seeded
    rand() stream on both sides)."""

    NAMES = ("Logging", "Acl", "Fault")

    def compile_chain(self, fusion, seed):
        registry = FunctionRegistry(rng=random.Random(seed))
        program = load_stdlib(schema=SCHEMA)
        compiler = AdnCompiler(
            registry=registry, options=OptimizerOptions(fusion=fusion)
        )
        return compiler.compile_chain(
            ChainDecl(src="A", dst="B", elements=self.NAMES), program, SCHEMA
        )

    @staticmethod
    def run_rows(chain, rows, kind):
        instances = {
            name: chain.elements[name].artifact("python").factory()
            for name in chain.element_order
        }
        order = (
            chain.element_order
            if kind == "request"
            else tuple(reversed(chain.element_order))
        )
        results = []
        for row in rows:
            current = dict(row)
            dropped = False
            for name in order:
                outputs = instances[name].process(dict(current), kind)
                if not outputs:
                    dropped = True
                    break
                current = outputs[0]
            results.append(None if dropped else current)
        return results

    @staticmethod
    def rows(count):
        rng = random.Random(3)
        return [
            make_rpc(
                rpc_id=index,
                username=rng.choice(["usr1", "usr2", "ghost"]),
                obj_id=rng.randrange(64),
                payload=b"x" * rng.choice([8, 64, 256]),
            )
            for index in range(count)
        ]

    def test_request_direction_identical(self):
        rows = self.rows(300)
        plain = self.run_rows(self.compile_chain(False, seed=11), rows, "request")
        fused = self.run_rows(self.compile_chain(True, seed=11), rows, "request")
        assert plain == fused
        dropped = sum(1 for result in plain if result is None)
        assert 0 < dropped < len(rows)  # the comparison exercised drops

    def test_response_direction_identical(self):
        rows = [dict(row, kind="response") for row in self.rows(120)]
        plain = self.run_rows(self.compile_chain(False, seed=5), rows, "response")
        fused = self.run_rows(self.compile_chain(True, seed=5), rows, "response")
        assert plain == fused

    def test_fused_drop_reports_progress(self):
        chain = self.compile_chain(True, seed=11)
        (name,) = chain.element_order
        instance = chain.elements[name].artifact("python").factory()
        denied = make_rpc(username="ghost")  # ACL (mid-chain) denies
        outputs = instance.process(dict(denied), "request")
        assert outputs == []
        assert instance.fused_progress > 0


class TestDeadFieldElimination:
    def optimize(self, irs, options=None):
        registry = FunctionRegistry()
        return optimize_chain(
            irs,
            ChainContext(registry=registry, schema=SCHEMA),
            options or OptimizerOptions(),
        )

    def test_unread_written_field_removed_and_off_the_wire(self):
        stamp = element_ir(
            """
            element Stamp {
                on request {
                    SELECT input.*, hash(input.username) AS zone FROM input;
                }
                on response { SELECT * FROM input; }
            }
            """
        )
        (acl,) = stdlib_irs("Acl")
        chain = self.optimize([stamp, acl])
        optimized = {e.name: e for e in chain.elements}["Stamp"]
        assert "zone" not in optimized.analysis.fields_written
        # the removed field never crosses the wire: a compiled instance
        # does not emit it
        compiler = AdnCompiler()
        compiled = compiler._compile_ir(optimized)
        (output,) = compiled.artifact("python").factory().process(
            make_rpc(), "request"
        )
        assert "zone" not in output

    def test_field_read_by_response_handler_is_live(self):
        stamp = element_ir(
            """
            element Stamp {
                on request {
                    SELECT input.*, hash(input.username) AS zone FROM input;
                }
                on response { SELECT * FROM input; }
            }
            """
        )
        # reads a field another element derived, so the schema-driven
        # validator cannot see it; build the IR unvalidated
        reader = element_ir(
            """
            element ZoneReader {
                state zones (z: int);
                on request { SELECT * FROM input; }
                on response {
                    INSERT INTO zones SELECT input.zone FROM input;
                    SELECT * FROM input;
                }
            }
            """,
            validate=False,
        )
        chain = self.optimize([stamp, reader])
        optimized = {e.name: e for e in chain.elements}["Stamp"]
        # the response path echoes the request tuple, so the field is live
        assert "zone" in optimized.analysis.fields_written

    def test_nondeterministic_write_kept(self):
        jitter = element_ir(
            """
            element Jitter {
                on request {
                    SELECT input.*, rand() AS jitter FROM input;
                }
                on response { SELECT * FROM input; }
            }
            """
        )
        (acl,) = stdlib_irs("Acl")
        chain = self.optimize([jitter, acl])
        optimized = {e.name: e for e in chain.elements}["Jitter"]
        # removing the rand() call would shift the draw sequence
        assert "jitter" in optimized.analysis.fields_written

    def test_narrowing_projection_never_emptied(self):
        narrow = element_ir(
            """
            element Narrow {
                on request {
                    SELECT hash(input.username) AS only_field FROM input;
                }
                on response { SELECT * FROM input; }
            }
            """
        )
        registry = FunctionRegistry()
        elements, removed = eliminate_dead_fields([narrow], SCHEMA, registry)
        projects = [
            op
            for stmt in elements[0].handlers["request"].statements
            for op in stmt.ops
            if isinstance(op, Project)
        ]
        assert all(len(op.items) >= 1 for op in projects)


class TestArtifactCache:
    def test_recompile_hits_cache(self):
        program = load_stdlib(schema=SCHEMA)
        compiler = AdnCompiler(registry=FunctionRegistry())
        decl = ChainDecl(src="A", dst="B", elements=("Logging", "Acl"))
        compiler.compile_chain(decl, program, SCHEMA)
        misses_after_first = compiler.cache_stats.misses
        assert compiler.cache_stats.hits == 0
        compiler.compile_chain(decl, program, SCHEMA)
        assert compiler.cache_stats.misses == misses_after_first
        assert compiler.cache_stats.hits == misses_after_first
        assert compiler.cache_stats.lookups == 2 * misses_after_first

    def test_cached_factories_are_independent(self):
        program = load_stdlib(schema=SCHEMA)
        compiler = AdnCompiler(registry=FunctionRegistry())
        decl = ChainDecl(src="A", dst="B", elements=("Logging",))
        first = compiler.compile_chain(decl, program, SCHEMA)
        second = compiler.compile_chain(decl, program, SCHEMA)
        a = first.elements["Logging"].artifact("python").factory()
        b = second.elements["Logging"].artifact("python").factory()
        a.process(make_rpc(), "request")
        # a cache hit shares source, not state: b's tables stay empty
        assert a.state is not b.state
        assert len(list(a.state.table("log_tab").rows())) == 1
        assert len(list(b.state.table("log_tab").rows())) == 0

    def test_different_options_do_not_collide(self):
        program = load_stdlib(schema=SCHEMA)
        decl = ChainDecl(src="A", dst="B", elements=("Logging", "Acl", "Fault"))
        fused = AdnCompiler(
            registry=FunctionRegistry(), options=OptimizerOptions(fusion=True)
        ).compile_chain(decl, program, SCHEMA)
        plain = AdnCompiler(registry=FunctionRegistry()).compile_chain(
            decl, program, SCHEMA
        )
        assert len(fused.element_order) == 1
        assert len(plain.element_order) == 3


class TestFusedBackendLegality:
    def fused_ir(self):
        registry = FunctionRegistry()
        return fuse_group(
            stdlib_irs("Logging", "Acl", registry=registry), registry
        )

    def test_kernel_backends_refuse_fused_elements(self):
        from repro.compiler.backends import make_backends

        backends = make_backends(FunctionRegistry())
        fused = self.fused_ir()
        for name in ("ebpf", "p4"):
            report = backends[name].check(fused)
            assert not report.legal
            assert any("fused" in v for v in report.violations)

    def test_software_backends_accept_fused_elements(self):
        from repro.compiler.backends import make_backends

        backends = make_backends(FunctionRegistry())
        fused = self.fused_ir()
        assert backends["python"].check(fused).legal
