"""Soundness property for the type checker: a chain the checker calls
clean (zero ADN5xx findings under the closed schema) never raises
RuntimeFault on any schema-conforming message. This is the checker's
contract — errors mean *guaranteed* faults, warnings mean *possible*
faults, silence means the reference interpreter cannot fault."""

from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.analysis import check_chain
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.errors import RuntimeFault
from repro.ir.analysis import analyze_element
from repro.ir.builder import build_element_ir
from repro.ir.interp import ChainExecutor

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)
PROGRAM = load_stdlib(schema=SCHEMA)

#: stdlib elements that are individually checker-clean (the two load
#: balancers carry a deliberate ADN505 divisor warning and are excluded
#: by the `assume` below anyway)
POOL = [
    "Logging",
    "Acl",
    "Fault",
    "Compression",
    "Metrics",
    "RateLimit",
    "Admission",
    "Mirror",
    "Encryption",
    "Router",
]

chains = st.lists(st.sampled_from(POOL), min_size=1, max_size=4, unique=True)

field_text = st.text(
    alphabet=st.characters(codec="ascii", exclude_characters="\x00"),
    max_size=20,
)

messages = st.fixed_dictionaries(
    {
        "src": field_text,
        "dst": field_text,
        "rpc_id": st.integers(min_value=0, max_value=2**31),
        "method": field_text,
        "kind": st.just("request"),
        "status": st.sampled_from(["ok", "err", ""]),
        "username": field_text,
        "payload": st.binary(max_size=32),
        "obj_id": st.integers(min_value=-(2**31), max_value=2**31),
    }
)


def build_chain(names, registry):
    irs = []
    for name in names:
        ir = build_element_ir(PROGRAM.elements[name])
        analyze_element(ir, registry)
        irs.append(ir)
    return irs


class TestCheckerSoundness:
    @given(names=chains, batch=st.lists(messages, min_size=1, max_size=4))
    @settings(max_examples=120, deadline=None)
    def test_clean_chains_never_fault(self, names, batch):
        registry = FunctionRegistry()
        irs = build_chain(names, registry)
        report = check_chain(irs, SCHEMA, registry)
        assume(not report.findings)
        executor = ChainExecutor(irs, registry)
        for message in batch:
            try:
                outputs = executor.process(dict(message), "request")
            except RuntimeFault as fault:
                raise AssertionError(
                    f"checker-clean chain {names} faulted on {message}: "
                    f"{fault}"
                )
            for reply in outputs:
                response = dict(reply)
                response["kind"] = "response"
                try:
                    executor.process(response, "response")
                except RuntimeFault as fault:
                    raise AssertionError(
                        f"checker-clean chain {names} faulted on response "
                        f"{response}: {fault}"
                    )

    @given(names=chains)
    @settings(max_examples=40, deadline=None)
    def test_chain_report_is_deterministic(self, names):
        registry = FunctionRegistry()
        irs = build_chain(names, registry)
        first = check_chain(irs, SCHEMA, registry)
        second = check_chain(irs, SCHEMA, registry)
        assert [f.key() for f in first.findings] == [
            f.key() for f in second.findings
        ]
