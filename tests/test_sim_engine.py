"""Simulation engine tests: event ordering, processes, resources,
stores, metrics."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    US,
    LatencySeries,
    Resource,
    RunMetrics,
    Simulator,
    Store,
)


class TestEventsAndTime:
    def test_timeout_ordering(self):
        sim = Simulator()
        trace = []
        sim.process(self._ticker(sim, 0.3, "late", trace))
        sim.process(self._ticker(sim, 0.1, "early", trace))
        sim.run()
        assert trace == [("early", 0.1), ("late", 0.3)]

    @staticmethod
    def _ticker(sim, delay, tag, trace):
        yield sim.timeout(delay)
        trace.append((tag, sim.now))

    def test_fifo_tie_breaking(self):
        sim = Simulator()
        trace = []

        def proc(tag):
            yield sim.timeout(1.0)
            trace.append(tag)

        for tag in "abc":
            sim.process(proc(tag))
        sim.run()
        assert trace == ["a", "b", "c"]

    def test_negative_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.timeout(-1)

    def test_run_until_pauses(self):
        sim = Simulator()
        fired = []
        sim.process(self._ticker(sim, 5.0, "x", fired))
        sim.run(until=1.0)
        assert sim.now == 1.0
        assert fired == []
        sim.run()
        assert fired

    def test_time_stays_at_last_event(self):
        sim = Simulator()
        sim.process(self._ticker(sim, 2.0, "x", []))
        sim.run(until=100.0)
        assert sim.now == 2.0

    def test_event_double_trigger_rejected(self):
        sim = Simulator()
        event = sim.event()
        event.succeed(1)
        with pytest.raises(SimulationError):
            event.succeed(2)


class TestProcesses:
    def test_process_return_value(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(1.0)
            return 42

        process = sim.process(worker())
        assert sim.run_until_complete(process) == 42

    def test_nested_processes(self):
        sim = Simulator()

        def inner():
            yield sim.timeout(1.0)
            return "inner-done"

        def outer():
            result = yield sim.process(inner())
            return result + "!"

        assert sim.run_until_complete(sim.process(outer())) == "inner-done!"

    def test_all_of(self):
        sim = Simulator()

        def worker(delay, value):
            yield sim.timeout(delay)
            return value

        def main():
            results = yield sim.all_of(
                [sim.process(worker(0.2, "a")), sim.process(worker(0.1, "b"))]
            )
            return results

        assert sim.run_until_complete(sim.process(main())) == ["a", "b"]

    def test_any_of(self):
        sim = Simulator()

        def worker(delay, value):
            yield sim.timeout(delay)
            return value

        def main():
            winner = yield sim.any_of(
                [sim.process(worker(0.5, "slow")), sim.process(worker(0.1, "fast"))]
            )
            return winner

        assert sim.run_until_complete(sim.process(main())) == "fast"

    def test_exception_propagates(self):
        sim = Simulator()

        def worker():
            yield sim.timeout(0.1)
            raise ValueError("boom")

        sim.process(worker())
        with pytest.raises(ValueError, match="boom"):
            sim.run()

    def test_yielding_non_event_rejected(self):
        sim = Simulator()

        def worker():
            yield 42

        sim.process(worker())
        with pytest.raises(SimulationError, match="must yield Events"):
            sim.run()

    def test_unfinished_process_reported(self):
        sim = Simulator()

        def forever():
            while True:
                yield sim.timeout(1.0)

        process = sim.process(forever())
        with pytest.raises(SimulationError, match="did not finish"):
            sim.run_until_complete(process, limit=10.0)


class TestResource:
    def test_serializes_access(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        finish_times = []

        def worker():
            yield from resource.use(1.0)
            finish_times.append(sim.now)

        for _ in range(3):
            sim.process(worker())
        sim.run()
        assert finish_times == [1.0, 2.0, 3.0]

    def test_capacity_parallelism(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        finish_times = []

        def worker():
            yield from resource.use(1.0)
            finish_times.append(sim.now)

        for _ in range(4):
            sim.process(worker())
        sim.run()
        assert finish_times == [1.0, 1.0, 2.0, 2.0]

    def test_busy_time_accounting(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def worker():
            yield from resource.use(0.5)

        sim.process(worker())
        sim.process(worker())
        sim.run()
        assert resource.busy_time == pytest.approx(1.0)
        assert resource.served == 2
        assert resource.utilization(elapsed=2.0) == pytest.approx(0.5)

    def test_release_idle_rejected(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        with pytest.raises(SimulationError):
            resource.release()

    def test_grow_capacity_wakes_waiters(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        finish_times = []

        def worker():
            yield from resource.use(1.0)
            finish_times.append(sim.now)

        def grower():
            yield sim.timeout(0.1)
            resource.set_capacity(3)

        for _ in range(3):
            sim.process(worker())
        sim.process(grower())
        sim.run()
        # after growth at t=0.1, the two queued workers start immediately
        assert finish_times == [1.0, 1.1, 1.1]

    def test_shrink_capacity_drains(self):
        sim = Simulator()
        resource = Resource(sim, capacity=2)
        finish_times = []

        def worker():
            yield from resource.use(1.0)
            finish_times.append(sim.now)

        def shrinker():
            yield sim.timeout(0.1)
            resource.set_capacity(1)

        for _ in range(4):
            sim.process(worker())
        sim.process(shrinker())
        sim.run()
        # first two run together; afterwards strictly one at a time
        assert finish_times == [1.0, 1.0, 2.0, 3.0]


class TestStore:
    def test_fifo(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            for _ in range(2):
                item = yield store.get()
                got.append(item)

        sim.process(consumer())
        store.put("a")
        store.put("b")
        sim.run()
        assert got == ["a", "b"]

    def test_blocking_get(self):
        sim = Simulator()
        store = Store(sim)
        got = []

        def consumer():
            item = yield store.get()
            got.append((item, sim.now))

        def producer():
            yield sim.timeout(1.5)
            store.put("late")

        sim.process(consumer())
        sim.process(producer())
        sim.run()
        assert got == [("late", 1.5)]


class TestMetrics:
    def test_percentiles(self):
        series = LatencySeries()
        for value in range(1, 101):
            series.record(value / 1000)
        assert series.median == pytest.approx(0.0505, abs=1e-3)
        assert series.percentile(99) == pytest.approx(0.1, abs=2e-3)
        assert series.percentile(0) == pytest.approx(0.001)

    def test_empty_series_nan(self):
        import math

        assert math.isnan(LatencySeries().median)

    def test_run_metrics_throughput(self):
        metrics = RunMetrics()
        metrics.completed = 1000
        metrics.elapsed_s = 0.5
        assert metrics.throughput_rps == 2000
        assert metrics.throughput_krps == 2.0

    def test_littles_law_check(self):
        metrics = RunMetrics()
        metrics.completed = 1000
        metrics.elapsed_s = 1.0
        for _ in range(100):
            metrics.latency.record(0.128)  # N = X*R = 1000 * 0.128 = 128
        assert metrics.check_littles_law(concurrency=128)
        assert not metrics.check_littles_law(concurrency=32)

    def test_cpu_per_rpc(self):
        metrics = RunMetrics()
        metrics.completed = 100
        metrics.cpu_busy_s = {"m1": 0.001, "m2": 0.003}
        assert metrics.cpu_us_per_rpc() == pytest.approx(40.0)
        assert metrics.cpu_us_per_rpc("m1") == pytest.approx(10.0)

    def test_us_constant(self):
        assert US == pytest.approx(1e-6)
