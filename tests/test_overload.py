"""Overload control & graceful degradation (repro.overload).

Unit coverage for every link of the control loop: bounded queues and
queueing-delay accounting in the sim resources, the CoDel + utilization
admission controller, the token-bucket retry budget and circuit breaker,
the retry-policy wrapper that composes them, deadline propagation
through the real wire codec, the processor's overload gates, telemetry's
overload signals, and the autoscaler's shed-before-collapse escalation.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.compiler import AdnCompiler
from repro.control.scaling import Autoscaler, AutoscalerConfig
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.dsl.ast_nodes import ChainDecl
from repro.overload import (
    CIRCUIT_OPEN,
    DEADLINE_EXPIRED,
    DEADLINE_FIELD,
    OVERLOAD_ABORTS,
    QUEUE_FULL,
    SHED,
    AdmissionConfig,
    AdmissionController,
    CircuitBreaker,
    CircuitBreakerPolicy,
    RetryBudget,
    RetryBudgetConfig,
    admission_from_meta,
)
from repro.platforms import Platform
from repro.runtime import AdnMrpcStack
from repro.runtime.filters import RetryPolicy, wrap_retry_policy
from repro.runtime.message import RpcOutcome, make_request, reset_rpc_ids
from repro.runtime.processor import (
    PlacementPlan,
    PlacementSegment,
    ProcessorRuntime,
)
from repro.runtime.telemetry import TelemetryCollector
from repro.sim import Simulator, two_machine_cluster
from repro.sim.resources import Resource, Store

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)


def build_chain(*names, registry=None):
    registry = registry or FunctionRegistry()
    program = load_stdlib(schema=SCHEMA)
    compiler = AdnCompiler(registry=registry)
    decl = ChainDecl(src="A", dst="B", elements=tuple(names))
    return compiler.compile_chain(decl, program, SCHEMA), registry


def advance(sim: Simulator, dt: float) -> None:
    """Move simulated time forward by ``dt``."""

    def waiter():
        yield sim.timeout(dt)

    sim.run_until_complete(sim.process(waiter()))


def complete(sim: Simulator, generator):
    return sim.run_until_complete(sim.process(generator))


def request(**overrides):
    reset_rpc_ids()
    fields = {"payload": b"x", "username": "u", "obj_id": 1}
    fields.update(overrides)
    return make_request(SCHEMA, "A.0", "B", **fields)


# -- bounded queues & queueing-delay accounting -------------------------------


class TestBoundedResource:
    def test_queue_limit_makes_rejects_explicit(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1, queue_limit=1)
        resource.request()  # granted immediately
        assert resource.can_enqueue  # one queue slot left
        resource.request()  # queued
        assert not resource.can_enqueue
        resource.reject()
        assert resource.rejected == 1

    def test_unbounded_queue_always_admits(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        for _ in range(100):
            resource.request()
        assert resource.can_enqueue

    def test_grant_wait_accounting(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def one():
            yield from resource.use(0.010)

        sim.process(one())
        sim.process(one())
        sim.run(until=0.05)
        assert resource.grants == 2
        assert resource.queue_wait_s_total == pytest.approx(0.010)
        assert resource.last_grant_wait_s == pytest.approx(0.010)

    def test_estimated_sojourn_tracks_backlog(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def one():
            yield from resource.use(0.010)

        sim.process(one())
        sim.run(until=0.02)  # establishes mean service time = 10 ms
        assert resource.estimated_sojourn_s() == 0.0
        resource.request()  # in service
        resource.request()  # queued
        resource.request()  # queued
        assert resource.estimated_sojourn_s() == pytest.approx(0.030)

    def test_utilization_integrates_capacity_across_resizes(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def one():
            yield from resource.use(1.0)

        sim.process(one())
        sim.run(until=1.0)
        resource.set_capacity(3)
        advance(sim, 1.0)
        # half the window fully busy at capacity 1, half idle at 3:
        # mean capacity is 2, so utilization is 1.0s / (2.0s * 2) = 0.25
        # (dividing by the current capacity would misreport ~0.167)
        assert resource.capacity_seconds() == pytest.approx(4.0)
        assert resource.utilization(elapsed=2.0) == pytest.approx(0.25)

    def test_bounded_store_rejects_when_full(self):
        sim = Simulator()
        store = Store(sim, queue_limit=1)
        assert store.put("a") is True
        assert store.put("b") is False
        assert store.rejected == 1
        store.get()  # drains the slot
        assert store.can_put


# -- admission control --------------------------------------------------------


def loaded_resource(sim: Simulator, queued: int) -> Resource:
    """A resource with a 1 ms mean service time, one RPC in service and
    ``queued - 1`` more waiting (sojourn estimate = queued ms)."""
    resource = Resource(sim, capacity=1)

    def one():
        yield from resource.use(0.001)

    sim.process(one())
    sim.run(until=0.01)
    for _ in range(queued):
        resource.request()
    return resource


class TestAdmissionController:
    def test_codel_sheds_after_sustained_delay(self):
        sim = Simulator()
        resource = loaded_resource(sim, queued=7)  # sojourn ~7 ms
        controller = AdmissionController(
            sim,
            resource,
            AdmissionConfig(
                target_delay_ms=2.0, interval_ms=10.0, util_threshold=2.0
            ),
        )
        # first above-target observation only starts the clock
        assert controller.admit({}) is None
        advance(sim, 0.011)
        assert controller.admit({}) == SHED
        assert controller.sheds_by_reason["codel"] == 1
        # immediately after a shed, the next drop waits for the cadence
        assert controller.admit({}) is None
        advance(sim, 0.011)
        assert controller.admit({}) == SHED

    def test_codel_resets_when_delay_clears(self):
        sim = Simulator()
        resource = loaded_resource(sim, queued=7)
        controller = AdmissionController(
            sim,
            resource,
            AdmissionConfig(
                target_delay_ms=2.0, interval_ms=10.0, util_threshold=2.0
            ),
        )
        controller.admit({})
        advance(sim, 0.011)
        assert controller.admit({}) == SHED
        # drain the backlog: sojourn drops under target
        for _ in range(7):
            resource.release()
        assert controller.admit({}) is None
        assert controller._dropping is False

    def test_priority_gets_double_delay_allowance(self):
        sim = Simulator()
        resource = loaded_resource(sim, queued=3)  # sojourn ~3 ms
        config = AdmissionConfig(
            target_delay_ms=2.0, interval_ms=5.0, util_threshold=2.0
        )
        low = AdmissionController(sim, resource, config)
        high = AdmissionController(sim, resource, config)
        low.admit({})
        high.admit({"priority": 1})
        advance(sim, 0.006)
        # 3 ms sojourn: above the 2 ms target for low priority, under
        # the doubled 4 ms allowance for high priority
        assert low.admit({}) == SHED
        assert high.admit({"priority": 1}) is None

    def test_engaged_shedding_is_seeded_and_partial(self):
        sim = Simulator()
        config = AdmissionConfig(
            target_delay_ms=1e9, max_shed_probability=0.5, seed=7
        )
        first = AdmissionController(sim, Resource(sim), config)
        second = AdmissionController(sim, Resource(sim), config)
        first.engage(True)
        second.engage(True)
        verdicts = [first.admit({}) for _ in range(200)]
        assert verdicts == [second.admit({}) for _ in range(200)]
        sheds = verdicts.count(SHED)
        assert 0 < sheds < 200  # probabilistic, not all-or-nothing
        assert first.sheds_by_reason["utilization"] == sheds
        assert first.admitted == 200 - sheds

    def test_priority_bypasses_probabilistic_shedding(self):
        sim = Simulator()
        controller = AdmissionController(
            sim,
            Resource(sim),
            AdmissionConfig(target_delay_ms=1e9, max_shed_probability=1.0),
        )
        controller.engage(True)
        assert controller.admit({}) == SHED
        for _ in range(50):
            assert controller.admit({"priority": 1}) is None

    def test_utilization_window_has_a_floor(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        controller = AdmissionController(
            sim, resource, AdmissionConfig(util_window_ms=5.0)
        )

        def one():
            yield from resource.use(0.001)

        complete(sim, one())
        # a sub-window refresh keeps the cached estimate instead of
        # saturating to ~1.0 the moment anything is in service
        advance(sim, 0.0001)
        assert controller.observe_utilization() == 0.0
        advance(sim, 0.01)
        assert 0.0 < controller.observe_utilization() < 0.5

    def test_admission_from_meta(self):
        sim = Simulator()
        assert admission_from_meta(sim, None, {}) is None
        controller = admission_from_meta(
            sim,
            None,
            {"admission_control": True, "target_delay_ms": 5.0, "priority": 2},
        )
        assert controller is not None
        assert controller.config.target_delay_ms == 5.0
        assert controller.config.priority_threshold == 2


# -- retry budget & circuit breaker -------------------------------------------


class TestRetryBudget:
    def test_token_bucket_math(self):
        budget = RetryBudget(
            RetryBudgetConfig(ratio=0.25, min_tokens=2.0, max_tokens=3.0)
        )
        assert budget.tokens == 2.0
        assert budget.try_spend() and budget.try_spend()
        assert not budget.try_spend()
        assert budget.exhausted == 1
        for _ in range(4):  # 4 calls x 0.25 = one whole retry token
            budget.on_call()
        assert budget.try_spend()
        assert budget.spent == 3

    def test_balance_is_capped(self):
        budget = RetryBudget(
            RetryBudgetConfig(ratio=1.0, min_tokens=0.0, max_tokens=2.0)
        )
        for _ in range(10):
            budget.on_call()
        assert budget.tokens == 2.0
        assert budget.deposits == 10


class TestCircuitBreaker:
    def test_full_state_cycle(self):
        sim = Simulator()
        breaker = CircuitBreaker(
            sim,
            CircuitBreakerPolicy(
                failure_threshold=3, open_ms=10.0, half_open_probes=1
            ),
        )
        for _ in range(3):
            assert breaker.allow()
            breaker.record(ok=False)
        assert breaker.state == "open"
        assert breaker.opens == 1
        assert not breaker.allow()
        assert breaker.short_circuited == 1
        advance(sim, 0.011)
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe
        assert not breaker.allow()  # only one probe at a time
        breaker.record(ok=False)  # failed probe: re-open
        assert breaker.state == "open"
        assert breaker.opens == 2
        advance(sim, 0.011)
        assert breaker.allow()
        breaker.record(ok=True)
        assert breaker.state == "closed"
        assert breaker.closes == 1
        assert [state for _, state in breaker.transitions] == [
            "open",
            "open",
            "closed",
        ]

    def test_success_resets_failure_streak(self):
        sim = Simulator()
        breaker = CircuitBreaker(
            sim, CircuitBreakerPolicy(failure_threshold=2)
        )
        breaker.record(ok=False)
        breaker.record(ok=True)
        breaker.record(ok=False)
        assert breaker.state == "closed"


# -- the retry wrapper composing budget + breaker + deadline ------------------


def failing_call(sim: Simulator, reason: str = "Fault"):
    def call(**fields):
        yield sim.timeout(1e-6)
        return RpcOutcome(
            request=dict(fields),
            response={"status": f"aborted:{reason}", "kind": "response"},
            issued_at=sim.now,
            completed_at=sim.now,
            aborted_by=reason,
        )

    return call


class TestWrapRetryPolicy:
    def test_open_breaker_answers_locally(self):
        sim = Simulator()
        breaker = CircuitBreaker(
            sim, CircuitBreakerPolicy(failure_threshold=1, open_ms=1000.0)
        )
        breaker.record(ok=False)  # trip it
        calls = {"n": 0}

        def call(**fields):
            calls["n"] += 1
            yield sim.timeout(1e-6)
            return RpcOutcome(
                request=dict(fields),
                response={"status": "ok", "kind": "response"},
                issued_at=sim.now,
                completed_at=sim.now,
            )

        shaped = wrap_retry_policy(
            sim, call, RetryPolicy(max_attempts=1), breaker=breaker
        )
        outcome = complete(sim, shaped(payload=b"x"))
        assert outcome.aborted_by == CIRCUIT_OPEN
        assert calls["n"] == 0  # zero downstream cost
        assert shaped.stats.short_circuited == 1

    def test_budget_exhaustion_stops_retrying(self):
        sim = Simulator()
        budget = RetryBudget(
            RetryBudgetConfig(ratio=0.0, min_tokens=1.0, max_tokens=1.0)
        )
        shaped = wrap_retry_policy(
            sim,
            failing_call(sim),
            RetryPolicy(
                max_attempts=5,
                per_attempt_timeout_ms=100.0,
                base_backoff_ms=0.0,
                jitter=0.0,
            ),
            budget=budget,
        )
        outcome = complete(sim, shaped(payload=b"x"))
        assert not outcome.ok
        # one try plus the single budgeted retry, then surrender
        assert shaped.stats.attempts == 2
        assert shaped.stats.budget_exhausted == 1
        assert budget.spent == 1

    def test_overload_rejects_are_not_retryable_by_default(self):
        sim = Simulator()
        for reason in sorted(OVERLOAD_ABORTS):
            shaped = wrap_retry_policy(
                sim,
                failing_call(sim, reason=reason),
                RetryPolicy(max_attempts=5, base_backoff_ms=0.0, jitter=0.0),
            )
            outcome = complete(sim, shaped(payload=b"x"))
            assert outcome.aborted_by == reason
            assert shaped.stats.attempts == 1  # no storm amplification

    def test_deadline_budget_is_injected_for_propagation(self):
        sim = Simulator()
        seen = {}

        def call(**fields):
            seen.update(fields)
            yield sim.timeout(1e-6)
            return RpcOutcome(
                request=dict(fields),
                response={"status": "ok", "kind": "response"},
                issued_at=sim.now,
                completed_at=sim.now,
            )

        shaped = wrap_retry_policy(
            sim,
            call,
            RetryPolicy(max_attempts=1, deadline_budget_ms=50.0),
            propagate_deadline=True,
        )
        complete(sim, shaped(payload=b"x"))
        assert seen["deadline_at"] == pytest.approx(0.050)

    def test_amplification_counts_attempts_per_call(self):
        sim = Simulator()
        shaped = wrap_retry_policy(
            sim,
            failing_call(sim),
            RetryPolicy(max_attempts=4, base_backoff_ms=0.0, jitter=0.0),
        )
        for _ in range(3):
            complete(sim, shaped(payload=b"x"))
        assert shaped.stats.amplification() == pytest.approx(4.0)


class TestBackoffProperty:
    """Satellite: the backoff cap applies *after* jitter."""

    @settings(max_examples=120, deadline=None)
    @given(
        attempt=st.integers(min_value=1, max_value=30),
        base=st.floats(min_value=0.1, max_value=100.0),
        multiplier=st.floats(min_value=1.0, max_value=4.0),
        cap=st.floats(min_value=0.1, max_value=200.0),
        jitter=st.floats(min_value=0.0, max_value=1.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_backoff_bounded_and_deterministic(
        self, attempt, base, multiplier, cap, jitter, seed
    ):
        policy = RetryPolicy(
            base_backoff_ms=base,
            backoff_multiplier=multiplier,
            max_backoff_ms=cap,
            jitter=jitter,
            seed=seed,
        )
        first = policy.backoff_s(attempt, random.Random(seed))
        again = policy.backoff_s(attempt, random.Random(seed))
        assert first == again  # deterministic per seed
        assert 0.0 <= first <= cap * 1e-3  # never negative, never past cap


# -- processor overload gates -------------------------------------------------


def build_processor(sim, elements=("Logging",), machine="client-host", **kw):
    chain, registry = build_chain(*elements)
    cluster = two_machine_cluster(sim)
    segment = PlacementSegment(
        platform=Platform.MRPC,
        machine=machine,
        elements=chain.element_order,
        **kw,
    )
    return ProcessorRuntime(sim, cluster, segment, chain, registry)


class TestProcessorGates:
    def test_expired_deadline_drops_before_service_time(self):
        sim = Simulator()
        processor = build_processor(sim)
        advance(sim, 0.010)
        result = complete(
            sim, processor.execute("request", request(), deadline_at=0.001)
        )
        assert result.dropped_by == DEADLINE_EXPIRED
        assert not result.dropped_after_entry
        assert processor.rpcs_deadline_expired == 1
        assert processor.rpcs_dropped == 1
        assert processor.resource.served == 0  # no service time spent

    def test_live_deadline_passes(self):
        sim = Simulator()
        processor = build_processor(sim)
        result = complete(
            sim,
            processor.execute("request", request(), deadline_at=sim.now + 1.0),
        )
        assert result.dropped_by is None

    def test_full_queue_rejects_explicitly(self):
        sim = Simulator()
        processor = build_processor(sim, queue_limit=0)
        assert processor.resource.queue_limit == 0
        processor.resource.request()  # occupy the only slot
        result = complete(sim, processor.execute("request", request()))
        assert result.dropped_by == QUEUE_FULL
        assert processor.rpcs_queue_rejected == 1
        assert processor.resource.rejected == 1
        processor.resource.release()
        result = complete(sim, processor.execute("request", request()))
        assert result.dropped_by is None

    def test_installed_admission_sheds_requests_only(self):
        sim = Simulator()
        processor = build_processor(sim)
        controller = AdmissionController(
            sim,
            processor.resource,
            AdmissionConfig(target_delay_ms=1e9, max_shed_probability=1.0),
        )
        controller.engage(True)
        processor.install_admission(controller)
        result = complete(sim, processor.execute("request", request()))
        assert result.dropped_by == SHED
        assert processor.rpcs_shed == 1
        # the response path is never admission-gated
        result = complete(sim, processor.execute("response", request()))
        assert result.dropped_by is None

    def test_stdlib_admission_element_installs_controller(self):
        sim = Simulator()
        processor = build_processor(
            sim, elements=("AdmissionControl", "Logging")
        )
        assert processor.admission is not None
        assert processor.admission.config.target_delay_ms == 2.0
        assert processor.admission.config.priority_threshold == 1


# -- deadline propagation through the real wire -------------------------------


def build_stack(sim, retry_policy=None, elements=("Logging",), **kw):
    chain, registry = build_chain(*elements)
    cluster = two_machine_cluster(sim)
    plan = PlacementPlan(
        segments=[
            PlacementSegment(
                platform=Platform.MRPC,
                machine="server-host",
                elements=chain.element_order,
            )
        ],
        description="all elements server-side",
    )
    return AdnMrpcStack(
        sim,
        cluster,
        chain,
        SCHEMA,
        registry,
        plan=plan,
        retry_policy=retry_policy,
        **kw,
    )


class TestDeadlinePropagation:
    def test_deadline_field_rides_the_request_header_only(self):
        sim = Simulator()
        stack = build_stack(sim, RetryPolicy(deadline_budget_ms=20.0))
        assert DEADLINE_FIELD in stack.hop_plan.layout.field_names
        assert (
            DEADLINE_FIELD not in stack.response_hop_plan.layout.field_names
        )

    def test_no_budget_means_no_wire_field(self):
        sim = Simulator()
        stack = build_stack(sim, RetryPolicy())  # no deadline budget
        assert DEADLINE_FIELD not in stack.hop_plan.layout.field_names
        bare = build_stack(Simulator())  # no retry policy at all
        assert DEADLINE_FIELD not in bare.hop_plan.layout.field_names

    def test_expired_deadline_is_dropped_at_the_server(self):
        sim = Simulator()
        stack = build_stack(
            sim, RetryPolicy(max_attempts=1, deadline_budget_ms=1000.0)
        )
        # call the raw path with a deadline that is already due: by the
        # time the server has paid transport CPU it has expired, and the
        # server answers with a cheap abort instead of serving
        outcome = complete(
            sim,
            stack.call_raw(
                payload=b"x", username="u", obj_id=1, deadline_at=sim.now
            ),
        )
        assert outcome.aborted_by == DEADLINE_EXPIRED
        assert stack.deadline_expired_at_server == 1
        assert stack.server_app.served == 0  # no application service time

    def test_live_deadline_completes_normally(self):
        sim = Simulator()
        stack = build_stack(
            sim, RetryPolicy(max_attempts=2, deadline_budget_ms=1000.0)
        )
        outcome = complete(
            sim, stack.call(payload=b"x", username="u", obj_id=1)
        )
        assert outcome.ok
        assert stack.deadline_expired_at_server == 0

    def test_overload_reasons_position_the_abort_turnaround(self):
        sim = Simulator()
        chain, registry = build_chain("Logging", "Acl")
        cluster = two_machine_cluster(sim)
        plan = PlacementPlan(
            segments=[
                PlacementSegment(
                    platform=Platform.MRPC,
                    machine="client-host",
                    elements=("Logging",),
                ),
                PlacementSegment(
                    platform=Platform.MRPC,
                    machine="server-host",
                    elements=("Acl",),
                ),
            ]
        )
        stack = AdnMrpcStack(sim, cluster, chain, SCHEMA, registry, plan=plan)
        first, second = stack.processors
        # synthetic reasons name no element: position comes from the
        # dropping processor (they gate at entry, nothing inside ran)
        assert stack._before_drop(first, SHED, second) is True
        assert stack._before_drop(second, SHED, first) is False
        # a server-boundary drop (no dropping processor) was seen by all
        assert stack._before_drop(first, DEADLINE_EXPIRED, None) is True
        assert stack._before_drop(second, DEADLINE_EXPIRED, None) is True

    def test_stack_level_overload_config_reaches_every_processor(self):
        sim = Simulator()
        stack = build_stack(
            sim,
            RetryPolicy(deadline_budget_ms=20.0),
            queue_limit=8,
            admission=AdmissionConfig(target_delay_ms=3.0),
            retry_budget=RetryBudgetConfig(ratio=0.2),
            circuit_breaker=CircuitBreakerPolicy(failure_threshold=10),
        )
        for processor in stack.processors:
            assert processor.resource.queue_limit == 8
            assert processor.admission is not None
            assert processor.admission.config.target_delay_ms == 3.0
        assert stack.retry_budget is not None
        assert stack.breaker is not None
        assert stack.call.budget is stack.retry_budget
        assert stack.call.breaker is stack.breaker


# -- telemetry overload signals -----------------------------------------------


class TestTelemetrySignals:
    def test_reports_carry_overload_drop_classes(self):
        sim = Simulator()
        processor = build_processor(sim, queue_limit=0)
        collector = TelemetryCollector(sim, interval_s=0.01)
        collector.register(processor)
        controller = AdmissionController(
            sim,
            processor.resource,
            AdmissionConfig(target_delay_ms=1e9, max_shed_probability=1.0),
        )
        controller.engage(True)
        processor.install_admission(controller)
        complete(sim, processor.execute("request", request()))  # shed
        processor.admission = None
        processor.resource.request()  # occupy: next request sees a full queue
        complete(sim, processor.execute("request", request()))  # queue-full
        processor.resource.release()
        advance(sim, 0.01)
        (report,) = collector.sample()
        assert report.sheds_in_window == 1
        assert report.queue_rejects_in_window == 1
        assert report.deadline_drops_in_window == 0
        assert report.overload_drops_in_window == 2
        advance(sim, 0.01)
        (quiet,) = collector.sample()
        assert quiet.overload_drops_in_window == 0

    def test_queue_delay_is_measured_per_window(self):
        sim = Simulator()
        processor = build_processor(sim)
        collector = TelemetryCollector(sim, interval_s=0.01)
        collector.register(processor)
        resource = processor.resource

        def one():
            yield from resource.use(0.010)

        sim.process(one())
        sim.process(one())
        sim.run(until=0.05)
        (report,) = collector.sample()
        # two grants: one immediate, one after a 10 ms wait
        assert report.queue_delay_ms == pytest.approx(5.0)
        assert report.queue_depth == 0


# -- autoscaler escalation: autoscale before shedding, shed before collapse ---


class TestAutoscalerEscalation:
    def test_sheds_at_max_capacity_and_releases_after(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def one():
            yield from resource.use(0.010)

        sim.process(one())
        sim.run(until=0.02)  # mean service 10 ms
        for _ in range(4):
            resource.request()  # backlog: sojourn ~40 ms
        controller = AdmissionController(sim, resource)
        scaler = Autoscaler(
            sim,
            resource,
            AutoscalerConfig(
                max_capacity=1,
                sample_interval_s=0.01,
                cooldown_s=0.0,
                queue_delay_high_ms=5.0,
            ),
            admission=controller,
        )
        sim.process(scaler.run(0.1))

        def drain():
            yield sim.timeout(0.045)
            for _ in range(4):
                resource.release()

        sim.process(drain())
        sim.run(until=0.15)
        actions = [event.action for event in scaler.events]
        assert "engaged_shedding" in actions
        assert "released_shedding" in actions
        assert actions.index("engaged_shedding") < actions.index(
            "released_shedding"
        )
        assert not controller.engaged

    def test_prefers_scale_out_when_capacity_remains(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def one():
            yield from resource.use(0.010)

        sim.process(one())
        sim.run(until=0.02)
        for _ in range(4):
            resource.request()
        controller = AdmissionController(sim, resource)
        scaler = Autoscaler(
            sim,
            resource,
            AutoscalerConfig(
                max_capacity=4,
                sample_interval_s=0.01,
                cooldown_s=0.0,
                queue_delay_high_ms=5.0,
            ),
            admission=controller,
        )
        sim.process(scaler.run(0.05))
        sim.run(until=0.1)
        # the escalation order: capacity first, shedding only at the cap
        assert scaler.scale_out_count >= 1
        first_action = scaler.events[0].action
        assert first_action == "scale_out"
