"""repro.graph model, placement, topology lint, and the ``graph`` CLI."""

import json

import pytest

from repro.cli import main
from repro.errors import GraphError
from repro.graph import (
    GraphBuilder,
    MESH_SCHEMA,
    MachineSpec,
    ServiceGraph,
    assign_service_machines,
    bookinfo_graph,
    check_deadline_propagation,
    hotel_mesh_graph,
    mesh_program,
    solve_graph_placement,
)
from repro.graph.model import EdgeSpec, ServiceSpec
from repro.lint import Severity, lint_source
from repro.lint.registry import all_rules


class TestModel:
    def test_builder_builds_bookinfo(self):
        graph = bookinfo_graph()
        assert set(graph.services) == {
            "productpage", "details", "reviews", "ratings"
        }
        assert graph.services["reviews"].replicas == 2
        assert len(graph.edges) == 3
        assert graph.edge("reviews", "ratings").admission

    def test_builder_auto_declares_endpoints(self):
        graph = GraphBuilder("g").edge("a", "b").build()
        assert set(graph.services) == {"a", "b"}

    def test_topological_order_is_callers_first(self):
        graph = bookinfo_graph()
        order = graph.topological_order()
        assert order.index("productpage") < order.index("reviews")
        assert order.index("reviews") < order.index("ratings")

    def test_entry_leaves_depth(self):
        graph = bookinfo_graph()
        assert graph.entry_services() == ["productpage"]
        assert set(graph.leaf_services()) == {"details", "ratings"}
        assert graph.depth() == 2
        assert hotel_mesh_graph().depth() == 3

    def test_cycle_raises(self):
        with pytest.raises(GraphError, match="cycle"):
            (GraphBuilder("loop")
             .edge("a", "b").edge("b", "c").edge("c", "a").build())

    def test_unknown_endpoint_raises(self):
        with pytest.raises(GraphError, match="unknown service"):
            ServiceGraph(
                name="bad",
                services={"a": ServiceSpec(name="a")},
                edges=[EdgeSpec(src="a", dst="ghost")],
            )

    def test_self_edge_and_duplicate_raise(self):
        with pytest.raises(GraphError, match="self-edge"):
            GraphBuilder("g").edge("a", "a").build()
        with pytest.raises(GraphError, match="duplicate edge"):
            GraphBuilder("g").edge("a", "b").edge("a", "b").build()

    def test_with_edge_overrides_one_edge(self):
        graph = bookinfo_graph()
        tweaked = graph.with_edge("reviews", "ratings", max_attempts=3)
        assert tweaked.edge("reviews", "ratings").max_attempts == 3
        assert graph.edge("reviews", "ratings").max_attempts == 1

    def test_check_chains_flags_unknown_elements(self):
        graph = GraphBuilder("g").edge("a", "b", elements=("NoSuch",)).build()
        errors = graph.check_chains(mesh_program())
        assert errors and "NoSuch" in errors[0]
        clean = GraphBuilder("g").edge("a", "b", elements=("Logging",)).build()
        assert clean.check_chains(mesh_program()) == []

    def test_json_round_trip(self):
        graph = hotel_mesh_graph()
        restored = ServiceGraph.from_json(graph.to_json())
        assert restored.to_dict() == graph.to_dict()
        assert restored.edge("gateway", "search").max_attempts == 2
        assert not restored.edge("gateway", "recommendation").required

    def test_load_spec_file(self, tmp_path):
        path = tmp_path / "topo.json"
        path.write_text(bookinfo_graph().to_json())
        graph = ServiceGraph.load(str(path))
        assert graph.name == "bookinfo"

    def test_bad_specs_raise(self):
        with pytest.raises(GraphError, match="invalid topology JSON"):
            ServiceGraph.from_json("{nope")
        with pytest.raises(GraphError, match="needs a string 'name'"):
            ServiceGraph.from_dict({})
        with pytest.raises(GraphError, match="unknown key"):
            ServiceGraph.from_dict({
                "name": "g",
                "services": ["a", "b"],
                "edges": [{"src": "a", "dst": "b", "retries": 2}],
            })
        with pytest.raises(GraphError, match="'src' and 'dst'"):
            ServiceGraph.from_dict({
                "name": "g", "services": ["a"], "edges": [{"src": "a"}],
            })


class TestPlacement:
    def test_pins_win(self):
        graph = (GraphBuilder("g")
                 .service("a", machine="special-host")
                 .edge("a", "b").build())
        assignment = assign_service_machines(
            graph, [MachineSpec(name="node-0")]
        )
        assert assignment["a"] == "special-host"
        assert assignment["b"] == "node-0"

    def test_services_spread_across_pool(self):
        graph = (GraphBuilder("g")
                 .edge("a", "b").edge("a", "c").edge("a", "d").build())
        pool = [MachineSpec(name=f"m{i}", cores=8) for i in range(4)]
        assignment = assign_service_machines(graph, pool)
        # least-loaded-first: four services land on four machines
        assert len(set(assignment.values())) == 4

    def test_capacity_overflow_raises(self):
        graph = (GraphBuilder("g")
                 .service("a", replicas=8)
                 .edge("a", "b").build())
        with pytest.raises(GraphError, match="free cores"):
            assign_service_machines(graph, [MachineSpec(name="m0", cores=4)])

    def test_solve_places_every_edge_on_its_hosts(self):
        graph = bookinfo_graph()
        placement = solve_graph_placement(graph, mesh_program(), MESH_SCHEMA)
        assert set(placement.edge_plans) == {e.key for e in graph.edges}
        for edge in graph.edges:
            plan = placement.edge_plans[edge.key]
            hosts = {placement.machine_of(edge.src),
                     placement.machine_of(edge.dst)}
            assert {s.machine for s in plan.segments} <= hosts
            # software strategy: elements run on the caller's engine
            assert plan.segments[0].machine == placement.machine_of(edge.src)

    def test_placement_to_dict_names_edges(self):
        placement = solve_graph_placement(
            bookinfo_graph(), mesh_program(), MESH_SCHEMA
        )
        out = placement.to_dict()
        assert "productpage->reviews" in out["edges"]
        assert out["service_machines"]["productpage"]


class TestTopologyLint:
    def test_canned_graphs_are_clean(self):
        assert check_deadline_propagation(bookinfo_graph()) == []
        assert check_deadline_propagation(hotel_mesh_graph()) == []

    def test_sensitive_edge_without_upstream_budget_fires(self):
        graph = (GraphBuilder("g")
                 .edge("a", "b")
                 .edge("b", "c", max_attempts=2, admission=True)
                 .build())
        (finding,) = check_deadline_propagation(graph, path="topo.json")
        assert finding.code == "ADN405"
        assert finding.severity is Severity.WARNING
        assert "a->b" in finding.message
        assert finding.path == "topo.json"

    def test_entry_edge_needs_its_own_budget(self):
        graph = GraphBuilder("g").edge("a", "b", max_attempts=2).build()
        (finding,) = check_deadline_propagation(graph)
        assert "entry edge a->b" in finding.message
        budgeted = graph.with_edge("a", "b", deadline_budget_ms=10.0)
        assert check_deadline_propagation(budgeted) == []


MESH_APP = """
app mesh {{
    service frontend;
    service backend;
    service storage;
    chain frontend -> backend {{ {upstream} }}
    chain backend -> storage {{ {downstream} }}
}}
"""


class TestAdn405DslRule:
    def test_registered(self):
        assert "ADN405" in {r.code for r in all_rules()}

    def _lint(self, upstream, downstream):
        source = MESH_APP.format(upstream=upstream, downstream=downstream)
        result = lint_source(source)
        return [d for d in result.diagnostics if d.code == "ADN405"]

    def test_fires_for_retry_below_unbudgeted_edge(self):
        (finding,) = self._lint("Logging", "Retry, Logging")
        assert "frontend -> backend" in finding.message
        assert "deadline" in finding.fix

    def test_fires_for_admission_below_unbudgeted_edge(self):
        (finding,) = self._lint("Logging", "AdmissionControl")
        assert "'AdmissionControl'" in finding.message

    def test_clean_when_upstream_carries_budget(self):
        # the stdlib Retry filter sets deadline_budget_ms
        assert self._lint("Retry", "AdmissionControl") == []

    def test_single_chain_apps_never_fire(self):
        source = """
app one {
    service a;
    service b;
    chain a -> b { Retry, AdmissionControl }
}
"""
        codes = [d.code for d in lint_source(source).diagnostics]
        assert "ADN405" not in codes


class TestGraphCli:
    def test_demo_text_output(self, capsys):
        assert main(["graph"]) == 0
        out = capsys.readouterr().out
        assert "graph bookinfo" in out
        assert "productpage->reviews" in out
        assert "@node-" in out  # solved placement shown

    def test_spec_loading_and_json_parity(self, tmp_path, capsys):
        path = tmp_path / "topo.json"
        path.write_text(hotel_mesh_graph().to_json())
        assert main(["graph", str(path), "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"]
        assert payload["graph"]["name"] == "hotel-mesh"
        assert payload["entry"] == ["gateway"]
        assert payload["depth"] == 3
        assert payload["lint"] == []
        assert "gateway->search" in payload["placement"]["edges"]

    def test_unknown_element_fails(self, tmp_path, capsys):
        graph = GraphBuilder("g").edge("a", "b", elements=("Ghost",)).build()
        path = tmp_path / "topo.json"
        path.write_text(graph.to_json())
        assert main(["graph", str(path)]) == 1
        assert "Ghost" in capsys.readouterr().err

    def test_lint_findings_respect_fail_on(self, tmp_path, capsys):
        graph = (GraphBuilder("g")
                 .edge("a", "b")
                 .edge("b", "c", max_attempts=2)
                 .build())
        path = tmp_path / "topo.json"
        path.write_text(graph.to_json())
        assert main(["graph", str(path), "--no-place"]) == 0
        assert "ADN405" in capsys.readouterr().out
        assert main([
            "graph", str(path), "--no-place", "--fail-on", "warning",
        ]) == 1

    def test_invalid_spec_is_a_cli_error(self, tmp_path, capsys):
        path = tmp_path / "topo.json"
        path.write_text('{"name": "g", "edges": [{"src": "a"}]}')
        assert main(["graph", str(path)]) == 1
        assert "error" in capsys.readouterr().err
