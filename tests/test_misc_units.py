"""Unit tests for helpers not covered elsewhere: expression utilities,
error hierarchy, platform metadata, resource groups, stage costing."""

import pytest

from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.dsl.parser import Parser
from repro.errors import (
    AdnError,
    BackendError,
    CompileError,
    ControlPlaneError,
    DslSyntaxError,
    DslValidationError,
    HeaderLayoutError,
    PlacementError,
    RpcAborted,
    RuntimeFault,
    SimulationError,
    StateError,
)
from repro.ir.analysis import analyze_element
from repro.ir.builder import build_element_ir
from repro.ir.expr_utils import collect_refs, expr_cost_us, is_deterministic, op_count
from repro.ir.passes.parallelize import parallel_stages, stage_cost_us
from repro.platforms import (
    Platform,
    RESTRICTED_PLATFORMS,
    SOFTWARE_PLATFORMS,
)
from repro.sim import Resource, ResourceGroup, Simulator


def expr(text):
    return Parser(text).parse_expr()


class TestExprUtils:
    def test_collect_refs_fields_and_tables(self):
        refs = collect_refs(expr("input.a + t.b * hash(input.c)"))
        assert refs.input_fields == {"a", "c"}
        assert refs.table_columns == {("t", "b")}
        assert refs.functions == {"hash"}

    def test_collect_refs_table_arg_funcs(self):
        refs = collect_refs(expr("count(endpoints) + 1"))
        assert refs.tables_counted == {"endpoints"}
        # the table-name argument is not a column reference
        assert refs.input_fields == set()

    def test_collect_refs_contains_key_arg(self):
        refs = collect_refs(expr("contains(routes, input.method)"))
        assert refs.tables_counted == {"routes"}
        assert refs.input_fields == {"method"}

    def test_collect_refs_none(self):
        refs = collect_refs(None)
        assert refs.input_fields == set()

    def test_refs_merge(self):
        first = collect_refs(expr("input.a"))
        second = collect_refs(expr("input.b"))
        merged = first.merge(second)
        assert merged.input_fields == {"a", "b"}

    def test_expr_cost_scales_with_size(self):
        registry = FunctionRegistry()
        small = expr_cost_us(expr("input.a"), registry)
        large = expr_cost_us(
            expr("hash(input.a) + hash(input.b) * len(input.c)"), registry
        )
        assert large > small

    def test_op_count(self):
        assert op_count(None) == 0
        assert op_count(expr("1")) == 1
        assert op_count(expr("1 + 2")) == 3

    def test_is_deterministic(self):
        registry = FunctionRegistry()
        assert is_deterministic(expr("hash(input.a)"), registry)
        assert not is_deterministic(expr("rand()"), registry)
        assert not is_deterministic(expr("1 + now()"), registry)
        assert is_deterministic(None, registry)


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "error_type",
        [
            BackendError,
            CompileError,
            ControlPlaneError,
            DslSyntaxError,
            DslValidationError,
            HeaderLayoutError,
            PlacementError,
            RpcAborted,
            RuntimeFault,
            SimulationError,
            StateError,
        ],
    )
    def test_all_derive_from_adn_error(self, error_type):
        assert issubclass(error_type, AdnError)

    def test_syntax_error_position(self):
        error = DslSyntaxError("bad token", line=3, column=7)
        assert error.line == 3
        assert error.column == 7
        assert "line 3" in str(error)

    def test_backend_error_reasons(self):
        error = BackendError("nope", reasons=["a", "b"])
        assert error.reasons == ["a", "b"]
        assert isinstance(error, CompileError)

    def test_rpc_aborted_element(self):
        error = RpcAborted("denied", element="Acl")
        assert error.element == "Acl"

    def test_header_error_is_compile_error(self):
        assert issubclass(HeaderLayoutError, CompileError)


class TestPlatforms:
    def test_partition_complete(self):
        assert SOFTWARE_PLATFORMS | RESTRICTED_PLATFORMS == frozenset(
            Platform
        ) - {Platform.RPC_LIB} | SOFTWARE_PLATFORMS
        # software and restricted are disjoint
        assert not SOFTWARE_PLATFORMS & RESTRICTED_PLATFORMS

    def test_hardware_flags(self):
        assert Platform.SWITCH_P4.is_hardware
        assert Platform.SMARTNIC.is_hardware
        assert not Platform.MRPC.is_hardware

    def test_app_binary_flag(self):
        assert Platform.RPC_LIB.in_app_binary
        assert not Platform.SIDECAR.in_app_binary

    def test_backend_mapping(self):
        assert Platform.MRPC.backend_name == "python"
        assert Platform.KERNEL_EBPF.backend_name == "ebpf"
        # the NIC runs the eBPF subset but under its own capacity
        # descriptor — a distinct backend, not an alias of the kernel's
        assert Platform.SMARTNIC.backend_name == "nic"
        assert Platform.SWITCH_P4.backend_name == "p4"
        assert Platform.SIDECAR.backend_name == "wasm"


class TestResourceGroup:
    def test_aggregate_busy_time(self):
        sim = Simulator()
        group = ResourceGroup()
        first = group.add(Resource(sim, capacity=1, name="a"))
        second = group.add(Resource(sim, capacity=1, name="b"))

        def worker(resource, duration):
            yield from resource.use(duration)

        sim.process(worker(first, 0.2))
        sim.process(worker(second, 0.3))
        sim.run()
        assert group.total_busy_time() == pytest.approx(0.5)

    def test_find_by_name(self):
        sim = Simulator()
        group = ResourceGroup()
        resource = group.add(Resource(sim, capacity=1, name="engine"))
        assert group.find("engine") is resource
        assert group.find("ghost") is None


class TestStageCost:
    def test_parallel_stage_cost_is_max(self):
        schema = RpcSchema.of(
            "t",
            payload=FieldType.BYTES,
            username=FieldType.STR,
            obj_id=FieldType.INT,
        )
        program = load_stdlib(schema=schema)
        analyses = {}
        for name in ("Acl", "Fault"):
            analyses[name] = analyze_element(
                build_element_ir(program.elements[name])
            )
        stages = parallel_stages(["Acl", "Fault"], analyses)
        assert stages == (("Acl", "Fault"),)
        cost = stage_cost_us(stages[0], analyses, "request")
        assert cost == max(
            analyses["Acl"].handler_cost_us("request"),
            analyses["Fault"].handler_cost_us("request"),
        )
