"""Runtime shadow sanitizer (`repro.state.table.StateSanitizer`).

Unit tests drive the sanitizer directly against hand-built stores;
integration tests run whole mesh trials under faults and pin the
soundness contract both ways:

* analysis-clean graphs (bookinfo, hotel mesh) run sanitizer-SILENT
  even with real retries in flight;
* `examples/double_charge.graph.json` trips dynamic ADN700 violations,
  and every violation maps back to a static ADN700-family finding.
"""

from repro.dsl.ast_nodes import ColumnDef, StateDecl
from repro.dsl.schema import FieldType
from repro.faults.plan import FaultEvent, FaultPlan
from repro.state.table import SanitizerViolation, StateSanitizer, StateStore


def decl(name="t", keyed=True, append=False):
    if append:
        return StateDecl(
            name=name,
            columns=(
                ColumnDef("rpc", FieldType.INT),
                ColumnDef("user", FieldType.STR),
            ),
            append_only=True,
        )
    return StateDecl(
        name=name,
        columns=(
            ColumnDef("k", FieldType.STR, is_key=keyed),
            ColumnDef("n", FieldType.INT),
        ),
    )


def store_of(*decls, variables=None):
    return StateStore(decls, variables or {})


class TestDuplicateDetection:
    def test_duplicate_increment_flagged(self):
        sanitizer = StateSanitizer()
        store = store_of(decl())
        sanitizer.attach(store, element="Counter")
        table = store.table("t")
        table.insert({"k": "a", "n": 0})

        def bump():
            table.update_where(
                lambda row: row["k"] == "a",
                lambda row: {"n": row["n"] + 1},
            )

        sanitizer.note_attempt(7)
        sanitizer.enter(7)
        bump()
        sanitizer.exit()
        assert sanitizer.violations == []

        sanitizer.note_attempt(7)  # the retry of the same logical RPC
        sanitizer.enter(7)
        bump()
        sanitizer.exit()
        (violation,) = sanitizer.violations
        assert violation.rule == "ADN700"
        assert violation.element == "Counter"
        assert violation.target == "table:t"
        assert violation.rpc_id == 7
        assert violation.attempt == 2
        assert "ADN700" in violation.describe()

    def test_same_attempt_may_mutate_twice(self):
        """Two statements of ONE attempt touching one table is normal."""
        sanitizer = StateSanitizer()
        store = store_of(decl())
        sanitizer.attach(store, element="E")
        table = store.table("t")
        table.insert({"k": "a", "n": 0})
        sanitizer.note_attempt(1)
        sanitizer.enter(1)
        table.update_where(lambda r: True, lambda r: {"n": r["n"] + 1})
        table.update_where(lambda r: True, lambda r: {"n": r["n"] + 1})
        sanitizer.exit()
        assert sanitizer.violations == []

    def test_idempotent_keyed_reinsert_silent(self):
        """A retried upsert writing identical content re-applies
        silently — the runtime mirror of the static `idempotent` bit."""
        sanitizer = StateSanitizer()
        store = store_of(decl())
        sanitizer.attach(store, element="CachePut")
        table = store.table("t")
        for _ in range(2):
            sanitizer.note_attempt(3)
            sanitizer.enter(3)
            table.insert({"k": "x", "n": 42})
            sanitizer.exit()
        assert sanitizer.violations == []

    def test_keyed_reinsert_with_new_content_flagged(self):
        sanitizer = StateSanitizer()
        store = store_of(decl())
        sanitizer.attach(store, element="Stamp")
        table = store.table("t")
        for value in (1, 2):  # e.g. now() differs per attempt
            sanitizer.note_attempt(3)
            sanitizer.enter(3)
            table.insert({"k": "x", "n": value})
            sanitizer.exit()
        (violation,) = sanitizer.violations
        assert violation.rule == "ADN700"

    def test_rpc_keyed_append_excused(self):
        """An appended row that records the rpc_id is dedup-able
        downstream — the runtime mirror of the static `rpc_keyed` bit."""
        sanitizer = StateSanitizer()
        store = store_of(decl(append=True))
        sanitizer.attach(store, element="Logging")
        table = store.table("t")
        for _ in range(2):
            sanitizer.note_attempt(9)
            sanitizer.enter(9)
            table.insert({"rpc": 9, "user": "alice"})
            sanitizer.exit()
        assert sanitizer.violations == []

    def test_plain_append_flagged(self):
        sanitizer = StateSanitizer()
        store = store_of(decl(append=True))
        sanitizer.attach(store, element="Audit")
        table = store.table("t")
        for _ in range(2):
            sanitizer.note_attempt(9)
            sanitizer.enter(9)
            table.insert({"rpc": 0, "user": "alice"})  # no rpc_id recorded
            sanitizer.exit()
        (violation,) = sanitizer.violations
        assert violation.rule == "ADN700"

    def test_var_rewrite_flagged(self):
        sanitizer = StateSanitizer()
        store = store_of(decl(), variables={"seq": 0})
        sanitizer.attach(store, element="Seq")
        for attempt in range(2):
            sanitizer.note_attempt(5)
            sanitizer.enter(5)
            store.vars["seq"] = store.vars["seq"] + 1
            sanitizer.exit()
        (violation,) = sanitizer.violations
        assert violation.target == "var:seq"

    def test_scopes_do_not_collide(self):
        """Two stacks reuse rpc_id values for unrelated logical calls;
        scoping keeps them from conflating into false duplicates."""
        sanitizer = StateSanitizer()
        store = store_of(decl())
        sanitizer.attach(store, element="E")
        table = store.table("t")
        table.insert({"k": "a", "n": 0})
        for scope in ("a->b", "b->c"):
            sanitizer.note_attempt(1_000_001, scope=scope)
            sanitizer.enter(1_000_001, scope=scope)
            table.update_where(lambda r: True, lambda r: {"n": r["n"] + 1})
            sanitizer.exit()
        assert sanitizer.violations == []

    def test_no_context_mutations_ignored(self):
        """Init/migration writes (no rpc context) never violate."""
        sanitizer = StateSanitizer()
        store = store_of(decl())
        sanitizer.attach(store, element="E")
        store.table("t").insert({"k": "a", "n": 0})
        store.table("t").insert({"k": "a", "n": 1})
        assert sanitizer.violations == []

    def test_disabled_sanitizer_silent(self):
        sanitizer = StateSanitizer(enabled=False)
        store = store_of(decl())
        sanitizer.attach(store, element="E")
        table = store.table("t")
        table.insert({"k": "a", "n": 0})
        for _ in range(2):
            sanitizer.note_attempt(1)
            sanitizer.enter(1)
            table.update_where(lambda r: True, lambda r: {"n": r["n"] + 1})
            sanitizer.exit()
        assert sanitizer.violations == []

    def test_reset_clears_trial_state(self):
        sanitizer = StateSanitizer()
        store = store_of(decl())
        sanitizer.attach(store, element="E")
        table = store.table("t")
        table.insert({"k": "a", "n": 0})
        for _ in range(2):
            sanitizer.note_attempt(1)
            sanitizer.enter(1)
            table.update_where(lambda r: True, lambda r: {"n": r["n"] + 1})
            sanitizer.exit()
        assert sanitizer.violations
        sanitizer.reset()
        assert sanitizer.violations == []
        assert sanitizer.retries_observed == 0
        # stores stay attached: mutations are still observed post-reset
        sanitizer.note_attempt(2)
        sanitizer.enter(2)
        table.update_where(lambda r: True, lambda r: {"n": r["n"] + 1})
        sanitizer.exit()
        sanitizer.note_attempt(2)
        sanitizer.enter(2)
        table.update_where(lambda r: True, lambda r: {"n": r["n"] + 1})
        sanitizer.exit()
        assert len(sanitizer.violations) == 1


class TestDivergence:
    def _replicas(self, sanitizer, variables=None):
        stores = []
        for tag in ("m1/engine", "m2/engine"):
            store = store_of(decl(), variables=dict(variables or {}))
            sanitizer.attach(
                store, element="E", instance="svc", tag=tag
            )
            stores.append(store)
        return stores

    def _mark_rmw(self, sanitizer, store):
        """Run one RMW mutation under rpc context so the target lands in
        the runtime RMW set the divergence check is restricted to."""
        sanitizer.note_attempt(1)
        sanitizer.enter(1)
        store.table("t").update_where(
            lambda r: True, lambda r: {"n": r["n"] + 1}
        )
        sanitizer.exit()

    def test_diverged_keyed_rows_flagged(self):
        sanitizer = StateSanitizer()
        a, b = self._replicas(sanitizer)
        a.table("t").insert({"k": "x", "n": 0})
        b.table("t").insert({"k": "x", "n": 5})
        self._mark_rmw(sanitizer, a)
        found = sanitizer.check_divergence()
        (violation,) = found
        assert violation.rule == "ADN702"
        assert violation.target == "table:t"
        assert violation in sanitizer.violations

    def test_identical_replicas_silent(self):
        sanitizer = StateSanitizer()
        a, b = self._replicas(sanitizer)
        a.table("t").insert({"k": "x", "n": 1})
        b.table("t").insert({"k": "x", "n": 1})
        self._mark_rmw(sanitizer, a)
        # the RMW bumped replica a's row to n=2: align b the same way
        b.table("t").update_where(
            lambda r: True, lambda r: {"n": r["n"] + 1}
        )
        assert sanitizer.check_divergence() == []

    def test_disjoint_keys_are_partitioning_not_divergence(self):
        """Replicas holding different keys (sharding) never disagree —
        only a shared key mapping to different rows does."""
        sanitizer = StateSanitizer()
        a, b = self._replicas(sanitizer)
        a.table("t").insert({"k": "x", "n": 1})
        b.table("t").insert({"k": "y", "n": 2})
        self._mark_rmw(sanitizer, a)
        assert sanitizer.check_divergence() == []

    def test_non_rmw_targets_not_compared(self):
        """Targets only ever written insert-style (no runtime RMW) may
        legitimately differ per replica (partitioned caches, logs)."""
        sanitizer = StateSanitizer()
        a, b = self._replicas(sanitizer)
        a.table("t").insert({"k": "x", "n": 0})
        b.table("t").insert({"k": "x", "n": 5})
        assert sanitizer.check_divergence() == []

    def test_var_divergence_flagged(self):
        sanitizer = StateSanitizer()
        a, b = self._replicas(sanitizer, variables={"seq": 0})
        sanitizer.note_attempt(1)
        sanitizer.enter(1)
        a.vars["seq"] = 3
        sanitizer.exit()
        found = sanitizer.check_divergence()
        (violation,) = found
        assert violation.target == "var:seq"

    def test_single_replica_never_diverges(self):
        sanitizer = StateSanitizer()
        store = store_of(decl())
        sanitizer.attach(store, element="E", instance="svc", tag="m1")
        self._mark_rmw(sanitizer, store)
        assert sanitizer.check_divergence() == []

    def test_detach_removes_replica_from_check(self):
        sanitizer = StateSanitizer()
        a, b = self._replicas(sanitizer)
        a.table("t").insert({"k": "x", "n": 0})
        b.table("t").insert({"k": "x", "n": 5})
        self._mark_rmw(sanitizer, a)
        sanitizer.detach("E", instance="svc", tag="m2/engine")
        assert sanitizer.check_divergence() == []


# -- integration: mesh trials under faults --------------------------------


LINK_LOSS = FaultPlan(
    events=[
        FaultEvent(
            at_s=0.02, kind="link_loss", magnitude=0.3, duration_s=0.08
        )
    ],
    seed=3,
)


def run_trial(graph, sanitizer, duration_s=0.15, base_rps=1_200.0):
    from repro.graph.scenario import run_graph_scenario

    return run_graph_scenario(
        graph=graph,
        duration_s=duration_s,
        base_rps=base_rps,
        fault_plan=LINK_LOSS,
        sanitizer=sanitizer,
        seed=3,
    )


class TestMeshSoundness:
    def test_bookinfo_chaos_sanitizer_silent(self):
        from repro.graph.scenario import bookinfo_graph

        sanitizer = StateSanitizer()
        run_trial(bookinfo_graph(), sanitizer)
        assert sanitizer.retries_observed > 0, (
            "the fault plan must exercise real retries for silence "
            "to mean anything"
        )
        sanitizer.check_divergence()
        assert sanitizer.violations == [], [
            v.describe() for v in sanitizer.violations
        ]

    def test_hotel_mesh_chaos_sanitizer_silent(self):
        from repro.graph.scenario import hotel_mesh_graph

        sanitizer = StateSanitizer()
        run_trial(hotel_mesh_graph(), sanitizer)
        sanitizer.check_divergence()
        assert sanitizer.violations == [], [
            v.describe() for v in sanitizer.violations
        ]

    def test_double_charge_trips_sanitizer(self):
        from repro.graph.model import ServiceGraph

        graph = ServiceGraph.load("examples/double_charge.graph.json")
        sanitizer = StateSanitizer()
        run_trial(graph, sanitizer)
        assert sanitizer.retries_observed > 0
        flagged = [v for v in sanitizer.violations if v.rule == "ADN700"]
        assert flagged, "retried Metrics increments must be caught"
        assert {v.element for v in flagged} == {"Metrics"}
        assert all(v.attempt >= 2 for v in flagged)

    def test_dynamic_violations_map_to_static_findings(self):
        """Soundness, dynamic -> static: every sanitizer violation's
        element carries a matching non-empty static site set, and the
        static graph analysis flags the same hazard (ADN700)."""
        from repro.analysis.effects import element_effects
        from repro.analysis.graph import analyze_graph
        from repro.graph.model import ServiceGraph
        from repro.graph.scenario import MESH_SCHEMA, mesh_program
        from repro.dsl import validate_element
        from repro.ir.builder import build_element_ir

        graph = ServiceGraph.load("examples/double_charge.graph.json")
        sanitizer = StateSanitizer()
        run_trial(graph, sanitizer)
        sanitizer.check_divergence()
        assert sanitizer.violations

        program = mesh_program()
        summaries = {}
        for name, element in program.elements.items():
            summaries[name] = element_effects(
                build_element_ir(validate_element(element))
            )
        for violation in sanitizer.violations:
            effects = summaries[violation.element]
            if violation.rule == "ADN700":
                sites = effects.non_idempotent_sites()
            else:  # ADN702
                sites = effects.divergent_sites()
            assert sites, (
                f"dynamic {violation.rule} on {violation.element!r} has "
                "no static counterpart — the analysis is unsound"
            )

        analysis = analyze_graph(graph, program, MESH_SCHEMA)
        static_adn700 = {
            d.element
            for d in analysis.diagnostics
            if d.code == "ADN700"
        }
        dynamic_adn700 = {
            v.element
            for v in sanitizer.violations
            if v.rule == "ADN700"
        }
        assert dynamic_adn700 <= static_adn700
