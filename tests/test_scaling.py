"""Live migration and autoscaling tests (paper §5.2 / Q3)."""

import pytest

from repro.control.scaling import Autoscaler, AutoscalerConfig
from repro.dsl.ast_nodes import ColumnDef, StateDecl
from repro.dsl.schema import FieldType
from repro.errors import StateError
from repro.sim import Resource, Simulator
from repro.state.migration import MigrationTiming, Migrator
from repro.state.table import StateTable


def keyed_decl(name="t"):
    return StateDecl(
        name=name,
        columns=(
            ColumnDef("k", FieldType.INT, is_key=True),
            ColumnDef("v", FieldType.STR),
        ),
    )


def filled_table(rows=100):
    table = StateTable(keyed_decl())
    for i in range(rows):
        table.insert({"k": i, "v": f"value-{i}"})
    return table


class TestMigrator:
    def test_migrate_copies_everything(self):
        sim = Simulator()
        source = filled_table(200)
        target = StateTable(keyed_decl())
        migrator = Migrator(sim)
        report = sim.run_until_complete(
            sim.process(migrator.migrate(source, target))
        )
        assert report.rows_copied == 200
        assert target.snapshot() == source.snapshot()

    def test_concurrent_writes_replayed(self):
        """Writes that land during the warm copy arrive via the delta
        log — the core of disruption-free migration."""
        sim = Simulator()
        source = filled_table(1000)
        target = StateTable(keyed_decl())
        migrator = Migrator(sim)

        def writer():
            # land a write mid-copy (copy takes 1000*0.5us = 500us)
            yield sim.timeout(100e-6)
            source.insert({"k": 5000, "v": "late-write"})

        sim.process(writer())
        report = sim.run_until_complete(
            sim.process(migrator.migrate(source, target))
        )
        assert report.deltas_replayed == 1
        assert target.get(5000)["v"] == "late-write"

    def test_pause_is_proportional_to_deltas_not_size(self):
        sim = Simulator()
        migrator = Migrator(sim)
        big_quiet = filled_table(5000)
        target = StateTable(keyed_decl())
        report = sim.run_until_complete(
            sim.process(migrator.migrate(big_quiet, target))
        )
        # no concurrent writes: pause is just the fixed flip cost
        assert report.pause_s == pytest.approx(
            migrator.timing.flip_fixed_us * 1e-6, rel=0.01
        )
        assert report.warm_copy_s > report.pause_s

    def test_pause_resume_hooks(self):
        sim = Simulator()
        events = []
        migrator = Migrator(
            sim,
            pause_hook=lambda: events.append(("pause", sim.now)),
            resume_hook=lambda: events.append(("resume", sim.now)),
        )
        source = filled_table(10)
        target = StateTable(keyed_decl())
        sim.run_until_complete(sim.process(migrator.migrate(source, target)))
        assert [e[0] for e in events] == ["pause", "resume"]
        assert events[1][1] > events[0][1]

    def test_name_mismatch_rejected(self):
        sim = Simulator()
        migrator = Migrator(sim)
        source = filled_table(1)
        target = StateTable(keyed_decl(name="other"))
        with pytest.raises(StateError):
            sim.run_until_complete(
                sim.process(migrator.migrate(source, target))
            )

    def test_scale_out_partitions(self):
        sim = Simulator()
        migrator = Migrator(sim)
        source = filled_table(300)
        parts, report = sim.run_until_complete(
            sim.process(migrator.scale_out(source, 3))
        )
        assert len(parts) == 3
        assert sum(len(p) for p in parts) == 300
        assert report.rows_copied == 300
        assert len(source) == 0  # rows moved, not copied

    def test_scale_out_needs_two_ways(self):
        sim = Simulator()
        migrator = Migrator(sim)
        with pytest.raises(StateError):
            sim.run_until_complete(
                sim.process(migrator.scale_out(filled_table(1), 1))
            )

    def test_scale_in_merges(self):
        sim = Simulator()
        migrator = Migrator(sim)
        source = filled_table(90)
        parts = source.split(3)
        merged, report = sim.run_until_complete(
            sim.process(migrator.scale_in(keyed_decl(), parts))
        )
        assert len(merged) == 90
        assert report.pause_s > 0

    def test_custom_timing(self):
        sim = Simulator()
        slow = MigrationTiming(per_row_copy_us=100.0)
        migrator = Migrator(sim, timing=slow)
        source = filled_table(100)
        target = StateTable(keyed_decl())
        report = sim.run_until_complete(
            sim.process(migrator.migrate(source, target))
        )
        assert report.warm_copy_s == pytest.approx(100 * 100e-6)


class TestAutoscaler:
    def _drive_load(self, sim, resource, rate_rps, service_us, duration_s):
        """Poisson-ish open-loop load against a resource."""
        import random

        rng = random.Random(4)

        def arrivals():
            deadline = sim.now + duration_s
            while sim.now < deadline:
                yield sim.timeout(rng.expovariate(rate_rps))
                sim.process(one())

        def one():
            yield from resource.use(service_us * 1e-6)

        sim.process(arrivals())

    def test_scale_out_under_load(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1, name="engine")
        # offered load ~2x capacity: 100k rps * 20us = 2.0 utilization
        self._drive_load(sim, resource, 10_000, 200, duration_s=1.0)
        autoscaler = Autoscaler(
            sim,
            resource,
            AutoscalerConfig(sample_interval_s=0.05, cooldown_s=0.1),
        )
        sim.process(autoscaler.run(1.0))
        sim.run()
        assert autoscaler.scale_out_count >= 1
        assert resource.capacity >= 2

    def test_scale_in_when_idle(self):
        sim = Simulator()
        resource = Resource(sim, capacity=4, name="engine")
        self._drive_load(sim, resource, 500, 20, duration_s=1.0)
        autoscaler = Autoscaler(
            sim,
            resource,
            AutoscalerConfig(sample_interval_s=0.05, cooldown_s=0.1),
        )
        sim.process(autoscaler.run(1.0))
        sim.run()
        assert autoscaler.scale_in_count >= 1
        assert resource.capacity < 4

    def test_capacity_bounds_respected(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1, name="engine")
        self._drive_load(sim, resource, 20_000, 500, duration_s=1.0)
        config = AutoscalerConfig(
            sample_interval_s=0.02, cooldown_s=0.02, max_capacity=3
        )
        autoscaler = Autoscaler(sim, resource, config)
        sim.process(autoscaler.run(1.0))
        sim.run()
        assert resource.capacity <= 3

    def test_stateful_scaling_migrates(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1, name="engine")
        table = filled_table(500)
        self._drive_load(sim, resource, 10_000, 200, duration_s=1.0)
        autoscaler = Autoscaler(
            sim,
            resource,
            AutoscalerConfig(sample_interval_s=0.05, cooldown_s=0.2),
            stateful_tables=[table],
        )
        sim.process(autoscaler.run(1.0))
        sim.run()
        assert autoscaler.scale_out_count >= 1
        event = autoscaler.events[0]
        assert event.migration is not None
        assert event.migration.rows_copied == 500
        assert len(table) == 500  # no rows lost

    def test_events_carry_utilization(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1, name="engine")
        self._drive_load(sim, resource, 20_000, 300, duration_s=0.6)
        autoscaler = Autoscaler(
            sim, resource, AutoscalerConfig(sample_interval_s=0.05)
        )
        sim.process(autoscaler.run(0.6))
        sim.run()
        for event in autoscaler.events:
            assert 0.0 <= event.utilization
            assert event.capacity_after != event.capacity_before
