"""Minimal wire-header synthesis tests (paper Q2)."""

import pytest

from repro.compiler.compiler import AdnCompiler
from repro.compiler.headers import (
    P4_PARSE_WINDOW_BYTES,
    build_layout,
    check_switch_window,
    fields_available_at,
    fields_needed_downstream,
    plan_hop_headers,
    wrapped_stack_header_bytes,
)
from repro.dsl import FieldType, RpcSchema, load_stdlib
from repro.dsl.ast_nodes import ChainDecl
from repro.errors import HeaderLayoutError


@pytest.fixture(scope="module")
def schema():
    return RpcSchema.of(
        "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
    )


@pytest.fixture(scope="module")
def chain(schema):
    program = load_stdlib(schema=schema)
    decl = ChainDecl(
        src="A", dst="B", elements=("LbKeyHash", "Compression", "AccessControl")
    )
    return AdnCompiler().compile_chain(decl, program, schema)


class TestLayout:
    def test_fixed_fields_first(self):
        layout = build_layout(
            {
                "payload": FieldType.BYTES,
                "obj_id": FieldType.INT,
                "flag": FieldType.BOOL,
            }
        )
        names = layout.field_names
        assert names.index("obj_id") < names.index("payload")
        assert names.index("flag") < names.index("payload")

    def test_offsets_deterministic(self):
        fields = {"a": FieldType.INT, "b": FieldType.INT}
        first = build_layout(fields)
        second = build_layout(dict(reversed(list(fields.items()))))
        assert first == second

    def test_fixed_region_size(self):
        layout = build_layout({"a": FieldType.INT, "b": FieldType.BOOL})
        # 1 id + 8 bytes int, 1 id + 1 byte bool
        assert layout.fixed_bytes == 11

    def test_min_size_counts_empty_variables(self):
        layout = build_layout({"a": FieldType.INT, "s": FieldType.STR})
        assert layout.min_size_bytes() == 9 + 2

    def test_offsets_within_window(self):
        layout = build_layout({"a": FieldType.INT, "s": FieldType.STR})
        assert layout.offsets_within(["a"], 200)
        assert not layout.offsets_within(["s"], 200)  # variable field

    def test_many_fields_overflow_window(self):
        fields = {f"f{i}": FieldType.INT for i in range(30)}
        layout = build_layout(fields)
        inside = [n for n in layout.field_names if layout.offsets_within([n], 64)]
        assert 0 < len(inside) < 30


class TestFieldFlow:
    def test_needed_includes_downstream_reads(self, chain, schema):
        needed = fields_needed_downstream(chain.ir, schema, position=-1)
        # AccessControl (last) reads username and obj_id
        assert {"username", "obj_id"} <= needed

    def test_needed_excludes_upstream_only_fields(self, chain, schema):
        last = len(chain.ir.elements) - 1
        needed = fields_needed_downstream(chain.ir, schema, position=last)
        # after the whole chain, only transport + app fields remain
        assert "username" in needed  # the app itself consumes its fields

    def test_available_grows_with_writes(self, chain, schema):
        at_start = fields_available_at(chain.ir, schema, position=-1)
        assert "dst" in at_start

    def test_hop_plan_carries_needed_available_intersection(self, chain, schema):
        plans = plan_hop_headers(chain.ir, schema, hop_after=[0])
        plan = plans[0]
        assert "obj_id" in plan.needed_fields
        assert "dst" in plan.needed_fields
        assert plan.layout.field("rpc_id").fixed


class TestSwitchWindow:
    def test_small_header_fits(self, chain, schema):
        plans = plan_hop_headers(chain.ir, schema, hop_after=[0])
        check_switch_window(plans[0].layout, ["obj_id", "rpc_id"])

    def test_payload_rejected(self, chain, schema):
        plans = plan_hop_headers(chain.ir, schema, hop_after=[0])
        with pytest.raises(HeaderLayoutError, match="byte payload"):
            check_switch_window(plans[0].layout, ["payload"])

    def test_string_field_promoted_to_fixed_slot(self, chain, schema):
        # a string read by the switch is re-laid as a fixed padded slot
        # (custom header design) and then fits the window
        plans = plan_hop_headers(chain.ir, schema, hop_after=[0])
        check_switch_window(plans[0].layout, ["username"])

    def test_too_many_promoted_strings_overflow(self):
        from repro.compiler.headers import build_layout

        fields = {f"s{i}": FieldType.STR for i in range(10)}
        fields.update({f"n{i}": FieldType.INT for i in range(8)})
        layout = build_layout(fields)
        with pytest.raises(HeaderLayoutError, match="parse window"):
            check_switch_window(layout, sorted(fields))

    def test_missing_field_rejected(self, chain, schema):
        plans = plan_hop_headers(chain.ir, schema, hop_after=[0])
        with pytest.raises(HeaderLayoutError, match="not on the wire"):
            check_switch_window(plans[0].layout, ["ghost_field"])

    def test_window_constant_matches_paper(self):
        assert P4_PARSE_WINDOW_BYTES == 200


class TestVsWrappedStack:
    def test_adn_header_much_smaller(self, chain, schema):
        plans = plan_hop_headers(chain.ir, schema, hop_after=[0])
        adn_bytes = plans[0].layout.min_size_bytes()
        wrapped = wrapped_stack_header_bytes()
        assert wrapped > 100  # eth+ip+tcp+http2+grpc
        assert adn_bytes < wrapped
