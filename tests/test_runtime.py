"""Runtime tests: messages, placed processors, and the ADN/mRPC path."""

import pytest

from repro.compiler.compiler import AdnCompiler
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.dsl.ast_nodes import ChainDecl
from repro.platforms import Platform
from repro.runtime import (
    AdnMrpcStack,
    PlacementPlan,
    PlacementSegment,
    ProcessorRuntime,
    default_plan,
)
from repro.runtime.message import (
    is_aborted,
    make_abort,
    make_request,
    make_response,
    payload_bytes,
    reset_rpc_ids,
)
from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)


def build_chain(*names, registry=None):
    registry = registry or FunctionRegistry()
    program = load_stdlib(schema=SCHEMA)
    compiler = AdnCompiler(registry=registry)
    decl = ChainDecl(src="A", dst="B", elements=tuple(names))
    return compiler.compile_chain(decl, program, SCHEMA), registry


class TestMessages:
    def test_request_has_meta_and_app_fields(self):
        reset_rpc_ids()
        request = make_request(SCHEMA, "A.0", "B", payload=b"x", obj_id=1)
        assert request["kind"] == "request"
        assert request["rpc_id"] == 1
        assert request["username"] is None  # unset app field present as None

    def test_ids_increment(self):
        reset_rpc_ids()
        first = make_request(SCHEMA, "A.0", "B")
        second = make_request(SCHEMA, "A.0", "B")
        assert second["rpc_id"] == first["rpc_id"] + 1

    def test_response_swaps_endpoints(self):
        request = make_request(SCHEMA, "A.0", "B", payload=b"x")
        response = make_response(request)
        assert response["src"] == "B"
        assert response["dst"] == "A.0"
        assert response["kind"] == "response"

    def test_abort_marks_element(self):
        request = make_request(SCHEMA, "A.0", "B", payload=b"x")
        abort = make_abort(request, "Acl")
        assert is_aborted(abort)
        assert abort["status"] == "aborted:Acl"

    def test_payload_bytes(self):
        assert payload_bytes({"payload": b"abcd"}) == 4
        assert payload_bytes({"payload": None}) == 0
        assert payload_bytes({}) == 0

    def test_type_validation(self):
        from repro.errors import DslValidationError

        with pytest.raises(DslValidationError):
            make_request(SCHEMA, "A.0", "B", obj_id="not-an-int")


class TestProcessorRuntime:
    def run_one(self, processor, sim, rpc, kind="request"):
        process = sim.process(processor.execute(kind, rpc))
        return sim.run_until_complete(process)

    def make(self, sim, cluster, chain, registry, platform=Platform.MRPC):
        segment = PlacementSegment(
            platform=platform,
            machine="client-host",
            elements=chain.element_order,
            stages=chain.ir.stages,
        )
        return ProcessorRuntime(sim, cluster, segment, chain, registry)

    def rpc(self, **overrides):
        base = make_request(
            SCHEMA, "A.0", "B", payload=b"x" * 16, username="usr2", obj_id=3
        )
        base.update(overrides)
        return base

    def test_forwarding_and_cost(self):
        chain, registry = build_chain("Logging")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        processor = self.make(sim, cluster, chain, registry)
        result = self.run_one(processor, sim, self.rpc())
        assert len(result.outputs) == 1
        assert result.dropped_by is None
        assert result.cpu_us > 0
        assert sim.now > 0

    def test_drop_aborts(self):
        chain, registry = build_chain("Acl")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        processor = self.make(sim, cluster, chain, registry)
        result = self.run_one(processor, sim, self.rpc(username="usr1"))
        assert result.dropped_by == "Acl"
        assert result.outputs == []
        assert processor.rpcs_dropped == 1

    def test_lb_seeding_and_routing(self):
        chain, registry = build_chain("LbKeyHash")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        processor = self.make(sim, cluster, chain, registry)
        processor.seed_endpoints("LbKeyHash", ["B.1", "B.2", "B.3"])
        destinations = set()
        for obj in range(30):
            result = self.run_one(processor, sim, self.rpc(obj_id=obj))
            destinations.add(result.outputs[0]["dst"])
        assert destinations == {"B.1", "B.2", "B.3"}

    def test_switch_platform_needs_programmable_tor(self):
        from repro.errors import PlacementError

        chain, registry = build_chain("Acl")
        sim = Simulator()
        cluster = two_machine_cluster(sim)  # switch not programmable
        segment = PlacementSegment(
            platform=Platform.SWITCH_P4, machine="switch",
            elements=chain.element_order,
        )
        with pytest.raises(PlacementError, match="not programmable"):
            ProcessorRuntime(sim, cluster, segment, chain, registry)

    def test_switch_platform_charges_no_cpu(self):
        chain, registry = build_chain("Acl")
        sim = Simulator()
        cluster = two_machine_cluster(sim, programmable_switch=True)
        segment = PlacementSegment(
            platform=Platform.SWITCH_P4, machine="switch",
            elements=chain.element_order,
        )
        processor = ProcessorRuntime(sim, cluster, segment, chain, registry)
        result = self.run_one(processor, sim, self.rpc())
        assert result.cpu_us == 0.0
        assert cluster.machine("client-host").cpu_busy_s() == 0.0

    def test_handcoded_cheaper(self):
        chain, registry = build_chain("Logging", "Acl", "Fault")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        generated = self.make(sim, cluster, chain, registry)
        segment = PlacementSegment(
            platform=Platform.MRPC,
            machine="server-host",
            elements=chain.element_order,
            stages=chain.ir.stages,
        )
        hand = ProcessorRuntime(
            sim, cluster, segment, chain, registry, handcoded=True
        )
        rpc = self.rpc()
        generated_result = generated._run_functionally("request", rpc)
        hand_result = hand._run_functionally("request", rpc)
        assert hand_result.cpu_us < generated_result.cpu_us


class TestAdnMrpcStack:
    def run_client(self, stack, sim, concurrency=8, total=200):
        client = ClosedLoopClient(
            sim, stack.call, concurrency=concurrency, total_rpcs=total
        )
        return client.run()

    def test_end_to_end_paper_chain(self):
        reset_rpc_ids()
        chain, registry = build_chain("Logging", "Acl", "Fault")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = AdnMrpcStack(sim, cluster, chain, SCHEMA, registry)
        metrics = self.run_client(stack, sim)
        assert metrics.completed == 200
        # ~10% usr1 denials + ~2% faults
        assert 5 <= metrics.aborted <= 50
        assert metrics.latency.median_us() > 20

    def test_wire_actually_carries_minimal_headers(self):
        reset_rpc_ids()
        chain, registry = build_chain("Logging", "Acl", "Fault")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = AdnMrpcStack(sim, cluster, chain, SCHEMA, registry)
        # the codec's layout contains only needed fields
        names = set(stack.hop_plan.layout.field_names)
        assert "username" in names  # Acl reads it downstream? (client-side chain)
        assert "payload" in names  # the app consumes it

    def test_default_plan_places_on_client_engine(self):
        chain, _registry = build_chain("Acl")
        plan = default_plan(chain)
        assert plan.segments[0].machine == "client-host"
        assert plan.segments[0].platform is Platform.MRPC

    def test_aborted_rpc_cheaper_than_completed(self):
        reset_rpc_ids()
        chain, registry = build_chain("Acl")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = AdnMrpcStack(sim, cluster, chain, SCHEMA, registry)

        def one(username):
            process = sim.process(
                stack.call(payload=b"x", username=username, obj_id=1)
            )
            return sim.run_until_complete(process)

        ok = one("usr2")
        denied = one("usr1")
        assert denied.aborted_by == "Acl"
        assert denied.latency_s < ok.latency_s  # never crossed the wire

    def test_split_placement_across_hosts(self):
        reset_rpc_ids()
        chain, registry = build_chain("Logging", "Acl", "Fault")
        order = chain.element_order
        plan = PlacementPlan(
            segments=[
                PlacementSegment(
                    platform=Platform.MRPC,
                    machine="client-host",
                    elements=order[:1],
                ),
                PlacementSegment(
                    platform=Platform.MRPC,
                    machine="server-host",
                    elements=order[1:],
                ),
            ]
        )
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = AdnMrpcStack(sim, cluster, chain, SCHEMA, registry, plan=plan)
        metrics = self.run_client(stack, sim, total=100)
        assert metrics.completed == 100
        busy = cluster.cpu_busy_by_machine()
        assert busy["client-host"] > 0
        assert busy["server-host"] > 0

    def test_mirrored_copies_counted(self):
        reset_rpc_ids()
        chain, registry = build_chain("Mirror")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = AdnMrpcStack(sim, cluster, chain, SCHEMA, registry)
        self.run_client(stack, sim, total=500)
        assert stack.mirrored_total > 0

    def test_handcoded_faster_end_to_end(self):
        def run(handcoded):
            reset_rpc_ids()
            chain, registry = build_chain("Logging", "Acl", "Fault")
            sim = Simulator()
            cluster = two_machine_cluster(sim)
            stack = AdnMrpcStack(
                sim, cluster, chain, SCHEMA, registry, handcoded=handcoded
            )
            return self.run_client(stack, sim, concurrency=64, total=600)

        generated = run(False)
        hand = run(True)
        assert hand.throughput_rps > generated.throughput_rps


class TestFusion:
    """Cross-element fusion (paper Q2): the fuse_elements IR pass merges
    adjacent compatible elements into one, so a fused chain pays a single
    module dispatch where the unfused chain pays one per element."""

    @staticmethod
    def build_fusable(*names, fusion, seed=7):
        import random

        from repro.ir.optimizer import OptimizerOptions

        registry = FunctionRegistry(rng=random.Random(seed))
        program = load_stdlib(schema=SCHEMA)
        compiler = AdnCompiler(
            registry=registry, options=OptimizerOptions(fusion=fusion)
        )
        decl = ChainDecl(src="A", dst="B", elements=tuple(names))
        return compiler.compile_chain(decl, program, SCHEMA), registry

    def run_cost(self, chain, registry):
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        segment = PlacementSegment(
            platform=Platform.MRPC,
            machine="client-host",
            elements=chain.element_order,
            stages=chain.ir.stages,
        )
        processor = ProcessorRuntime(sim, cluster, segment, chain, registry)
        rpc = make_request(
            SCHEMA, "A.0", "B", payload=b"x", username="usr2", obj_id=1
        )
        result = processor._run_functionally("request", dict(rpc))
        return result, cluster

    def test_fused_chain_cheaper(self):
        reset_rpc_ids()
        plain_chain, plain_reg = self.build_fusable(
            "Logging", "Acl", "Fault", fusion=False
        )
        fused_chain, fused_reg = self.build_fusable(
            "Logging", "Acl", "Fault", fusion=True
        )
        plain, cluster = self.run_cost(plain_chain, plain_reg)
        fused, _ = self.run_cost(fused_chain, fused_reg)
        # seeded registries: both runs see the same rand() stream, so the
        # request survives (or drops) identically in both
        assert plain.dropped_by is None and fused.dropped_by is None
        # exactly two dispatches saved (3 elements -> 1 dispatch); the
        # handler work itself is identical by construction
        saved = plain.cpu_us - fused.cpu_us
        assert saved == pytest.approx(
            2 * cluster.costs.element_dispatch_us, rel=0.01
        )

    def test_single_element_fusion_is_noop(self):
        reset_rpc_ids()
        plain_chain, plain_reg = self.build_fusable("Acl", fusion=False)
        fused_chain, fused_reg = self.build_fusable("Acl", fusion=True)
        assert fused_chain.element_order == plain_chain.element_order
        plain, _ = self.run_cost(plain_chain, plain_reg)
        fused, _ = self.run_cost(fused_chain, fused_reg)
        assert fused.cpu_us == pytest.approx(plain.cpu_us)

    def test_fusion_merges_compatible_run(self):
        plain_chain, _ = self.build_fusable(
            "Logging", "Acl", "Fault", fusion=False
        )
        fused_chain, _ = self.build_fusable(
            "Logging", "Acl", "Fault", fusion=True
        )
        assert len(plain_chain.element_order) == 3
        assert len(fused_chain.element_order) == 1
        (fused_name,) = fused_chain.element_order
        fused_ir = fused_chain.elements[fused_name].ir
        members = fused_ir.meta["fused_from"]
        assert sorted(members) == sorted(plain_chain.element_order)
        # the fused element still places: the solver treats it as one
        # ordinary element
        from repro.control import PlacementRequest, solve_placement

        plan = solve_placement(
            PlacementRequest(chain=fused_chain, schema=SCHEMA)
        )
        placed = [name for seg in plan.segments for name in seg.elements]
        assert placed == [fused_name]

    def test_fusion_preserves_behaviour(self):
        def run(fusion):
            reset_rpc_ids()
            chain, registry = self.build_fusable(
                "Logging", "Acl", "Fault", fusion=fusion, seed=42
            )
            sim = Simulator()
            cluster = two_machine_cluster(sim)
            stack = AdnMrpcStack(sim, cluster, chain, SCHEMA, registry)
            client = ClosedLoopClient(
                sim, stack.call, concurrency=8, total_rpcs=300
            )
            return client.run()

        plain = run(False)
        fused = run(True)
        assert plain.completed == fused.completed == 300
        # same seeded rand() stream -> identical drop decisions
        assert fused.aborted == plain.aborted
        assert 5 <= fused.aborted <= 60


class TestVirtualL2Integration:
    """Wire crossings really traverse the flat-identifier virtual L2
    (the only network service ADN assumes, paper §3)."""

    def test_frames_flow_over_l2(self):
        reset_rpc_ids()
        chain, registry = build_chain("Acl")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = AdnMrpcStack(sim, cluster, chain, SCHEMA, registry)
        client = ClosedLoopClient(sim, stack.call, concurrency=4, total_rpcs=100)
        metrics = client.run()
        ok = metrics.completed - metrics.aborted
        # one forward + one return frame per non-aborted RPC (aborts
        # from the client-side ACL never cross)
        assert cluster.l2.frames_delivered == 2 * ok
        assert cluster.l2.bytes_delivered > 0

    def test_endpoints_registered_by_name(self):
        reset_rpc_ids()
        chain, registry = build_chain("Acl")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        AdnMrpcStack(sim, cluster, chain, SCHEMA, registry)
        assert cluster.l2.resolve("A.0/engine") is not None
        assert cluster.l2.resolve("B/engine") is not None


class TestReproducibility:
    """Identical seeds must give bit-identical runs — the property every
    benchmark number in EXPERIMENTS.md rests on."""

    def run_once(self, seed=7):
        reset_rpc_ids()
        chain, registry = build_chain("Logging", "Acl", "Fault")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = AdnMrpcStack(sim, cluster, chain, SCHEMA, registry)
        client = ClosedLoopClient(
            sim, stack.call, concurrency=16, total_rpcs=400, seed=seed
        )
        metrics = client.run()
        return metrics

    def test_same_seed_identical(self):
        first = self.run_once()
        second = self.run_once()
        assert first.latency.samples == second.latency.samples
        assert first.aborted == second.aborted
        assert first.elapsed_s == second.elapsed_s

    def test_different_seed_differs(self):
        first = self.run_once(seed=1)
        second = self.run_once(seed=2)
        assert first.latency.samples != second.latency.samples


class TestServerComposition:
    """A service whose handler calls a downstream service before
    responding — chained ADNs forming a microservice topology."""

    def test_two_tier_call_graph(self):
        reset_rpc_ids()
        front_chain, registry = build_chain("Logging")
        back_chain, registry2 = build_chain("Acl")
        sim = Simulator()
        cluster = two_machine_cluster(sim)

        back_stack = AdnMrpcStack(
            sim, cluster, back_chain, SCHEMA, registry2,
            client_service="B", server_service="C",
        )

        def cart_handler(request):
            outcome = yield sim.process(
                back_stack.call(
                    payload=request.get("payload", b""),
                    username=request.get("username"),
                    obj_id=request.get("obj_id"),
                )
            )
            return {
                "payload": b"backed:" + bytes(outcome.response.get("payload") or b"")
            }

        front_stack = AdnMrpcStack(
            sim, cluster, front_chain, SCHEMA, registry,
            server_handler=cart_handler,
        )
        process = sim.process(
            front_stack.call(payload=b"x", username="usr2", obj_id=1)
        )
        outcome = sim.run_until_complete(process)
        assert outcome.ok
        assert bytes(outcome.response["payload"]).startswith(b"backed:")
        # the end-to-end latency includes both tiers
        assert outcome.latency_s > 100e-6

    def test_downstream_denial_visible_upstream(self):
        reset_rpc_ids()
        front_chain, registry = build_chain("Logging")
        back_chain, registry2 = build_chain("Acl")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        back_stack = AdnMrpcStack(
            sim, cluster, back_chain, SCHEMA, registry2,
            client_service="B", server_service="C",
        )

        def handler(request):
            outcome = yield sim.process(
                back_stack.call(
                    payload=b"", username="usr1", obj_id=1  # will be denied
                )
            )
            return {
                "payload": (
                    b"downstream-denied" if not outcome.ok else b"ok"
                )
            }

        front_stack = AdnMrpcStack(
            sim, cluster, front_chain, SCHEMA, registry,
            server_handler=handler,
        )
        process = sim.process(
            front_stack.call(payload=b"x", username="usr2", obj_id=1)
        )
        outcome = sim.run_until_complete(process)
        assert outcome.ok  # the front tier itself succeeded
        assert bytes(outcome.response["payload"]) == b"downstream-denied"


class TestTracing:
    """Per-RPC traces (§5.3: processors report tracing information)."""

    def run_traced(self, username="usr2"):
        reset_rpc_ids()
        chain, registry = build_chain("Logging", "Acl", "Fault")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = AdnMrpcStack(
            sim, cluster, chain, SCHEMA, registry, tracing=True
        )
        process = sim.process(
            stack.call(payload=b"x", username=username, obj_id=1)
        )
        return sim.run_until_complete(process)

    def test_trace_covers_path(self):
        outcome = self.run_traced()
        trace = outcome.notes["trace"]
        names = [span[0] for span in trace]
        assert "request:mrpc@client-host" in names
        assert "wire:forward" in names
        assert "response:mrpc@client-host" in names

    def test_spans_are_ordered_and_nonnegative(self):
        outcome = self.run_traced()
        trace = outcome.notes["trace"]
        for _name, enter, exit_ in trace:
            assert exit_ >= enter
        enters = [span[1] for span in trace]
        assert enters == sorted(enters)

    def test_span_time_within_total(self):
        outcome = self.run_traced()
        spanned = sum(
            exit_ - enter for _n, enter, exit_ in outcome.notes["trace"]
        )
        assert spanned <= outcome.latency_s + 1e-12

    def test_aborted_rpc_has_short_trace(self):
        ok = self.run_traced("usr2")
        denied = self.run_traced("usr1")
        assert denied.aborted_by == "Acl"
        assert len(denied.notes["trace"]) < len(ok.notes["trace"])

    def test_tracing_off_by_default(self):
        reset_rpc_ids()
        chain, registry = build_chain("Acl")
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = AdnMrpcStack(sim, cluster, chain, SCHEMA, registry)
        process = sim.process(
            stack.call(payload=b"x", username="usr2", obj_id=1)
        )
        outcome = sim.run_until_complete(process)
        assert "trace" not in outcome.notes
