"""eBPF / P4 / WASM backend tests: legality matrices and generated
source structure."""

import pytest

from repro.compiler.backends import EbpfBackend, P4Backend, WasmBackend
from repro.dsl import DEFAULT_REGISTRY, FieldType, RpcSchema, load_stdlib
from repro.dsl.parser import parse_element
from repro.dsl.validator import validate_element
from repro.errors import BackendError
from repro.ir.analysis import analyze_element
from repro.ir.builder import build_element_ir

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)


@pytest.fixture(scope="module")
def program():
    return load_stdlib(schema=SCHEMA)


def ir_of(program, name):
    ir = build_element_ir(program.elements[name])
    analyze_element(ir, DEFAULT_REGISTRY)
    return ir


def custom_ir(source):
    ir = build_element_ir(validate_element(parse_element(source)))
    analyze_element(ir, DEFAULT_REGISTRY)
    return ir


@pytest.fixture(scope="module")
def ebpf():
    return EbpfBackend(DEFAULT_REGISTRY)


@pytest.fixture(scope="module")
def p4():
    return P4Backend(DEFAULT_REGISTRY)


@pytest.fixture(scope="module")
def wasm():
    return WasmBackend(DEFAULT_REGISTRY)


class TestEbpfLegality:
    def test_acl_legal(self, program, ebpf):
        assert ebpf.check(ir_of(program, "Acl")).legal

    def test_fault_legal_with_fixed_point_note(self, program, ebpf):
        report = ebpf.check(ir_of(program, "Fault"))
        assert report.legal
        assert any("fixed point" in note for note in report.notes)

    def test_logging_legal_via_ringbuf(self, program, ebpf):
        report = ebpf.check(ir_of(program, "Logging"))
        assert report.legal
        assert any("ring buffer" in note for note in report.notes)

    def test_compression_rejected(self, program, ebpf):
        report = ebpf.check(ir_of(program, "Compression"))
        assert not report.legal
        assert any("payload UDF" in v for v in report.violations)

    def test_unbounded_join_rejected(self, ebpf):
        ir = custom_ir(
            """
            element E {
                state t (k: int, v: str);
                on request {
                    SELECT input.* FROM input JOIN t ON t.k == input.x;
                }
            }
            """
        )
        report = ebpf.check(ir)
        assert not report.legal
        assert any("unbounded loop" in v for v in report.violations)

    def test_unkeyed_bag_rejected(self, ebpf):
        ir = custom_ir(
            """
            element E {
                state t (v: int);
                on request {
                    INSERT INTO t SELECT input.x FROM input;
                    SELECT * FROM input;
                }
            }
            """
        )
        report = ebpf.check(ir)
        assert any("keyed map" in v for v in report.violations)

    def test_table_scan_update_rejected(self, ebpf):
        ir = custom_ir(
            """
            element E {
                state t (k: int KEY, n: int);
                on request {
                    UPDATE t SET n = n + 1 WHERE n > 0;
                    SELECT * FROM input;
                }
            }
            """
        )
        report = ebpf.check(ir)
        assert any("scans the table" in v for v in report.violations)

    def test_emit_rejects_illegal(self, program, ebpf):
        with pytest.raises(BackendError):
            ebpf.emit(ir_of(program, "Compression"))


class TestEbpfSource:
    def test_acl_source_structure(self, program, ebpf):
        source = ebpf.emit(ir_of(program, "Acl")).source
        assert "ADN_HASH_MAP(ac_tab" in source
        assert 'SEC("adn/Acl/request")' in source
        assert "return ADN_DROP;" in source
        assert "bpf_map_lookup_elem" in source

    def test_logging_source_has_ringbuf(self, program, ebpf):
        source = ebpf.emit(ir_of(program, "Logging")).source
        assert "ADN_RINGBUF(log_tab" in source

    def test_rate_limit_globals(self, program, ebpf):
        source = ebpf.emit(ir_of(program, "RateLimit")).source
        assert "ADN_GLOBAL" in source
        assert "tokens" in source


class TestP4Legality:
    def test_acl_legal(self, program, p4):
        assert p4.check(ir_of(program, "Acl")).legal

    def test_lb_legal(self, program, p4):
        assert p4.check(ir_of(program, "LbKeyHash")).legal

    def test_logging_rejected(self, program, p4):
        report = p4.check(ir_of(program, "Logging"))
        assert not report.legal

    def test_compression_rejected(self, program, p4):
        report = p4.check(ir_of(program, "Compression"))
        assert any("parse window" in v for v in report.violations)

    def test_mirror_rejected_no_clone(self, program, p4):
        report = p4.check(ir_of(program, "Mirror"))
        assert any("clone" in v for v in report.violations)

    def test_metrics_insert_rejected(self, program, p4):
        report = p4.check(ir_of(program, "Metrics"))
        assert any("control-plane only" in v for v in report.violations)

    def test_counter_bump_allowed(self, p4):
        ir = custom_ir(
            """
            element E {
                state t (k: str KEY, n: int);
                on request {
                    UPDATE t SET n = n + 1 WHERE k == input.m;
                    SELECT * FROM input;
                }
            }
            """
        )
        assert p4.check(ir).legal

    def test_non_counter_update_rejected(self, p4):
        ir = custom_ir(
            """
            element E {
                state t (k: str KEY, n: int);
                on request {
                    UPDATE t SET n = 0 WHERE k == input.m;
                    SELECT * FROM input;
                }
            }
            """
        )
        report = p4.check(ir)
        assert any("register-style" in v for v in report.violations)

    def test_string_ordering_rejected(self, p4):
        ir = custom_ir(
            "element E { on request { SELECT * FROM input WHERE input.u > 'm'; } }"
        )
        report = p4.check(ir)
        assert any("ordering" in v for v in report.violations)


class TestP4Source:
    def test_acl_source_structure(self, program, p4):
        source = p4.emit(ir_of(program, "Acl")).source
        assert "#include <v1model.p4>" in source
        assert "table ac_tab_t" in source
        assert "hdr.adn.username: exact;" in source
        assert "mark_to_drop" in source

    def test_lb_source_rewrites_dst(self, program, p4):
        source = p4.emit(ir_of(program, "LbKeyHash")).source
        assert "hdr.adn.dst" in source


class TestWasm:
    def test_everything_legal(self, program, wasm):
        for name in program.elements:
            assert wasm.check(ir_of(program, name)).legal, name

    def test_sandbox_note(self, program, wasm):
        report = wasm.check(ir_of(program, "Acl"))
        assert any("sandbox" in note for note in report.notes)

    def test_source_structure(self, program, wasm):
        source = wasm.emit(ir_of(program, "Acl")).source
        assert "proxy_wasm" in source
        assert "on_http_request_headers" in source
        assert "on_http_response_headers" in source

    def test_request_only_element(self, wasm):
        ir = custom_ir("element E { on request { SELECT * FROM input; } }")
        source = wasm.emit(ir).source
        assert "on_http_request_headers" in source
        assert "on_http_response_headers" not in source
