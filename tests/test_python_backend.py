"""Python backend tests: generated code is differential-tested against
the reference interpreter on every stdlib element, in both directions,
plus structural checks on the generated source."""

import random
import zlib

import pytest

from repro.compiler.backends.python_backend import PythonBackend
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.ir.analysis import analyze_element
from repro.ir.builder import build_element_ir
from repro.ir.interp import ElementInstance

from conftest import make_rpc

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)


@pytest.fixture(scope="module")
def program():
    return load_stdlib(schema=SCHEMA)


def compiled_pair(program, name, registry):
    """(generated instance, interpreter instance) sharing one registry."""
    ir = build_element_ir(program.elements[name])
    analyze_element(ir, registry)
    backend = PythonBackend(registry)
    artifact = backend.emit(ir)
    return artifact, artifact.factory(), ElementInstance(ir, registry)


def strip(rows):
    return [
        {k: v for k, v in row.items() if isinstance(k, str)} for row in rows
    ]


def rpc_for(name, kind):
    rpc = make_rpc(kind=kind)
    if name == "Decompression" and kind == "request":
        rpc["payload"] = zlib.compress(rpc["payload"], 1)
    if name == "Compression" and kind == "response":
        rpc["payload"] = zlib.compress(rpc["payload"], 1)
    if name == "Decompression" and kind == "response":
        pass  # compresses: any payload fine
    return rpc


ALL_ELEMENTS = [
    "Logging",
    "Acl",
    "Fault",
    "LbKeyHash",
    "LbRoundRobin",
    "Compression",
    "Decompression",
    "AccessControl",
    "Encryption",
    "Decryption",
    "RateLimit",
    "Metrics",
    "Router",
    "Admission",
    "Mirror",
    "Cache",
    "SizeLimit",
    "GlobalQuota",
]


class TestDifferential:
    @pytest.mark.parametrize("name", ALL_ELEMENTS)
    @pytest.mark.parametrize("kind", ["request", "response"])
    def test_generated_matches_interpreter(self, program, name, kind):
        registry = FunctionRegistry()
        _artifact, generated, reference = compiled_pair(program, name, registry)
        for instance in (generated, reference):
            if any(d.name == "endpoints" for d in instance.state.tables
                   ) if False else ("endpoints" in instance.state.tables):
                instance.state.table("endpoints").insert_values([0, "B.1"])
                instance.state.table("endpoints").insert_values([1, "B.2"])
        for i in range(20):
            rpc = rpc_for(name, kind)
            rpc["rpc_id"] = i
            rpc["obj_id"] = i * 7
            registry.bind_rng(random.Random(i))
            generated_out = generated.process(dict(rpc), kind)
            registry.bind_rng(random.Random(i))
            reference_out = strip(reference.process(dict(rpc), kind))
            assert generated_out == reference_out, (name, kind, i)

    def test_state_converges_identically(self, program):
        registry = FunctionRegistry()
        _artifact, generated, reference = compiled_pair(
            program, "Metrics", registry
        )
        for i in range(30):
            rpc = make_rpc(method=("get", "put", "del")[i % 3], rpc_id=i)
            generated.process(dict(rpc), "request")
            reference.process(dict(rpc), "request")
        assert (
            generated.state.table("counters").snapshot()
            == reference.state.table("counters").snapshot()
        )


class TestGeneratedSource:
    def test_source_is_real_python(self, program):
        registry = FunctionRegistry()
        artifact, _generated, _reference = compiled_pair(
            program, "Acl", registry
        )
        compile(artifact.source, "<check>", "exec")  # must parse

    def test_source_specializes_field_access(self, program):
        registry = FunctionRegistry()
        artifact, _g, _r = compiled_pair(program, "LbKeyHash", registry)
        assert "row['obj_id']" in artifact.source
        assert "'dst':" in artifact.source

    def test_loc_counted(self, program):
        registry = FunctionRegistry()
        artifact, _g, _r = compiled_pair(program, "Logging", registry)
        assert artifact.loc > 10
        assert artifact.op_count > 0

    def test_init_block_generated(self, program):
        registry = FunctionRegistry()
        artifact, generated, _r = compiled_pair(program, "Acl", registry)
        assert "insert_values" in artifact.source
        assert len(generated.state.table("ac_tab")) == 2

    def test_factories_are_independent(self, program):
        registry = FunctionRegistry()
        ir = build_element_ir(program.elements["Metrics"])
        analyze_element(ir, registry)
        artifact = PythonBackend(registry).emit(ir)
        first, second = artifact.factory(), artifact.factory()
        first.process(make_rpc(), "request")
        assert len(first.state.table("counters")) == 1
        assert len(second.state.table("counters")) == 0

    def test_func_call_hook_fires(self, program):
        registry = FunctionRegistry()
        calls = []
        ir = build_element_ir(program.elements["Compression"])
        analyze_element(ir, registry)
        artifact = PythonBackend(registry).emit(ir)
        instance = artifact.factory(
            on_func_call=lambda spec, size: calls.append((spec.name, size))
        )
        instance.process(make_rpc(payload=b"z" * 100), "request")
        assert ("compress", 100) in calls
