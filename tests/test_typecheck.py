"""The abstract-interpretation type & effect checker (ADN501-ADN505):
domain algebra, per-element and chain-wide fault detection, the lint
rule family, stdlib cleanliness, the demo file's exact findings, and
the ``check --types`` CLI (including json/text exit-code parity)."""

import json

import pytest

from repro.analysis import (
    TOP,
    UNKNOWN,
    AbstractValue,
    check_chain,
    check_element,
    env_from_schema,
    join,
)
from repro.analysis.domains import arith_result, comparable, compatible
from repro.cli import main
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.dsl.parser import parse
from repro.ir.analysis import analyze_element
from repro.ir.builder import build_element_ir
from repro.lint import LintOptions, Severity, lint_source
from repro.lint.registry import all_rules

DEMO = "examples/typecheck_demo.adn"

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)


def build_ir(source, name=None, registry=None, schema=SCHEMA):
    from repro.dsl.validator import validate_element

    registry = registry or FunctionRegistry()
    program = parse(source)
    name = name or next(iter(program.elements))
    # validation resolves bare names (vars vs columns) before lowering,
    # exactly as the compiler and lint front ends do
    element = validate_element(program.elements[name], schema, registry)
    ir = build_element_ir(element)
    analyze_element(ir, registry)
    return ir


def element_findings(source, schema=SCHEMA, name=None):
    registry = FunctionRegistry()
    ir = build_ir(source, name=name, registry=registry, schema=schema)
    return check_element(ir, schema, registry).findings


def codes(findings):
    return [f.code for f in findings]


class TestDomains:
    def test_const_bool_is_not_int(self):
        assert AbstractValue.of_const(True).must_be(FieldType.BOOL)
        assert AbstractValue.of_const(1).must_be(FieldType.INT)

    def test_numeric_const_pins_interval(self):
        value = AbstractValue.of_const(7)
        assert (value.lo, value.hi) == (7.0, 7.0)
        assert not value.may_be_zero()

    def test_null_const_is_distinct_from_unknown(self):
        null = AbstractValue.of_const(None)
        assert null.is_null and null.known
        assert not TOP.known and TOP.const is UNKNOWN

    def test_join_unions_types_and_hulls_intervals(self):
        a = AbstractValue.of_const(1)
        b = AbstractValue.of_const(10)
        merged = join(a, b)
        assert merged.types == frozenset({FieldType.INT})
        assert (merged.lo, merged.hi) == (1.0, 10.0)
        assert not merged.known

    def test_comparable_numeric_cross_type(self):
        i = AbstractValue.typed(FieldType.INT)
        f = AbstractValue.typed(FieldType.FLOAT)
        s = AbstractValue.typed(FieldType.STR)
        assert comparable(i, f)
        assert not comparable(i, s)
        assert compatible(i, f) and not compatible(i, s)

    def test_division_always_yields_float(self):
        i = AbstractValue.typed(FieldType.INT)
        assert arith_result("/", i, i).types == frozenset({FieldType.FLOAT})
        assert arith_result("+", i, i).types == frozenset({FieldType.INT})

    def test_env_from_schema_has_meta_fields(self):
        env = env_from_schema(SCHEMA)
        assert "username" in env and "src" in env and "status" in env
        assert env["obj_id"].must_be(FieldType.INT)
        assert not env["username"].nullable


class TestElementChecks:
    def test_clean_element_has_no_findings(self):
        findings = element_findings(
            "element E { on request {"
            " SELECT input.*, len(input.username) AS n FROM input; } }"
        )
        assert findings == []

    def test_missing_field_is_adn501_error(self):
        # the front-end validator would reject this read outright; the
        # abstract checker sees it when the environment narrows *after*
        # validation (chain drops a field), modeled here by validating
        # open and checking closed
        registry = FunctionRegistry()
        ir = build_ir(
            "element E { on request {"
            " SELECT input.*, input.ghost AS g FROM input; } }",
            registry=registry,
            schema=None,
        )
        findings = check_element(ir, SCHEMA, registry).findings
        assert codes(findings) == ["ADN501"]
        (finding,) = findings
        assert finding.severity == "error"
        assert finding.span is not None and finding.span.line == 1

    def test_open_schema_tolerates_unknown_fields(self):
        findings = element_findings(
            "element E { on request {"
            " SELECT input.*, input.ghost AS g FROM input; } }",
            schema=None,
        )
        assert findings == []

    def test_division_by_literal_zero_is_adn503(self):
        findings = element_findings(
            "element E { on request {"
            " SELECT input.*, input.obj_id / 0 AS y FROM input; } }"
        )
        assert codes(findings) == ["ADN503"]
        assert findings[0].severity == "error"

    def test_modulo_by_widened_var_is_adn505(self):
        findings = element_findings(
            "element E { var d: int = 0; on request {"
            " SELECT input.*, input.obj_id % d AS y FROM input; } }"
        )
        assert codes(findings) == ["ADN505"]
        assert findings[0].severity == "warning"

    def test_insert_type_conflict_is_adn504(self):
        findings = element_findings(
            "element E { state t (k: str KEY, n: int);\n"
            "on request {\n"
            "    INSERT INTO t SELECT input.username, input.username "
            "FROM input;\n"
            "    SELECT * FROM input;\n"
            "} }"
        )
        assert "ADN504" in codes(findings)
        conflict = [f for f in findings if f.code == "ADN504"][0]
        assert conflict.severity == "error"

    def test_var_assignment_type_conflict_is_adn504(self):
        # the validator cannot type aggregate results (min_of's type
        # depends on the column); the abstract checker resolves it
        findings = element_findings(
            "element E { var n: int = 0; state t (k: str KEY, v: str);\n"
            "on request {\n"
            "    SET n = min_of(t, v);\n"
            "    SELECT * FROM input;\n"
            "} }"
        )
        assert "ADN504" in codes(findings)
        conflict = [f for f in findings if f.code == "ADN504"][0]
        assert "expects int" in conflict.message

    def test_nullable_aggregate_arithmetic_is_adn505(self):
        findings = element_findings(
            "element E { state t (k: str KEY, n: int); on request {"
            " SELECT input.*, min_of(t, n) + 1 AS head FROM input; } }"
        )
        assert codes(findings) == ["ADN505"]
        assert "NULL" in findings[0].message


class TestChainChecks:
    def build(self, source, names, registry):
        program = load_stdlib(schema=SCHEMA).merged(parse(source))
        irs = []
        for name in names:
            ir = build_element_ir(program.elements[name])
            analyze_element(ir, registry)
            irs.append(ir)
        return irs

    def test_dropped_field_read_downstream_is_error(self):
        registry = FunctionRegistry()
        source = (
            "element Narrow { on request {"
            " SELECT input.obj_id AS obj_id FROM input; } }\n"
            "element Reads { on request {"
            " SELECT input.*, len(input.username) AS n FROM input; } }"
        )
        irs = self.build(source, ["Narrow", "Reads"], registry)
        report = check_chain(irs, SCHEMA, registry)
        errors = [f for f in report.findings if f.code == "ADN501"]
        assert errors and errors[0].severity == "error"
        assert errors[0].element == "Reads"

    def test_fanout_partial_emit_read_is_warning(self):
        registry = FunctionRegistry()
        source = (
            "element Forked { on request {\n"
            "    SELECT input.* FROM input;\n"
            "    SELECT input.obj_id AS obj_id FROM input;\n"
            "} }\n"
            "element Reads { on request {"
            " SELECT input.*, len(input.username) AS n FROM input; } }"
        )
        irs = self.build(source, ["Forked", "Reads"], registry)
        report = check_chain(irs, SCHEMA, registry)
        warnings = [f for f in report.findings if f.code == "ADN501"]
        assert warnings and warnings[0].severity == "warning"
        assert "some upstream paths" in warnings[0].message

    def test_paper_chain_is_clean(self):
        registry = FunctionRegistry()
        irs = self.build("", ["Logging", "Acl", "Fault"], registry)
        report = check_chain(irs, SCHEMA, registry)
        assert report.findings == []
        assert report.request_env is not None
        assert report.response_env is not None


class TestStdlibClean:
    def test_no_adn5_errors_anywhere(self):
        registry = FunctionRegistry()
        program = load_stdlib(schema=SCHEMA)
        for name, element in sorted(program.elements.items()):
            ir = build_element_ir(element)
            analyze_element(ir, registry)
            report = check_element(ir, None, registry)
            errors = [f for f in report.findings if f.severity == "error"]
            assert errors == [], f"{name}: {[f.message for f in errors]}"

    def test_known_lb_warnings_are_the_only_findings(self):
        registry = FunctionRegistry()
        program = load_stdlib(schema=SCHEMA)
        flagged = set()
        for name, element in sorted(program.elements.items()):
            ir = build_element_ir(element)
            analyze_element(ir, registry)
            if check_element(ir, None, registry).findings:
                flagged.add(name)
        assert flagged == {"LbKeyHash", "LbRoundRobin"}


class TestLintIntegration:
    def test_rules_registered_with_docs(self):
        by_code = {r.code: r for r in all_rules()}
        for code in ("ADN501", "ADN502", "ADN503", "ADN504", "ADN505"):
            assert code in by_code
            assert by_code[code].doc

    def test_findings_deduped_between_element_and_chain(self):
        source = (
            "element Div { on request {"
            " SELECT input.*, input.obj_id / 0 AS y FROM input; } }\n"
            "app A { service x; service y; chain x -> y { Div } }"
        )
        result = lint_source(source, options=LintOptions(schema=SCHEMA))
        adn503 = [d for d in result.diagnostics if d.code == "ADN503"]
        assert len(adn503) == 1

    def test_stdlib_chain_members_not_blamed(self):
        # LbRoundRobin carries an ADN505 of its own; a file that merely
        # chains it must not inherit the finding
        source = (
            "app A { service x; service y;"
            " chain x -> y { LbRoundRobin, Logging } }"
        )
        result = lint_source(source, options=LintOptions(schema=SCHEMA))
        assert [d for d in result.diagnostics if d.code == "ADN505"] == []


class TestDemoFile:
    @pytest.fixture(scope="class")
    def result(self):
        with open(DEMO) as handle:
            return lint_source(
                handle.read(), path=DEMO, options=LintOptions(schema=SCHEMA)
            )

    def test_expected_codes(self, result):
        adn5 = [d for d in result.diagnostics if d.code.startswith("ADN5")]
        assert sorted(d.code for d in adn5) == ["ADN501", "ADN505", "ADN505"]
        assert all(d.severity is Severity.WARNING for d in adn5)

    def test_modulo_divisor_position(self, result):
        (divisor,) = [
            d
            for d in result.diagnostics
            if d.code == "ADN505" and "divisor" in d.message
        ]
        assert (divisor.line, divisor.column) == (20, 25)

    def test_nullable_arithmetic_position(self, result):
        (nullable,) = [
            d
            for d in result.diagnostics
            if d.code == "ADN505" and "NULL" in d.message
        ]
        assert (nullable.line, nullable.column) == (22, 16)

    def test_maybe_absent_read_position(self, result):
        (absent,) = [
            d for d in result.diagnostics if d.code == "ADN501"
        ]
        assert (absent.line, absent.column) == (33, 39)
        assert "username" in absent.message

    def test_spans_point_at_real_source(self, result):
        lines = open(DEMO).read().splitlines()
        for diagnostic in result.diagnostics:
            assert diagnostic.line >= 1
            assert diagnostic.line <= len(lines)


class TestCheckCliTypes:
    def test_demo_passes_at_default_threshold(self, capsys):
        assert main(["check", "--types", DEMO]) == 0
        out = capsys.readouterr().out
        assert "ADN505" in out and "ADN501" in out
        assert "typecheck: 3 finding(s)" in out

    def test_fail_on_warning_rejects_demo(self, capsys):
        assert main(["check", "--types", "--fail-on", "warning", DEMO]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_json_and_text_exit_codes_agree(self, capsys):
        for fail_on, expected in (("error", 0), ("warning", 1)):
            text_code = main(["check", "--types", "--fail-on", fail_on, DEMO])
            capsys.readouterr()
            json_code = main(
                ["check", "--types", "--fail-on", fail_on, DEMO,
                 "--format", "json"]
            )
            payload = json.loads(capsys.readouterr().out)
            assert text_code == json_code == expected
            assert payload["ok"] is (expected == 0)
            assert len(payload["typecheck"]) == 3

    def test_stdlib_flag_is_error_clean(self, capsys):
        assert main(["check", "--types", "--stdlib", DEMO]) == 0
        out = capsys.readouterr().out
        # lb elements surface their divisor warnings, but no errors
        assert "error ADN5" not in out

    def test_plain_check_json_still_exits_zero(self, capsys):
        assert main(["check", DEMO, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert "typecheck" not in payload


class TestLintCliExitParity:
    """`lint --format json` and text must agree on the exit code."""

    def test_error_file_fails_both_formats(self, tmp_path, capsys):
        path = tmp_path / "bad.adn"
        path.write_text("element Broken { on request { SELECT; } }")
        text_code = main(["lint", str(path)])
        capsys.readouterr()
        json_code = main(["lint", str(path), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert text_code == json_code == 1
        assert payload[0]["fails"] is True

    def test_clean_file_passes_both_formats(self, tmp_path, capsys):
        path = tmp_path / "ok.adn"
        path.write_text(
            "element Ok { on request { SELECT * FROM input; } }"
        )
        text_code = main(["lint", str(path)])
        capsys.readouterr()
        json_code = main(["lint", str(path), "--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert text_code == json_code == 0
        assert payload[0]["fails"] is False
