"""CLI tests (``python -m repro``)."""

import pytest

from repro.cli import main

ELEMENT_SRC = """
element Stamp {
    on request { SELECT input.*, now() AS stamped_at FROM input; }
    on response { SELECT * FROM input; }
}
"""

APP_SRC = (
    ELEMENT_SRC
    + """
app Shop {
    service A;
    service B replicas 2;
    chain A -> B { Stamp, Acl }
}
"""
)


@pytest.fixture
def dsl_file(tmp_path):
    path = tmp_path / "app.adn"
    path.write_text(APP_SRC)
    return str(path)


class TestCheck:
    def test_valid_file(self, dsl_file, capsys):
        assert main(["check", dsl_file]) == 0
        out = capsys.readouterr().out
        assert "OK" in out
        assert "elements: 1" in out

    def test_analyze_flag(self, dsl_file, capsys):
        assert main(["check", dsl_file, "--analyze"]) == 0
        out = capsys.readouterr().out
        assert "Stamp:" in out
        assert "stamped_at" in out

    def test_invalid_file(self, tmp_path, capsys):
        path = tmp_path / "bad.adn"
        path.write_text("element Broken { on request { SELECT; } }")
        assert main(["check", str(path)]) == 1
        assert "error:" in capsys.readouterr().err

    def test_custom_schema_fields(self, tmp_path, capsys):
        path = tmp_path / "custom.adn"
        path.write_text(
            "element E { on request { SELECT input.tenant FROM input; } }"
        )
        # custom schemas exclude the stdlib (whose elements reference the
        # default fields)
        assert (
            main(["check", str(path), "--field", "tenant:str", "--no-stdlib"])
            == 0
        )

    def test_bad_field_spec(self, dsl_file, capsys):
        assert main(["check", dsl_file, "--field", "nocolon"]) == 1


class TestFmt:
    def test_prints_canonical(self, dsl_file, capsys):
        assert main(["fmt", dsl_file]) == 0
        out = capsys.readouterr().out
        assert "element Stamp {" in out
        assert "app Shop {" in out

    def test_in_place_round_trips(self, dsl_file, capsys):
        assert main(["fmt", dsl_file, "--in-place"]) == 0
        # formatted output must still check clean
        assert main(["check", dsl_file]) == 0

    def test_output_is_stable(self, dsl_file, capsys):
        main(["fmt", dsl_file])
        first = capsys.readouterr().out
        path = dsl_file
        with open(path, "w") as handle:
            handle.write(first)
        main(["fmt", path])
        second = capsys.readouterr().out
        assert first == second


class TestCompile:
    def test_legality_listing(self, dsl_file, capsys):
        assert main(["compile", dsl_file]) == 0
        out = capsys.readouterr().out
        assert "python" in out
        assert "OK" in out

    def test_emit_backend_source(self, dsl_file, capsys):
        assert main(["compile", dsl_file, "--element", "Acl", "--emit", "p4"]) == 0
        out = capsys.readouterr().out
        assert "#include <v1model.p4>" in out

    def test_unknown_element(self, dsl_file, capsys):
        assert main(["compile", dsl_file, "--element", "Ghost"]) == 1

    def test_explain_prints_pass_report(self, dsl_file, capsys):
        assert main(["compile", dsl_file, "--explain"]) == 0
        out = capsys.readouterr().out
        assert "chain A -> B:" in out
        for pass_name in (
            "constant_folding",
            "predicate_pushdown",
            "reorder",
            "dead_fields",
            "fuse_elements",
            "parallelize",
        ):
            assert pass_name in out
        assert "fused " in out  # fusion actually fired
        assert "artifact cache:" in out

    def test_explain_without_app_falls_back_to_elements(self, tmp_path, capsys):
        path = tmp_path / "noapp.adn"
        path.write_text(ELEMENT_SRC)
        assert main(["compile", str(path), "--explain"]) == 0
        out = capsys.readouterr().out
        assert "chain A -> B:" in out
        assert "Stamp" in out

    def test_explain_demo_example(self, capsys):
        import os

        demo = os.path.join(
            os.path.dirname(__file__), "..", "examples", "explain_demo.adn"
        )
        assert main(["compile", "--explain", demo]) == 0
        out = capsys.readouterr().out
        assert "dropped dead field 'audit_zone'" in out
        assert "fused AuditStamp + Logging + Fault + Acl" in out


class TestPlan:
    def test_software_plan(self, dsl_file, capsys):
        assert main(["plan", dsl_file]) == 0
        out = capsys.readouterr().out
        assert "chain A -> B" in out
        assert "mrpc@client-host" in out

    def test_offload_plan_with_switch(self, dsl_file, capsys):
        assert main(
            ["plan", dsl_file, "--strategy", "offload", "--switch",
             "--smartnics"]
        ) == 0
        out = capsys.readouterr().out
        assert "switch" in out or "smartnic" in out or "kernel" in out

    def test_no_app(self, tmp_path, capsys):
        path = tmp_path / "noapp.adn"
        path.write_text(ELEMENT_SRC)
        assert main(["plan", str(path)]) == 1


class TestBench:
    def test_quick_adn_run(self, capsys):
        assert main(
            ["bench", "--chain", "Acl", "--rpcs", "300",
             "--concurrency", "16"]
        ) == 0
        out = capsys.readouterr().out
        assert "completed   : 300" in out
        assert "krps" in out

    def test_grpc_system(self, capsys):
        assert main(
            ["bench", "--system", "grpc", "--chain", "", "--rpcs", "100",
             "--concurrency", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "system      : grpc" in out

    def test_envoy_system(self, capsys):
        assert main(
            ["bench", "--system", "envoy", "--chain", "Fault",
             "--rpcs", "100", "--concurrency", "4"]
        ) == 0
        out = capsys.readouterr().out
        assert "system      : envoy" in out


class TestFaults:
    def test_default_crash_demo(self, capsys):
        assert main(["faults", "--rpcs", "800"]) == 0
        out = capsys.readouterr().out
        assert "machine_crash stats-host" in out
        assert "800/800 completed" in out
        assert "recovered in" in out
        assert "detection latency" in out

    def test_plan_file_round_trip(self, tmp_path, capsys):
        from repro.faults import default_crash_plan

        plan_path = tmp_path / "plan.json"
        plan_path.write_text(
            default_crash_plan(seed=3, crash_at_s=0.008).to_json()
        )
        assert main(
            ["faults", "--plan", str(plan_path), "--seed", "3",
             "--rpcs", "800"]
        ) == 0
        out = capsys.readouterr().out
        assert "t=    8.00 ms  machine_crash stats-host" in out
        assert "800/800 completed" in out

    def test_malformed_plan_rejected(self, tmp_path, capsys):
        plan_path = tmp_path / "bad.json"
        plan_path.write_text('{"seed": 1}')
        assert main(["faults", "--plan", str(plan_path)]) == 1
        out = capsys.readouterr().out
        assert "ADN610" in out
        assert "events" in out
        assert "Traceback" not in out

    def test_unparseable_plan_rejected(self, tmp_path, capsys):
        plan_path = tmp_path / "garbage.json"
        plan_path.write_text("{not json")
        assert main(["faults", "--plan", str(plan_path)]) == 1
        out = capsys.readouterr().out
        assert "ADN610" in out
        assert "1 error(s)" in out

    def test_chaos_soak_json(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "soak.json"
        assert main(
            ["chaos", "--trials", "2", "--rpcs", "400",
             "--json", str(out_path)]
        ) == 0
        payload = json.loads(out_path.read_text())
        assert payload["benchmark"] == "chaos"
        assert payload["schema_version"] == 1
        assert payload["results"]["total_stale_applied"] == 0
        assert len(payload["results"]["trials"]) == 2
