"""Cluster model and workload generator tests."""

import pytest

from repro.errors import SimulationError
from repro.runtime.message import RpcOutcome
from repro.sim import (
    ClosedLoopClient,
    CostModel,
    OpenLoopClient,
    Simulator,
    SteppedLoadClient,
    two_machine_cluster,
)
from repro.platforms import Platform


class TestCluster:
    def test_two_machine_default(self):
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        assert set(cluster.machines) == {"client-host", "server-host"}
        assert not cluster.switch.programmable

    def test_thread_allocation(self):
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        machine = cluster.machine("client-host")
        thread = machine.thread("mrpc-engine")
        assert thread is machine.thread("mrpc-engine")  # cached
        assert thread.capacity == 1

    def test_core_budget_enforced(self):
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        machine = cluster.machine("client-host")
        with pytest.raises(SimulationError, match="out of cores"):
            machine.thread("huge", capacity=100)

    def test_smartnic_optional(self):
        sim = Simulator()
        plain = two_machine_cluster(sim)
        assert plain.machine("client-host").smartnic_cores is None
        sim2 = Simulator()
        nic = two_machine_cluster(sim2, smartnics=True)
        assert nic.machine("client-host").smartnic_cores is not None

    def test_cpu_accounting(self):
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        thread = cluster.machine("client-host").thread("t")

        def worker():
            yield from thread.use(0.25)

        sim.process(worker())
        sim.run()
        busy = cluster.cpu_busy_by_machine()
        assert busy["client-host"] == pytest.approx(0.25)
        assert busy["server-host"] == 0.0

    def test_duplicate_machine_rejected(self):
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        with pytest.raises(SimulationError):
            cluster.add_machine("client-host")

    def test_switch_capacity(self):
        sim = Simulator()
        cluster = two_machine_cluster(sim, programmable_switch=True)
        assert cluster.switch.can_host(3)
        cluster.switch.installed_elements.extend(["x"] * 12)
        assert not cluster.switch.can_host(1)


class TestCostModel:
    def test_envoy_traversal_grows_with_filters(self):
        costs = CostModel()
        bare = costs.envoy_traversal_cpu_us(filters=0)
        loaded = costs.envoy_traversal_cpu_us(filters=3)
        assert loaded == pytest.approx(bare + 3 * costs.envoy_filter_us)

    def test_wasm_filters_cost_more(self):
        costs = CostModel()
        builtin = costs.envoy_traversal_cpu_us(filters=3)
        wasm = costs.envoy_traversal_cpu_us(filters=3, wasm_filters=3)
        assert wasm > builtin

    def test_wire_cost_scales_with_bytes(self):
        costs = CostModel()
        assert costs.wire_us(10_000) > costs.wire_us(100)

    def test_platform_factors_cover_all_platforms(self):
        costs = CostModel()
        for platform in Platform:
            assert platform in costs.platform_element_factor
            assert platform in costs.platform_element_extra_us

    def test_switch_is_free_cpu(self):
        costs = CostModel()
        assert costs.platform_element_factor[Platform.SWITCH_P4] == 0.0


def _fixed_call_factory(sim, service_s):
    def call(**fields):
        issued = sim.now
        yield sim.timeout(service_s)
        return RpcOutcome(
            request=dict(fields),
            response=dict(fields),
            issued_at=issued,
            completed_at=sim.now,
        )

    return call


class TestClosedLoop:
    def test_completes_exact_count(self):
        sim = Simulator()
        client = ClosedLoopClient(
            sim, _fixed_call_factory(sim, 1e-4), concurrency=4, total_rpcs=100
        )
        metrics = client.run()
        assert metrics.completed == 100

    def test_littles_law_holds(self):
        sim = Simulator()
        client = ClosedLoopClient(
            sim, _fixed_call_factory(sim, 1e-3), concurrency=8, total_rpcs=400
        )
        metrics = client.run()
        assert metrics.check_littles_law(concurrency=8, tolerance=0.1)

    def test_warmup_excluded(self):
        sim = Simulator()
        client = ClosedLoopClient(
            sim,
            _fixed_call_factory(sim, 1e-4),
            concurrency=2,
            total_rpcs=50,
            warmup_rpcs=10,
        )
        metrics = client.run()
        assert metrics.completed == 50
        assert metrics.issued == 60

    def test_latency_measured(self):
        sim = Simulator()
        client = ClosedLoopClient(
            sim, _fixed_call_factory(sim, 2e-4), concurrency=1, total_rpcs=20
        )
        metrics = client.run()
        assert metrics.latency.median == pytest.approx(2e-4)

    def test_deterministic_given_seed(self):
        def run():
            sim = Simulator()
            client = ClosedLoopClient(
                sim,
                _fixed_call_factory(sim, 1e-4),
                concurrency=4,
                total_rpcs=50,
                seed=9,
            )
            metrics = client.run()
            return metrics.latency.samples

        assert run() == run()


class TestOpenLoop:
    def test_rate_approximates_target(self):
        sim = Simulator()
        client = OpenLoopClient(
            sim, _fixed_call_factory(sim, 1e-5), rate_rps=5000, duration_s=1.0
        )
        metrics = client.run()
        assert 4000 < metrics.completed < 6000

    def test_stepped_load_phases(self):
        sim = Simulator()
        client = SteppedLoadClient(
            sim,
            _fixed_call_factory(sim, 1e-5),
            phases=[(1000, 0.5), (4000, 0.5)],
        )
        client.run()
        low, high = client.per_phase
        assert high.issued > low.issued * 2
