"""Semantic validator unit tests."""

import pytest

from repro.dsl import FieldType, RpcSchema
from repro.dsl.ast_nodes import ColumnRef, FuncCall, SelectItem, SelectStmt, VarRef
from repro.dsl.parser import parse, parse_element
from repro.dsl.validator import (
    validate_app,
    validate_element,
    validate_filter,
    validate_program,
)
from repro.errors import DslValidationError


def check(source, schema=None):
    return validate_element(parse_element(source), schema=schema)


SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)


class TestDeclarations:
    def test_duplicate_state_table(self):
        with pytest.raises(DslValidationError, match="duplicate state"):
            check(
                """
                element E {
                    state t (k: int KEY, v: str);
                    state t (k: int KEY, v: str);
                    on request { SELECT * FROM input; }
                }
                """
            )

    def test_state_named_input_rejected(self):
        with pytest.raises(DslValidationError, match="may not be named"):
            check(
                """
                element E {
                    state input (k: int KEY, v: str);
                    on request { SELECT * FROM input; }
                }
                """
            )

    def test_duplicate_column(self):
        with pytest.raises(DslValidationError, match="duplicate column"):
            check(
                """
                element E {
                    state t (k: int KEY, k: str);
                    on request { SELECT * FROM input; }
                }
                """
            )

    def test_var_initializer_type_mismatch(self):
        with pytest.raises(DslValidationError, match="initializer"):
            check(
                """
                element E {
                    var n: int = 'nope';
                    on request { SELECT * FROM input; }
                }
                """
            )

    def test_int_initializer_ok_for_float_var(self):
        # SQL numeric coercion: float vars accept int literals
        check(
            """
            element E {
                var f: float = 0;
                on request { SELECT * FROM input; }
            }
            """
        )

    def test_unknown_meta_key(self):
        with pytest.raises(DslValidationError, match="unknown meta key"):
            check(
                """
                element E {
                    meta { postion: sender; }
                    on request { SELECT * FROM input; }
                }
                """
            )

    def test_bad_position_value(self):
        with pytest.raises(DslValidationError, match="position"):
            check(
                """
                element E {
                    meta { position: middle; }
                    on request { SELECT * FROM input; }
                }
                """
            )

    def test_no_handlers_rejected(self):
        with pytest.raises(DslValidationError, match="no handlers"):
            check("element E { var x: int = 1; }")

    def test_duplicate_handler_rejected(self):
        with pytest.raises(DslValidationError, match="duplicate"):
            check(
                """
                element E {
                    on request { SELECT * FROM input; }
                    on request { SELECT * FROM input; }
                }
                """
            )


class TestReferences:
    def test_unknown_table(self):
        with pytest.raises(DslValidationError, match="unknown table"):
            check(
                """
                element E {
                    on request {
                        SELECT input.* FROM input JOIN nope ON nope.k == 1;
                    }
                }
                """
            )

    def test_unknown_column_in_table(self):
        with pytest.raises(DslValidationError, match="no column"):
            check(
                """
                element E {
                    state t (k: int KEY, v: str);
                    on request {
                        SELECT input.* FROM input JOIN t ON t.zzz == 1;
                    }
                }
                """
            )

    def test_unknown_input_field_with_schema(self):
        with pytest.raises(DslValidationError, match="unknown input field"):
            check(
                """
                element E {
                    on request { SELECT input.nope FROM input; }
                }
                """,
                schema=SCHEMA,
            )

    def test_open_schema_accepts_any_field(self):
        check("element E { on request { SELECT input.whatever FROM input; } }")

    def test_var_resolution(self):
        element = check(
            """
            element E {
                var n: int = 0;
                on request { SELECT * FROM input WHERE n < 5; }
            }
            """
        )
        stmt = element.handlers[0].statements[0]
        assert isinstance(stmt, SelectStmt)
        assert VarRef("n") in _leaves(stmt.where)

    def test_bare_column_resolves_to_joined_table(self):
        element = check(
            """
            element E {
                state t (k: int KEY, v: str);
                on request {
                    SELECT input.* FROM input JOIN t ON k == input.obj_id;
                }
            }
            """,
            schema=SCHEMA,
        )
        stmt = element.handlers[0].statements[0]
        assert ColumnRef("t", "k") in _leaves(stmt.joins[0].on)

    def test_set_undeclared_var(self):
        with pytest.raises(DslValidationError, match="undeclared var"):
            check(
                """
                element E {
                    on request { SET nope = 1; SELECT * FROM input; }
                }
                """
            )

    def test_append_only_table_not_readable(self):
        with pytest.raises(DslValidationError, match="cannot be read"):
            check(
                """
                element E {
                    state t (x: int) APPEND;
                    on request {
                        SELECT input.* FROM input JOIN t ON t.x == 1;
                    }
                }
                """
            )

    def test_append_only_table_not_updatable(self):
        with pytest.raises(DslValidationError, match="cannot be updated"):
            check(
                """
                element E {
                    state t (x: int) APPEND;
                    on request { UPDATE t SET x = 1; SELECT * FROM input; }
                }
                """
            )


class TestTypesAndFunctions:
    def test_string_plus_rejected(self):
        with pytest.raises(DslValidationError, match="concat"):
            check(
                "element E { on request { SELECT 'a' + 'b' AS x FROM input; } }"
            )

    def test_arith_on_bool_rejected(self):
        with pytest.raises(DslValidationError, match="non-numeric"):
            check(
                "element E { on request { SELECT true + 1 AS x FROM input; } }"
            )

    def test_compare_str_with_int_rejected(self):
        with pytest.raises(DslValidationError, match="cannot compare"):
            check(
                "element E { on request { SELECT * FROM input WHERE 'a' > 3; } }"
            )

    def test_where_must_be_boolean(self):
        with pytest.raises(DslValidationError, match="boolean"):
            check("element E { on request { SELECT * FROM input WHERE 1 + 2; } }")

    def test_unknown_function(self):
        with pytest.raises(DslValidationError, match="unknown function"):
            check(
                "element E { on request { SELECT frobnicate(1) AS x FROM input; } }"
            )

    def test_function_arity(self):
        with pytest.raises(DslValidationError, match="argument"):
            check(
                "element E { on request { SELECT hash(1, 2) AS x FROM input; } }"
            )

    def test_count_requires_table_name(self):
        with pytest.raises(DslValidationError, match="state-table name"):
            check(
                "element E { on request { SELECT * FROM input WHERE count(input.x) == 0; } }"
            )

    def test_contains_resolves_key_arg(self):
        element = check(
            """
            element E {
                state t (k: str KEY, v: int);
                on request {
                    SELECT * FROM input WHERE contains(t, input.username);
                }
            }
            """,
            schema=SCHEMA,
        )
        stmt = element.handlers[0].statements[0]
        call = stmt.where
        assert isinstance(call, FuncCall)
        assert call.args[1] == ColumnRef("input", "username")

    def test_readonly_meta_field_write_rejected(self):
        with pytest.raises(DslValidationError, match="read-only"):
            check(
                "element E { on request { SELECT input.*, 99 AS rpc_id FROM input; } }"
            )

    def test_dst_is_writable(self):
        check(
            "element E { on request { SELECT input.*, 'B.1' AS dst FROM input; } }"
        )


class TestInsertChecks:
    def test_insert_arity_mismatch(self):
        with pytest.raises(DslValidationError, match="values"):
            check(
                """
                element E {
                    state t (a: int KEY, b: str);
                    init { INSERT INTO t VALUES (1); }
                    on request { SELECT * FROM input; }
                }
                """
            )

    def test_insert_type_mismatch(self):
        with pytest.raises(DslValidationError, match="expects"):
            check(
                """
                element E {
                    state t (a: int KEY, b: str);
                    init { INSERT INTO t VALUES ('x', 'y'); }
                    on request { SELECT * FROM input; }
                }
                """
            )

    def test_insert_select_column_count(self):
        with pytest.raises(DslValidationError, match="expressions for"):
            check(
                """
                element E {
                    state t (a: int KEY, b: str);
                    on request {
                        INSERT INTO t SELECT input.obj_id FROM input;
                        SELECT * FROM input;
                    }
                }
                """,
                schema=SCHEMA,
            )

    def test_init_cannot_read_input(self):
        with pytest.raises(DslValidationError, match="input"):
            check(
                """
                element E {
                    state t (a: int KEY);
                    init { INSERT INTO t SELECT input.obj_id FROM input; }
                    on request { SELECT * FROM input; }
                }
                """
            )


class TestProgramValidation:
    def test_filter_unknown_operator(self):
        program = parse("filter F { use operator frob; }")
        with pytest.raises(DslValidationError, match="unknown operator"):
            validate_filter(program.filters["F"])

    def test_app_unknown_service(self):
        program = parse(
            """
            element E { on request { SELECT * FROM input; } }
            app P { service a; chain a -> ghost { E } }
            """
        )
        with pytest.raises(DslValidationError, match="unknown service"):
            validate_app(program.apps["P"], program)

    def test_app_unknown_element(self):
        program = parse("app P { service a; service b; chain a -> b { Ghost } }")
        with pytest.raises(DslValidationError, match="unknown element"):
            validate_app(program.apps["P"], program)

    def test_app_self_chain_rejected(self):
        program = parse(
            """
            element E { on request { SELECT * FROM input; } }
            app P { service a; service a2; chain a -> a { E } }
            """
        )
        with pytest.raises(DslValidationError, match="must differ"):
            validate_app(program.apps["P"], program)

    def test_constraint_references_chained_element(self):
        program = parse(
            """
            element E { on request { SELECT * FROM input; } }
            element F { on request { SELECT * FROM input; } }
            app P {
                service a; service b;
                chain a -> b { E }
                constrain F outside_app;
            }
            """
        )
        with pytest.raises(DslValidationError, match="not in any chain"):
            validate_program(program)

    def test_whole_program_validates(self):
        program = parse(
            """
            element E { on request { SELECT * FROM input; } }
            filter F { use operator timeout; }
            app P { service a; service b; chain a -> b { E, F } }
            """
        )
        validated = validate_program(program, schema=SCHEMA)
        assert set(validated.elements) == {"E"}
        assert set(validated.filters) == {"F"}


def _leaves(expr):
    from repro.ir.expr_utils import walk

    return list(walk(expr))
