"""Per-pass translation validation: every optimizer pass is checked
against the pre-pass chain (abstract environments + concolic replay),
the verdict lands in its PassReport, a deliberately-miscompiling mutant
pass is rejected with a span-carrying counterexample, and ``compile
--verify`` refuses to emit artifacts for a failed pipeline."""

import dataclasses

import pytest

from repro.analysis.validate import ValidationVerdict, validate_rewrite
from repro.cli import main
from repro.compiler.compiler import AdnCompiler
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.dsl.ast_nodes import Literal
from repro.errors import TranslationValidationError
from repro.ir.analysis import analyze_element
from repro.ir.builder import build_element_ir
from repro.ir.nodes import HandlerIR, Project, StatementIR
from repro.ir.optimizer import ChainContext, OptimizerOptions, optimize_chain
from repro.ir.passes.reorder import inversions
from repro.ir.passmgr import (
    Pass,
    PassManager,
    PassOutcome,
    default_pipeline,
    format_report_table,
)

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)
PAPER_CHAIN = ("Logging", "Acl", "Fault")


def build_chain(names, registry):
    program = load_stdlib(schema=SCHEMA)
    irs = []
    for name in names:
        ir = build_element_ir(program.elements[name])
        analyze_element(ir, registry)
        irs.append(ir)
    return irs


@pytest.fixture
def registry():
    return FunctionRegistry()


@pytest.fixture
def paper_chain(registry):
    return build_chain(PAPER_CHAIN, registry)


def corrupt_first_projection(ir, registry):
    """Rewrite the first Project item of the request handler to a bogus
    constant — a model miscompile that type-checks but changes values."""
    handler = ir.handlers["request"]
    statements = []
    changed = False
    for stmt in handler.statements:
        ops = []
        for op in stmt.ops:
            if isinstance(op, Project) and op.items and not changed:
                items = list(op.items)
                alias, old = items[0]
                items[0] = (alias, Literal(value=12345, span=old.span))
                op = dataclasses.replace(op, items=tuple(items))
                changed = True
            ops.append(op)
        statements.append(StatementIR(ops=tuple(ops), span=stmt.span))
    handlers = dict(ir.handlers)
    handlers["request"] = HandlerIR(
        kind="request", statements=tuple(statements)
    )
    mutated = dataclasses.replace(ir, handlers=handlers)
    analyze_element(mutated, registry)
    return mutated


class MutantPass(Pass):
    """A registered pass that silently miscompiles the first element."""

    name = "mutant"
    level = "chain"

    def enabled(self, options):
        return True

    def run(self, state, context):
        state.elements[0] = corrupt_first_projection(
            state.elements[0], context.registry
        )
        return PassOutcome(rewrites=1)


class TestValidateRewrite:
    def test_identical_chains_validate_structurally(
        self, paper_chain, registry
    ):
        verdict = validate_rewrite(
            paper_chain, list(paper_chain), SCHEMA, registry
        )
        assert verdict.ok is True
        assert any("structurally identical" in n for n in verdict.notes)

    def test_mutant_rewrite_rejected_with_span(self, paper_chain, registry):
        mutated = [
            corrupt_first_projection(paper_chain[0], registry)
        ] + paper_chain[1:]
        verdict = validate_rewrite(
            paper_chain, mutated, SCHEMA, registry, pass_name="mutant"
        )
        assert verdict.ok is False
        assert verdict.counterexample
        assert verdict.span is not None
        assert verdict.span.line > 0

    def test_no_schema_yields_unknown_verdict(self, paper_chain, registry):
        mutated = [
            corrupt_first_projection(paper_chain[0], registry)
        ] + paper_chain[1:]
        verdict = validate_rewrite(paper_chain, mutated, None, registry)
        assert verdict.ok is None

    def test_illegal_swap_rejected_by_certificate(
        self, paper_chain, registry
    ):
        # Acl drops RPCs, Logging records them: swapping changes what is
        # logged, and dependency analysis knows they do not commute.
        swapped = [paper_chain[1], paper_chain[0], paper_chain[2]]
        verdict = validate_rewrite(
            paper_chain, swapped, SCHEMA, registry, pass_name="reorder"
        )
        assert verdict.ok is False
        assert "commute" in verdict.counterexample

    def test_bogus_stages_rejected(self, paper_chain, registry):
        verdict = validate_rewrite(
            paper_chain,
            list(paper_chain),
            SCHEMA,
            registry,
            stages=(("Acl",), ("Logging", "Fault")),
        )
        assert verdict.ok is False
        assert "partition" in verdict.counterexample


class TestInversions:
    def test_detects_flipped_pairs(self):
        assert inversions(["a", "b", "c"], ["b", "a", "c"]) == [("a", "b")]

    def test_ignores_fused_away_names(self):
        # fusion replaces members with a combined element; absent names
        # must not read as order violations
        assert inversions(["a", "b", "c"], ["a", "b__c"]) == []

    def test_identity_has_no_inversions(self):
        assert inversions(["a", "b"], ["a", "b"]) == []


class TestPassManagerVerify:
    def test_all_passes_validated_on_paper_chain(self, paper_chain, registry):
        context = ChainContext(registry=registry, schema=SCHEMA)
        options = OptimizerOptions(fusion=True, verify=True)
        chain = optimize_chain(paper_chain, context, options)
        ran = [r for r in chain.pass_reports if not r.skipped]
        assert len(ran) == 6
        for report in ran:
            assert report.validated is True, (
                f"{report.name}: {report.counterexample}"
            )
            assert report.verify_ms >= 0.0

    def test_verify_off_leaves_reports_unvalidated(
        self, paper_chain, registry
    ):
        context = ChainContext(registry=registry, schema=SCHEMA)
        chain = optimize_chain(paper_chain, context, OptimizerOptions())
        assert all(r.validated is None for r in chain.pass_reports)

    def test_mutant_pass_flagged_in_report(self, paper_chain, registry):
        manager = PassManager(passes=default_pipeline() + [MutantPass()])
        context = ChainContext(registry=registry, schema=SCHEMA)
        options = OptimizerOptions(verify=True)
        chain = optimize_chain(
            paper_chain, context, options, manager=manager
        )
        by_name = {r.name: r for r in chain.pass_reports}
        assert by_name["mutant"].validated is False
        assert by_name["mutant"].counterexample
        assert by_name["mutant"].counterexample_span is not None
        assert any(
            "VALIDATION FAILED" in note for note in by_name["mutant"].notes
        )

    def test_report_table_gains_verified_column(self, paper_chain, registry):
        context = ChainContext(registry=registry, schema=SCHEMA)
        chain = optimize_chain(
            paper_chain, context, OptimizerOptions(verify=True)
        )
        table = format_report_table(chain.pass_reports)
        assert "verified" in table
        assert "ok (" in table
        plain = optimize_chain(
            build_chain(PAPER_CHAIN, registry), context, OptimizerOptions()
        )
        assert "verified" not in format_report_table(plain.pass_reports)


class TestCompilerRefusal:
    def test_failed_validation_blocks_artifacts(self, registry, monkeypatch):
        import repro.ir.optimizer as optimizer_module

        monkeypatch.setattr(
            optimizer_module,
            "PassManager",
            lambda: PassManager(passes=default_pipeline() + [MutantPass()]),
        )
        compiler = AdnCompiler(
            registry=registry, options=OptimizerOptions(verify=True)
        )
        program = load_stdlib(schema=SCHEMA)
        from repro.dsl.ast_nodes import ChainDecl

        with pytest.raises(TranslationValidationError) as excinfo:
            compiler.compile_chain(
                ChainDecl(src="A", dst="B", elements=PAPER_CHAIN),
                program,
                SCHEMA,
            )
        error = excinfo.value
        assert error.pass_name == "mutant"
        assert error.counterexample
        assert error.span is not None
        assert compiler.cache_stats.lookups == 0  # nothing emitted/cached

    def test_verify_off_compiles_same_chain(self, registry):
        compiler = AdnCompiler(registry=registry)
        program = load_stdlib(schema=SCHEMA)
        from repro.dsl.ast_nodes import ChainDecl

        chain = compiler.compile_chain(
            ChainDecl(src="A", dst="B", elements=PAPER_CHAIN),
            program,
            SCHEMA,
        )
        assert set(chain.elements) == set(PAPER_CHAIN)


class TestCliVerify:
    def test_verify_green_on_examples(self, capsys):
        assert main(["compile", "--verify", "examples/explain_demo.adn"]) == 0
        out = capsys.readouterr().out
        assert "verified" in out
        assert "FAILED" not in out

    def test_verify_reports_replayed_messages(self, capsys):
        assert (
            main(["compile", "--verify", "examples/typecheck_demo.adn"]) == 0
        )
        out = capsys.readouterr().out
        assert "replayed" in out
        assert "identical" in out
