"""Optimization pass unit tests: constant folding, predicate pushdown,
reordering, parallel staging."""

import pytest

from repro.dsl import FieldType, RpcSchema, load_stdlib
from repro.dsl.ast_nodes import BinaryOp, CaseExpr, ColumnRef, FuncCall, Literal
from repro.dsl.parser import Parser, parse_element
from repro.dsl.validator import validate_element
from repro.ir.analysis import analyze_element
from repro.ir.builder import build_element_ir
from repro.ir.interp import ElementInstance
from repro.ir.nodes import FilterRows, JoinState, Scan
from repro.ir.passes import (
    fold_constants_element,
    fold_expr,
    parallel_stages,
    pushdown_element,
    reorder_for_early_drop,
)

from conftest import make_rpc


def expr(text):
    return Parser(text).parse_expr()


class TestConstantFolding:
    def test_arithmetic(self):
        assert fold_expr(expr("1 + 2 * 3")) == Literal(7)

    def test_comparison(self):
        assert fold_expr(expr("2 > 1")) == Literal(True)

    def test_boolean_identities(self):
        assert fold_expr(expr("x == 1 and true")) == fold_expr(expr("x == 1"))
        assert fold_expr(expr("x == 1 or true")) == Literal(True)
        assert fold_expr(expr("x == 1 and false")) == Literal(False)

    def test_pure_function_folded(self):
        folded = fold_expr(expr("max(2, 3)"))
        assert folded == Literal(3)

    def test_nondeterministic_not_folded(self):
        folded = fold_expr(expr("rand() >= 0.02"))
        assert isinstance(folded, BinaryOp)

    def test_hash_folded(self):
        folded = fold_expr(expr("hash('k') % 4"))
        assert isinstance(folded, Literal)
        assert 0 <= folded.value < 4

    def test_case_dead_branch_pruned(self):
        folded = fold_expr(expr("CASE WHEN 1 > 2 THEN 'a' ELSE 'b' END"))
        assert folded == Literal("b")

    def test_case_statically_taken(self):
        folded = fold_expr(expr("CASE WHEN 2 > 1 THEN 'a' ELSE 'b' END"))
        assert folded == Literal("a")

    def test_division_by_zero_left_alone(self):
        folded = fold_expr(expr("1 / 0"))
        assert isinstance(folded, BinaryOp)  # fold failure is not an error

    def test_column_refs_untouched(self):
        folded = fold_expr(expr("input.a + 0 * 3"))
        assert isinstance(folded, BinaryOp)
        assert folded.right == Literal(0)

    def test_fold_element_removes_true_filter(self):
        element = validate_element(
            parse_element(
                "element E { on request { SELECT * FROM input WHERE 1 < 2; } }"
            )
        )
        ir = fold_constants_element(build_element_ir(element))
        ops = ir.handlers["request"].statements[0].ops
        assert not any(isinstance(op, FilterRows) for op in ops)

    def test_folded_element_behaves_identically(self):
        source = """
        element E {
            on request {
                SELECT input.*, (2 + 3) * input.a AS scaled FROM input
                WHERE input.a > 1 * 0;
            }
        }
        """
        element = validate_element(parse_element(source))
        plain_ir = build_element_ir(element)
        folded_ir = fold_constants_element(build_element_ir(element))
        analyze_element(plain_ir)
        analyze_element(folded_ir)
        rpc = make_rpc(a=4) if False else dict(make_rpc(), a=4)
        plain_out = ElementInstance(plain_ir).process(dict(rpc), "request")
        folded_out = ElementInstance(folded_ir).process(dict(rpc), "request")
        assert plain_out == folded_out
        assert folded_out[0]["scaled"] == 20


class TestPredicatePushdown:
    SOURCE = """
    element E {
        state t (k: int KEY, v: int);
        init { INSERT INTO t VALUES (5, 50); }
        on request {
            SELECT input.* FROM input JOIN t ON t.k == input.a
            WHERE input.b > 0 AND t.v > 10;
        }
    }
    """

    def test_input_conjunct_moves_before_join(self):
        element = validate_element(parse_element(self.SOURCE))
        ir = pushdown_element(build_element_ir(element))
        ops = ir.handlers["request"].statements[0].ops
        kinds = [type(op) for op in ops]
        # Scan, early Filter, Join, late Filter, ...
        assert kinds[0] is Scan
        assert kinds[1] is FilterRows
        assert kinds[2] is JoinState
        assert kinds[3] is FilterRows

    def test_behaviour_preserved(self):
        element = validate_element(parse_element(self.SOURCE))
        plain_ir = build_element_ir(element)
        pushed_ir = pushdown_element(build_element_ir(element))
        analyze_element(plain_ir)
        analyze_element(pushed_ir)
        for a, b in [(5, 1), (5, -1), (9, 1)]:
            rpc = dict(make_rpc(), a=a, b=b)
            plain = ElementInstance(plain_ir).process(dict(rpc), "request")
            pushed = ElementInstance(pushed_ir).process(dict(rpc), "request")
            plain = [
                {k: v for k, v in r.items() if isinstance(k, str)} for r in plain
            ]
            pushed = [
                {k: v for k, v in r.items() if isinstance(k, str)} for r in pushed
            ]
            assert plain == pushed, (a, b)

    def test_no_join_untouched(self):
        element = validate_element(
            parse_element(
                "element E { on request { SELECT * FROM input WHERE input.a > 0; } }"
            )
        )
        ir = build_element_ir(element)
        assert pushdown_element(ir).handlers["request"] == ir.handlers["request"]


@pytest.fixture(scope="module")
def stdlib_analyses():
    schema = RpcSchema.of(
        "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
    )
    program = load_stdlib(schema=schema)
    result = {}
    for name, element in program.elements.items():
        result[name] = analyze_element(build_element_ir(element))
    return result


class TestReorder:
    def test_droppers_bubble_forward(self, stdlib_analyses):
        order, changed = reorder_for_early_drop(
            ["Compression", "Acl"], stdlib_analyses
        )
        assert changed
        assert order == ["Acl", "Compression"]

    def test_effectful_barrier_respected(self, stdlib_analyses):
        order, changed = reorder_for_early_drop(
            ["Logging", "Acl"], stdlib_analyses
        )
        assert order == ["Logging", "Acl"]
        assert not changed

    def test_pinned_pair_not_swapped(self, stdlib_analyses):
        order, _changed = reorder_for_early_drop(
            ["Compression", "Acl"],
            stdlib_analyses,
            pinned_pairs=[("Compression", "Acl")],
        )
        assert order == ["Compression", "Acl"]

    def test_stable_when_already_sorted(self, stdlib_analyses):
        order, changed = reorder_for_early_drop(
            ["Acl", "Fault", "Compression"], stdlib_analyses
        )
        assert not changed or order[0] in ("Acl", "Fault")

    def test_result_reachable_by_legal_swaps(self, stdlib_analyses):
        from repro.ir.dependency import ordering_violations

        original = ["LbKeyHash", "Compression", "AccessControl", "Encryption"]
        order, _ = reorder_for_early_drop(original, stdlib_analyses)
        assert ordering_violations(order, original, stdlib_analyses) == []


class TestParallelStages:
    def test_independent_droppers_grouped(self, stdlib_analyses):
        stages = parallel_stages(["Acl", "Fault"], stdlib_analyses)
        assert stages == (("Acl", "Fault"),)

    def test_conflicting_pair_split(self, stdlib_analyses):
        stages = parallel_stages(
            ["Compression", "Decompression"], stdlib_analyses
        )
        assert stages == (("Compression",), ("Decompression",))

    def test_singleton(self, stdlib_analyses):
        assert parallel_stages(["Logging"], stdlib_analyses) == (("Logging",),)

    def test_stage_order_preserves_chain_order(self, stdlib_analyses):
        order = ["Logging", "Acl", "Fault"]
        stages = parallel_stages(order, stdlib_analyses)
        flattened = [name for stage in stages for name in stage]
        assert flattened == order
