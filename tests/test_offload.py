"""Offload substrate tests: device capacity model, split-chain
compilation (empty / partial / whole-chain / fused-straddle /
capacity-overflow splits), the nic backend, graph-edge offload wiring,
NIC shed economics, ADN406 on both front ends, and the CLI."""

import json

import pytest

from repro.compiler.backends import NicBackend, make_backends
from repro.compiler.compiler import AdnCompiler
from repro.dsl import (
    DEFAULT_REGISTRY,
    FieldType,
    FunctionRegistry,
    RpcSchema,
    load_stdlib,
    parse,
)
from repro.dsl.ast_nodes import ChainDecl
from repro.dsl.parser import parse_element
from repro.dsl.validator import validate_element, validate_program
from repro.errors import GraphError
from repro.ir.analysis import analyze_element
from repro.ir.builder import build_element_ir
from repro.ir.optimizer import OptimizerOptions
from repro.offload import (
    DEVICE_PROFILES,
    chain_table_bytes,
    check_capacity,
    device_profile_for,
    element_table_bytes,
    solve_offload_plan,
    split_chain,
)
from repro.offload.device import (
    DEFAULT_TABLE_ENTRIES,
    RINGBUF_BYTES,
    element_registers,
)
from repro.platforms import Platform
from repro.runtime.processor import SWITCH_LOCATION

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)

#: ebpf-subset-legal element whose single keyed table (10M rows x 40 B)
#: overflows every device profile but fits host memory fine
BIG_TABLE_SRC = """
element BigTable {
    state seen (username: str KEY, hits: int);
    meta { table_entries: 10000000; }
    on request {
        UPDATE seen SET hits = 1 WHERE username == input.username;
        SELECT * FROM input;
    }
}
"""


@pytest.fixture(scope="module")
def program():
    return load_stdlib(schema=SCHEMA)


@pytest.fixture(scope="module")
def big_program():
    merged = load_stdlib(schema=SCHEMA).merged(parse(BIG_TABLE_SRC))
    return validate_program(merged, schema=SCHEMA)


@pytest.fixture(scope="module")
def compiler():
    return AdnCompiler(registry=FunctionRegistry())


def compile_chain(compiler, program, elements):
    return compiler.compile_chain(
        ChainDecl(src="A", dst="B", elements=tuple(elements)),
        program,
        SCHEMA,
    )


def ir_of(program, name):
    ir = build_element_ir(program.elements[name])
    analyze_element(ir, DEFAULT_REGISTRY)
    return ir


def custom_ir(source):
    ir = build_element_ir(validate_element(parse_element(source)))
    analyze_element(ir, DEFAULT_REGISTRY)
    return ir


class TestDeviceModel:
    def test_profiles_cover_hardware_and_kernel(self):
        assert set(DEVICE_PROFILES) == {
            Platform.SMARTNIC,
            Platform.SWITCH_P4,
            Platform.KERNEL_EBPF,
        }
        nic = DEVICE_PROFILES[Platform.SMARTNIC]
        kernel = DEVICE_PROFILES[Platform.KERNEL_EBPF]
        # the PR's de-conflation: the kernel's eBPF is not the NIC's —
        # same instruction subset, very different capacity envelope
        assert kernel.table_bytes > nic.table_bytes
        assert kernel.registers > nic.registers
        assert kernel.pipeline_stages > nic.pipeline_stages

    def test_device_profile_for_software_is_none(self):
        assert device_profile_for(Platform.MRPC) is None
        assert device_profile_for(Platform.RPC_LIB) is None

    def test_platform_capabilities_property(self):
        assert (
            Platform.SMARTNIC.capabilities
            is DEVICE_PROFILES[Platform.SMARTNIC]
        )
        assert (
            Platform.SWITCH_P4.capabilities
            is DEVICE_PROFILES[Platform.SWITCH_P4]
        )

    def test_recirculations(self):
        nic = DEVICE_PROFILES[Platform.SMARTNIC]
        assert nic.recirculations(0) == 0
        assert nic.recirculations(nic.pipeline_stages) == 0
        assert nic.recirculations(nic.pipeline_stages + 1) == 1
        assert nic.recirculations(2 * nic.pipeline_stages + 1) == 2

    def test_keyed_table_estimate(self, program):
        # Acl: ac_tab(username str KEY, permission str) = 64 B rows
        ir = ir_of(program, "Acl")
        assert element_table_bytes(ir) == DEFAULT_TABLE_ENTRIES * (32 + 32)

    def test_table_entries_meta_overrides_estimate(self):
        small = custom_ir(
            """
element Tiny {
    state seen (username: str KEY, hits: int);
    meta { table_entries: 100; }
    on request {
        UPDATE seen SET hits = 1 WHERE username == input.username;
        SELECT * FROM input;
    }
}
"""
        )
        assert element_table_bytes(small) == 100 * (32 + 8)

    def test_append_table_costs_one_ringbuf(self, program):
        # Logging's audit log is append-only: ring buffer, not a map
        ir = ir_of(program, "Logging")
        assert element_table_bytes(ir) == RINGBUF_BYTES

    def test_register_estimate_counts_vars(self, program):
        assert element_registers(ir_of(program, "Acl")) == len(
            ir_of(program, "Acl").vars
        )

    def test_check_capacity_reports_violations(self):
        big = custom_ir(BIG_TABLE_SRC)
        report = check_capacity(DEVICE_PROFILES[Platform.SMARTNIC], [big])
        assert not report.fits
        assert report.table_bytes == chain_table_bytes([big])
        assert any("table" in v for v in report.violations)

    def test_check_capacity_fits(self, program):
        report = check_capacity(
            DEVICE_PROFILES[Platform.SMARTNIC], [ir_of(program, "Acl")]
        )
        assert report.fits and not report.violations


class TestNicBackend:
    def test_backend_registered(self):
        backends = make_backends(DEFAULT_REGISTRY)
        assert isinstance(backends["nic"], NicBackend)

    def test_smartnic_maps_to_nic_backend(self):
        assert Platform.SMARTNIC.backend_name == "nic"
        assert Platform.KERNEL_EBPF.backend_name == "ebpf"

    def test_capacity_folds_into_legality(self):
        big = custom_ir(BIG_TABLE_SRC)
        backends = make_backends(DEFAULT_REGISTRY)
        # legal for the kernel's eBPF, too big for the NIC's
        assert backends["ebpf"].check(big).legal
        report = backends["nic"].check(big)
        assert not report.legal
        assert any("device capacity" in v for v in report.violations)

    def test_emit_labels_smartnic(self, program):
        backends = make_backends(DEFAULT_REGISTRY)
        artifact = backends["nic"].emit(ir_of(program, "Acl"))
        assert artifact.backend == "nic"
        assert "SmartNIC" in artifact.source.splitlines()[0]


class TestSplitChain:
    def test_whole_chain_offload(self, compiler, program):
        chain = compile_chain(compiler, program, ("Acl", "Logging"))
        decision = split_chain(chain, SCHEMA, "nic")
        assert decision.prefix == ("Acl", "Logging")
        assert decision.suffix == ()
        assert decision.boundary_reason == ""
        assert decision.offloaded
        assert decision.verdict is not None
        assert decision.verdict.ok is not False

    def test_partial_prefix_stops_at_payload_element(
        self, compiler, program
    ):
        chain = compile_chain(
            compiler, program, ("Acl", "Logging", "Compression")
        )
        decision = split_chain(chain, SCHEMA, "nic")
        assert decision.prefix == ("Acl", "Logging")
        assert decision.suffix == ("Compression",)
        assert "Compression" in decision.boundary_reason

    def test_empty_prefix_stays_on_host(self, compiler, program):
        # payload-bound from element one: nothing the NIC can take
        chain = compile_chain(compiler, program, ("Compression",))
        decision = split_chain(chain, SCHEMA, "nic")
        assert decision.prefix == ()
        assert not decision.offloaded
        assert decision.verdict is None  # nothing to validate
        assert decision.suffix == tuple(chain.element_order)

    def test_fused_element_straddling_boundary_is_refused_whole(
        self, program
    ):
        fusing = AdnCompiler(
            registry=FunctionRegistry(),
            options=OptimizerOptions(fusion=True),
        )
        # without fusion this chain offloads whole (see
        # test_whole_chain_offload); fused it must stay on the host
        chain = compile_chain(fusing, program, ("Acl", "Logging"))
        (fused_name,) = chain.element_order
        assert "fused_from" in chain.elements[fused_name].ir.meta
        decision = split_chain(chain, SCHEMA, "nic")
        # the fused group contains only NIC-legal members, but backends
        # keep hardware programs per-element: the fusion pins the whole
        # group to the host rather than splitting it open
        assert decision.prefix == ()
        assert "fused element straddles the split boundary" in (
            decision.boundary_reason
        )

    def test_capacity_overflow_emits_adn406_and_falls_back(
        self, compiler, big_program
    ):
        chain = compile_chain(compiler, big_program, ("Acl", "BigTable"))
        decision = split_chain(chain, SCHEMA, "nic", path="<test>")
        assert decision.prefix == ("Acl",)
        assert decision.suffix == ("BigTable",)
        (diag,) = decision.diagnostics
        assert diag.code == "ADN406"
        assert diag.path == "<test>"
        assert "falling back to host placement" in diag.message

    def test_switch_tier_uses_p4_rules(self, compiler, program):
        chain = compile_chain(compiler, program, ("Acl", "Compression"))
        decision = split_chain(chain, SCHEMA, "switch")
        assert decision.platform is Platform.SWITCH_P4
        assert decision.prefix == ("Acl",)

    def test_unknown_tier_raises(self, compiler, program):
        chain = compile_chain(compiler, program, ("Acl",))
        with pytest.raises(ValueError):
            split_chain(chain, SCHEMA, "fpga")

    def test_decision_to_dict_is_json_clean(self, compiler, program):
        chain = compile_chain(compiler, program, ("Acl", "Compression"))
        decision = split_chain(chain, SCHEMA, "nic")
        payload = json.loads(json.dumps(decision.to_dict()))
        assert payload["prefix"] == ["Acl"]
        assert payload["tier"] == "nic"


class TestSolveOffloadPlan:
    def test_nic_plan_prefix_rides_server_machine(
        self, compiler, program
    ):
        chain = compile_chain(
            compiler, program, ("Acl", "Logging", "Compression")
        )
        plan, decision = solve_offload_plan(
            chain, SCHEMA, "nic", server_machine="node-7"
        )
        nic_segment, host_segment = plan.segments
        assert nic_segment.platform is Platform.SMARTNIC
        assert nic_segment.machine == "node-7"
        assert nic_segment.elements == ("Acl", "Logging")
        assert host_segment.platform is Platform.MRPC
        assert host_segment.machine == "node-7"
        assert host_segment.elements == ("Compression",)
        assert "prefix=2" in plan.description

    def test_switch_plan_runs_on_the_switch(self, compiler, program):
        chain = compile_chain(compiler, program, ("Acl",))
        plan, _ = solve_offload_plan(chain, SCHEMA, "switch")
        assert plan.segments[0].machine == SWITCH_LOCATION

    def test_host_fallback_is_a_plain_mrpc_plan(self, compiler, program):
        chain = compile_chain(compiler, program, ("Compression",))
        plan, decision = solve_offload_plan(chain, SCHEMA, "nic")
        assert not decision.offloaded
        (segment,) = plan.segments
        assert segment.platform is Platform.MRPC
        assert "host-fallback" in plan.description


class TestGraphOffload:
    def _graph(self, offload="nic", elements=("Acl", "Compression")):
        from repro.graph.model import GraphBuilder

        return (
            GraphBuilder("g")
            .service("a", machine="m0")
            .service("b", machine="m1")
            .edge("a", "b", elements=elements, offload=offload)
            .build()
        )

    def test_edge_offload_round_trips_through_dict(self):
        graph = self._graph()
        clone = type(graph).from_dict(graph.to_dict())
        assert clone.edge("a", "b").offload == "nic"
        plain = self._graph(offload=None)
        assert (
            type(plain).from_dict(plain.to_dict()).edge("a", "b").offload
            is None
        )

    def test_invalid_offload_tier_rejected(self):
        with pytest.raises(GraphError):
            self._graph(offload="fpga")

    def test_placement_produces_smartnic_segment(self, program):
        from repro.graph.placement import MachineSpec, solve_graph_placement

        graph = self._graph()
        placement = solve_graph_placement(
            graph,
            program,
            SCHEMA,
            machines=[MachineSpec("m0"), MachineSpec("m1")],
        )
        plan = placement.edge_plans[("a", "b")]
        assert plan.segments[0].platform is Platform.SMARTNIC
        assert plan.segments[0].machine == "m1"
        decision = placement.edge_offloads[("a", "b")]
        assert decision.prefix == ("Acl",)

    def test_cluster_provisions_the_nic(self, program):
        from repro.graph.placement import MachineSpec, solve_graph_placement
        from repro.graph.runtime import build_graph_cluster
        from repro.sim import Simulator

        placement = solve_graph_placement(
            self._graph(),
            program,
            SCHEMA,
            machines=[MachineSpec("m0"), MachineSpec("m1")],
        )
        cluster = build_graph_cluster(Simulator(), placement)
        assert cluster.machine("m1").smartnic_cores is not None
        assert cluster.machine("m0").smartnic_cores is None

    def test_overflowing_edge_falls_back_with_diagnostic(
        self, big_program
    ):
        from repro.graph.placement import MachineSpec, solve_graph_placement

        graph = self._graph(elements=("BigTable", "Acl"))
        placement = solve_graph_placement(
            graph,
            big_program,
            SCHEMA,
            machines=[MachineSpec("m0"), MachineSpec("m1")],
        )
        assert any(d.code == "ADN406" for d in placement.diagnostics)
        plan = placement.edge_plans[("a", "b")]
        assert all(
            segment.platform is not Platform.SMARTNIC
            for segment in plan.segments
        )


class TestNicShedEconomics:
    """The tentpole's point, in one RPC: work refused by the NIC never
    costs the host anything."""

    def _run_one(self, username):
        from repro.offload.sweep import build_offload_mesh
        from repro.runtime.message import reset_rpc_ids
        from repro.sim import Simulator

        reset_rpc_ids()
        sim = Simulator()
        runtime = build_offload_mesh(sim, "nic")
        holder = {}

        def driver():
            outcome = yield sim.process(
                runtime.entry_call(
                    payload=b"x", username=username, obj_id=1
                )
            )
            holder["outcome"] = outcome

        sim.process(driver())
        sim.run()
        server = runtime.cluster.machine("server-host")
        return holder["outcome"], server

    def test_nic_denial_burns_zero_host_cpu(self):
        # usr1 lacks write permission: the NIC-resident Acl aborts the
        # RPC before the host engine ever wakes up
        outcome, server = self._run_one("usr1")
        assert not outcome.ok
        assert server.cpu_busy_s() == 0.0
        assert server.smartnic_cores.busy_time > 0.0

    def test_admitted_rpc_still_reaches_the_host(self):
        outcome, server = self._run_one("usr2")
        assert outcome.ok
        assert server.cpu_busy_s() > 0.0


class TestOffloadLint:
    def test_dsl_rule_fires_only_with_hardware(self):
        from repro.control.placement import ClusterSpec
        from repro.lint import LintOptions, lint_source

        source = BIG_TABLE_SRC + """
app Offloaded {
    service A; service B;
    chain A -> B { BigTable }
}
"""
        nic_cluster = ClusterSpec(smartnics=True)
        with_nic = lint_source(
            source,
            options=LintOptions(schema=SCHEMA, cluster=nic_cluster),
        )
        found = [
            d for d in with_nic.diagnostics if d.code == "ADN406"
        ]
        assert found and "smartnic" in found[0].message
        without = lint_source(
            source, options=LintOptions(schema=SCHEMA)
        )
        assert not any(
            d.code == "ADN406" for d in without.diagnostics
        )

    def test_explain_has_adn406(self):
        from repro.lint.explain import explain_rule

        text = explain_rule("ADN406")
        assert text is not None and "table_entries" in text

    def test_spec_side_check_reuses_solver_diagnostics(
        self, big_program
    ):
        from repro.graph.lint import check_offload_capacity
        from repro.graph.model import GraphBuilder

        graph = (
            GraphBuilder("g")
            .edge("a", "b", elements=("Acl", "BigTable"), offload="nic")
            .build()
        )
        diags = check_offload_capacity(
            graph, big_program, SCHEMA, path="<spec>"
        )
        assert [d.code for d in diags] == ["ADN406"]
        assert diags[0].path.startswith("<spec>")
        fitting = (
            GraphBuilder("g2")
            .edge("a", "b", elements=("Acl",), offload="nic")
            .build()
        )
        assert (
            check_offload_capacity(fitting, big_program, SCHEMA) == []
        )

    def test_table_entries_is_a_known_meta_key(self):
        # validated at parse time, so the ADN406 estimate is never fed
        # by a typo'd key silently defaulting
        validate_element(
            parse_element(
                """
element M {
    state t (k: str KEY, v: int);
    meta { table_entries: 10; }
    on request { SELECT * FROM input; }
}
"""
            )
        )


class TestOffloadCli:
    def test_offload_command_writes_stable_json(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "offload.json"
        code = main(
            [
                "offload",
                "--duration",
                "0.02",
                "--multipliers",
                "3.0",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        text = capsys.readouterr().out
        assert "shed at nic" in text
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "offload"
        assert payload["schema_version"] == 1
        assert set(payload["results"]) == {"server", "nic"}
        point = payload["results"]["nic"][0]
        assert point["offloaded_prefix"] == ["Acl", "Logging"]
        assert point["multiplier"] == 3.0

    def test_overload_json_flag(self, tmp_path, capsys):
        from repro.cli import main

        out = tmp_path / "overload.json"
        code = main(
            [
                "overload",
                "--duration",
                "0.02",
                "--multipliers",
                "0.5,1.0",
                "--json",
                str(out),
            ]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "overload"
        assert payload["schema_version"] == 1
        assert {"baseline", "protected"} == set(payload["results"])

    def test_faults_json_flag(self, tmp_path):
        from repro.cli import main

        out = tmp_path / "faults.json"
        code = main(["faults", "--rpcs", "400", "--json", str(out)])
        assert code == 0
        payload = json.loads(out.read_text())
        assert payload["benchmark"] == "faults"
        assert payload["results"]["recovery"] is not None
        assert payload["results"]["issued"] >= 400

    def test_compile_emits_nic_source(self, tmp_path, capsys):
        from repro.cli import main

        empty = tmp_path / "empty.adn"
        empty.write_text("")
        code = main(
            [
                "compile",
                str(empty),
                "--element",
                "Acl",
                "--emit",
                "nic",
            ]
        )
        assert code == 0
        assert "SmartNIC" in capsys.readouterr().out
