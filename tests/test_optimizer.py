"""Chain optimizer tests."""

import pytest

from repro.dsl import FieldType, RpcSchema, load_stdlib
from repro.ir.builder import build_element_ir
from repro.ir.dependency import ordering_violations
from repro.ir.optimizer import (
    ChainContext,
    OptimizerOptions,
    optimize_chain,
    optimize_element,
)


@pytest.fixture(scope="module")
def schema():
    return RpcSchema.of(
        "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
    )


@pytest.fixture(scope="module")
def program(schema):
    return load_stdlib(schema=schema)


def irs(program, *names):
    return [build_element_ir(program.elements[name]) for name in names]


class TestOptimizeElement:
    def test_attaches_analysis(self, program):
        ir = optimize_element(irs(program, "Acl")[0])
        assert ir.analysis is not None

    def test_options_disable_passes(self, program):
        options = OptimizerOptions(
            constant_folding=False, predicate_pushdown=False
        )
        ir = optimize_element(irs(program, "Acl")[0], options)
        assert ir.analysis is not None


class TestOptimizeChain:
    def test_paper_chain_shape(self, program):
        chain = optimize_chain(irs(program, "Logging", "Acl", "Fault"))
        # Logging stays first (effect barrier); Fault and Acl form a
        # parallel dropper stage
        assert chain.element_names[0] == "Logging"
        assert set(chain.stages[-1]) == {"Acl", "Fault"}

    def test_reorder_is_legal(self, program):
        original = ["LbKeyHash", "Compression", "Decompression", "AccessControl"]
        chain = optimize_chain(irs(program, *original))
        analyses = {e.name: e.analysis for e in chain.elements}
        assert (
            ordering_violations(list(chain.element_names), original, analyses)
            == []
        )

    def test_access_control_hoisted(self, program):
        chain = optimize_chain(
            irs(program, "LbKeyHash", "Compression", "AccessControl")
        )
        assert chain.element_names[0] == "AccessControl"
        assert chain.reordered

    def test_pinned_pairs_respected(self, program):
        context = ChainContext(
            pinned_pairs=(("Compression", "AccessControl"),)
        )
        chain = optimize_chain(
            irs(program, "Compression", "AccessControl"), context
        )
        assert chain.element_names == ("Compression", "AccessControl")

    def test_no_reorder_option(self, program):
        options = OptimizerOptions(reorder=False)
        chain = optimize_chain(
            irs(program, "Compression", "AccessControl"), options=options
        )
        assert chain.element_names == ("Compression", "AccessControl")
        assert not chain.reordered

    def test_no_parallel_option(self, program):
        options = OptimizerOptions(parallelize=False, reorder=False)
        chain = optimize_chain(irs(program, "Acl", "Fault"), options=options)
        assert chain.stages == (("Acl",), ("Fault",))

    def test_stages_cover_all_elements_exactly_once(self, program):
        chain = optimize_chain(
            irs(program, "Logging", "Acl", "Fault", "Metrics", "LbKeyHash")
        )
        flattened = [name for stage in chain.stages for name in stage]
        assert sorted(flattened) == sorted(chain.element_names)

    def test_chain_context_metadata(self, program):
        context = ChainContext(app="Shop", src="front", dst="cart")
        chain = optimize_chain(irs(program, "Acl"), context)
        assert (chain.app, chain.src, chain.dst) == ("Shop", "front", "cart")

    def test_element_lookup(self, program):
        chain = optimize_chain(irs(program, "Acl", "Fault"))
        assert chain.element("Acl").name == "Acl"
        with pytest.raises(KeyError):
            chain.element("Ghost")
