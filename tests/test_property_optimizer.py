"""Property-based tests for the optimizer: every reorder/staging the
chain optimizer produces on a random chain is provably legal, and
constant folding never changes expression values."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.dsl.ast_nodes import BinaryOp, CaseExpr, Literal, UnaryOp
from repro.ir.builder import build_element_ir
from repro.ir.dependency import can_parallelize, ordering_violations
from repro.ir.expr_utils import EvalEnv, evaluate
from repro.ir.optimizer import optimize_chain
from repro.ir.passes import fold_expr

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)
PROGRAM = load_stdlib(schema=SCHEMA)

#: elements safe to combine arbitrarily (no payload-format coupling like
#: Compression→Decompression, which is order-sensitive by design)
POOL = [
    "Logging",
    "Acl",
    "Fault",
    "LbKeyHash",
    "Compression",
    "Metrics",
    "RateLimit",
    "Admission",
    "Mirror",
    "Encryption",
    "Router",
]

chains = st.lists(st.sampled_from(POOL), min_size=1, max_size=6, unique=True)


class TestChainOptimizerProperties:
    @given(names=chains)
    @settings(max_examples=60, deadline=None)
    def test_reorder_always_legal(self, names):
        chain = optimize_chain(
            [build_element_ir(PROGRAM.elements[n]) for n in names]
        )
        analyses = {e.name: e.analysis for e in chain.elements}
        assert (
            ordering_violations(list(chain.element_names), list(names), analyses)
            == []
        )

    @given(names=chains)
    @settings(max_examples=60, deadline=None)
    def test_stages_partition_the_chain(self, names):
        chain = optimize_chain(
            [build_element_ir(PROGRAM.elements[n]) for n in names]
        )
        flattened = [name for stage in chain.stages for name in stage]
        assert flattened == list(chain.element_names)

    @given(names=chains)
    @settings(max_examples=60, deadline=None)
    def test_stage_members_pairwise_parallelizable(self, names):
        chain = optimize_chain(
            [build_element_ir(PROGRAM.elements[n]) for n in names]
        )
        analyses = {e.name: e.analysis for e in chain.elements}
        for stage in chain.stages:
            for i, first in enumerate(stage):
                for second in stage[i + 1 :]:
                    assert can_parallelize(analyses[first], analyses[second])


# -- constant folding: fold(e) evaluates to the same value as e -----------

numeric = st.integers(min_value=-50, max_value=50)


@st.composite
def literal_expressions(draw, depth=0):
    """Random literal-only expressions (no column refs: fully foldable)."""
    if depth >= 3 or draw(st.booleans()):
        kind = draw(st.sampled_from(["int", "float", "bool"]))
        if kind == "int":
            return Literal(draw(numeric))
        if kind == "float":
            return Literal(
                draw(
                    st.floats(
                        min_value=-50,
                        max_value=50,
                        allow_nan=False,
                        allow_infinity=False,
                    )
                )
            )
        return Literal(draw(st.booleans()))
    shape = draw(st.sampled_from(["binary", "unary", "case"]))
    if shape == "binary":
        op = draw(
            st.sampled_from(["+", "-", "*", "==", "!=", "<", "<=", ">", ">=",
                             "and", "or"])
        )
        return BinaryOp(
            op,
            draw(literal_expressions(depth=depth + 1)),
            draw(literal_expressions(depth=depth + 1)),
        )
    if shape == "unary":
        op = draw(st.sampled_from(["-", "not"]))
        inner = draw(literal_expressions(depth=depth + 1))
        if op == "-" and isinstance(inner, Literal) and isinstance(
            inner.value, bool
        ):
            inner = Literal(int(inner.value))
        return UnaryOp(op, inner)
    return CaseExpr(
        whens=(
            (
                draw(literal_expressions(depth=depth + 1)),
                draw(literal_expressions(depth=depth + 1)),
            ),
        ),
        default=draw(literal_expressions(depth=depth + 1)),
    )


class TestFoldingProperties:
    @given(expr=literal_expressions())
    @settings(max_examples=150, deadline=None)
    def test_fold_preserves_value(self, expr):
        registry = FunctionRegistry(rng=random.Random(0))
        env = EvalEnv(row={}, vars={}, registry=registry)

        def evaluate_or_error(expression):
            try:
                return ("ok", evaluate(expression, env))
            except Exception:
                return ("error", None)

        original = evaluate_or_error(expr)
        folded_expr = fold_expr(expr, registry)
        folded = evaluate_or_error(folded_expr)
        if original[0] == "ok":
            assert folded == original

    @given(expr=literal_expressions())
    @settings(max_examples=100, deadline=None)
    def test_fold_idempotent(self, expr):
        registry = FunctionRegistry(rng=random.Random(0))
        once = fold_expr(expr, registry)
        twice = fold_expr(once, registry)
        assert once == twice


class TestElementOptimizationPreservesBehaviour:
    """optimize_element (folding + pushdown) must be observationally
    equivalent to the unoptimized IR on randomized inputs."""

    DET_POOL = ["Acl", "LbKeyHash", "Metrics", "Router", "Admission", "Cache"]

    @given(
        name=st.sampled_from(DET_POOL),
        username=st.text(max_size=10),
        obj_id=st.integers(min_value=0, max_value=2**31),
        payload=st.binary(max_size=64),
        method=st.sampled_from(["get", "put", "admin"]),
    )
    @settings(max_examples=100, deadline=None)
    def test_optimized_equals_plain(
        self, name, username, obj_id, payload, method
    ):
        from repro.dsl import FunctionRegistry
        from repro.ir.interp import ElementInstance
        from repro.ir.optimizer import optimize_element
        from repro.ir.analysis import analyze_element

        registry = FunctionRegistry(rng=random.Random(0))
        plain_ir = build_element_ir(PROGRAM.elements[name])
        analyze_element(plain_ir, registry)
        optimized_ir = optimize_element(
            build_element_ir(PROGRAM.elements[name]), registry=registry
        )
        plain = ElementInstance(plain_ir, registry)
        optimized = ElementInstance(optimized_ir, registry)
        for instance in (plain, optimized):
            if "endpoints" in instance.state.tables:
                instance.state.table("endpoints").insert_values([0, "B.1"])
                instance.state.table("endpoints").insert_values([1, "B.2"])
        rpc = {
            "src": "A.0",
            "dst": "B",
            "rpc_id": 1,
            "method": method,
            "kind": "request",
            "status": "ok",
            "payload": payload,
            "username": username,
            "obj_id": obj_id,
        }

        def strip(rows):
            return [
                {k: v for k, v in row.items() if isinstance(k, str)}
                for row in rows
            ]

        assert strip(plain.process(dict(rpc), "request")) == strip(
            optimized.process(dict(rpc), "request")
        )
