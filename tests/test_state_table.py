"""State table tests: CRUD, schema checking, split/merge, delta logs."""

import pytest

from repro.dsl.ast_nodes import ColumnDef, StateDecl
from repro.dsl.schema import FieldType
from repro.errors import StateError
from repro.state.table import StateStore, StateTable


def keyed_decl():
    return StateDecl(
        name="t",
        columns=(
            ColumnDef("k", FieldType.INT, is_key=True),
            ColumnDef("v", FieldType.STR),
        ),
    )


def bag_decl():
    return StateDecl(
        name="b", columns=(ColumnDef("x", FieldType.INT),), append_only=False
    )


def log_decl():
    return StateDecl(
        name="log", columns=(ColumnDef("x", FieldType.INT),), append_only=True
    )


class TestBasicOps:
    def test_insert_and_get(self):
        table = StateTable(keyed_decl())
        table.insert({"k": 1, "v": "a"})
        assert table.get(1) == {"k": 1, "v": "a"}
        assert table.get(2) is None

    def test_keyed_insert_is_upsert(self):
        table = StateTable(keyed_decl())
        table.insert({"k": 1, "v": "a"})
        table.insert({"k": 1, "v": "b"})
        assert len(table) == 1
        assert table.get(1)["v"] == "b"

    def test_insert_values_positional(self):
        table = StateTable(keyed_decl())
        table.insert_values([1, "a"])
        assert table.get(1)["v"] == "a"

    def test_insert_values_arity(self):
        table = StateTable(keyed_decl())
        with pytest.raises(StateError, match="values"):
            table.insert_values([1])

    def test_schema_field_mismatch(self):
        table = StateTable(keyed_decl())
        with pytest.raises(StateError, match="columns"):
            table.insert({"k": 1, "wrong": "a"})

    def test_schema_type_mismatch(self):
        table = StateTable(keyed_decl())
        with pytest.raises(StateError, match="expects"):
            table.insert({"k": "one", "v": "a"})

    def test_contains_key(self):
        table = StateTable(keyed_decl())
        table.insert({"k": 1, "v": "a"})
        assert table.contains_key(1)
        assert not table.contains_key(2)

    def test_contains_on_bag_rejected(self):
        with pytest.raises(StateError):
            StateTable(bag_decl()).contains_key(1)

    def test_update_where(self):
        table = StateTable(keyed_decl())
        table.insert({"k": 1, "v": "a"})
        table.insert({"k": 2, "v": "b"})
        changed = table.update_where(
            lambda row: row["k"] == 1, lambda row: {"v": "z"}
        )
        assert changed == 1
        assert table.get(1)["v"] == "z"
        assert table.get(2)["v"] == "b"

    def test_update_key_column_rejected(self):
        table = StateTable(keyed_decl())
        table.insert({"k": 1, "v": "a"})
        with pytest.raises(StateError, match="key columns"):
            table.update_where(lambda row: True, lambda row: {"k": 9})

    def test_delete_where(self):
        table = StateTable(keyed_decl())
        for i in range(5):
            table.insert({"k": i, "v": str(i)})
        removed = table.delete_where(lambda row: row["k"] % 2 == 0)
        assert removed == 3
        assert len(table) == 2

    def test_bag_allows_duplicates(self):
        table = StateTable(bag_decl())
        table.insert({"x": 1})
        table.insert({"x": 1})
        assert len(table) == 2


class TestAppendOnly:
    def test_append_allowed(self):
        table = StateTable(log_decl())
        table.insert({"x": 1})
        assert len(table) == 1

    def test_update_rejected(self):
        table = StateTable(log_decl())
        with pytest.raises(StateError, match="append-only"):
            table.update_where(lambda r: True, lambda r: {})

    def test_delete_rejected(self):
        table = StateTable(log_decl())
        with pytest.raises(StateError, match="append-only"):
            table.delete_where(lambda r: True)


class TestSnapshotAndDeltas:
    def test_snapshot_isolated(self):
        table = StateTable(keyed_decl())
        table.insert({"k": 1, "v": "a"})
        snap = table.snapshot()
        snap[0]["v"] = "mutated"
        assert table.get(1)["v"] == "a"

    def test_load_snapshot(self):
        source = StateTable(keyed_decl())
        source.insert({"k": 1, "v": "a"})
        target = StateTable(keyed_decl())
        target.insert({"k": 9, "v": "old"})
        target.load_snapshot(source.snapshot())
        assert len(target) == 1
        assert target.get(1)["v"] == "a"

    def test_delta_log_replay(self):
        source = StateTable(keyed_decl())
        source.insert({"k": 1, "v": "a"})
        target = StateTable(keyed_decl())
        target.load_snapshot(source.snapshot())
        source.start_delta_log()
        source.insert({"k": 2, "v": "b"})
        source.update_where(lambda r: r["k"] == 1, lambda r: {"v": "a2"})
        source.delete_where(lambda r: r["k"] == 2)
        target.apply_deltas(source.drain_delta_log())
        assert target.snapshot() == source.snapshot()

    def test_drain_without_start_raises(self):
        with pytest.raises(StateError, match="not started"):
            StateTable(keyed_decl()).drain_delta_log()

    def test_log_only_records_while_active(self):
        table = StateTable(keyed_decl())
        table.insert({"k": 1, "v": "a"})  # before log: not recorded
        table.start_delta_log()
        table.insert({"k": 2, "v": "b"})
        deltas = table.drain_delta_log()
        assert len(deltas) == 1


class TestSplitMerge:
    def test_split_partitions_disjointly(self):
        table = StateTable(keyed_decl())
        for i in range(100):
            table.insert({"k": i, "v": str(i)})
        parts = table.split(4)
        assert sum(len(p) for p in parts) == 100
        seen = set()
        for part in parts:
            for row in part.rows():
                assert row["k"] not in seen
                seen.add(row["k"])

    def test_split_deterministic(self):
        table = StateTable(keyed_decl())
        for i in range(50):
            table.insert({"k": i, "v": str(i)})
        first = [sorted(r["k"] for r in p.rows()) for p in table.split(3)]
        second = [sorted(r["k"] for r in p.rows()) for p in table.split(3)]
        assert first == second

    def test_split_reasonably_balanced(self):
        table = StateTable(keyed_decl())
        for i in range(1000):
            table.insert({"k": i, "v": ""})
        sizes = [len(p) for p in table.split(4)]
        assert min(sizes) > 150  # hash-partitioning, not perfect but fair

    def test_merge_inverts_split(self):
        table = StateTable(keyed_decl())
        for i in range(60):
            table.insert({"k": i, "v": str(i)})
        parts = table.split(3)
        merged = StateTable.merge(keyed_decl(), parts)
        assert sorted(r["k"] for r in merged.rows()) == sorted(
            r["k"] for r in table.rows()
        )

    def test_merge_last_writer_wins(self):
        old = StateTable(keyed_decl())
        old.insert({"k": 1, "v": "old"})
        new = StateTable(keyed_decl())
        new.insert({"k": 1, "v": "new"})
        merged = StateTable.merge(keyed_decl(), [old, new])
        assert merged.get(1)["v"] == "new"

    def test_merge_name_mismatch(self):
        with pytest.raises(StateError, match="merge"):
            StateTable.merge(keyed_decl(), [StateTable(bag_decl())])

    def test_split_bag_round_robin(self):
        table = StateTable(bag_decl())
        for i in range(10):
            table.insert({"x": i})
        parts = table.split(2)
        assert [len(p) for p in parts] == [5, 5]

    def test_split_invalid_ways(self):
        with pytest.raises(StateError):
            StateTable(keyed_decl()).split(0)


class TestStateStore:
    def test_store_holds_tables_and_vars(self):
        store = StateStore([keyed_decl()], {"n": 0})
        store.table("t").insert({"k": 1, "v": "a"})
        store.vars["n"] = 5
        snapshot = store.snapshot()
        fresh = StateStore([keyed_decl()], {"n": 0})
        fresh.load_snapshot(snapshot)
        assert fresh.table("t").get(1)["v"] == "a"
        assert fresh.vars["n"] == 5

    def test_unknown_table(self):
        store = StateStore([], {})
        with pytest.raises(StateError, match="unknown state table"):
            store.table("ghost")
