"""Effect-summary engine (`repro.analysis.effects`): per-handler
mutation-site proofs, the ADN700-family facts derived from them, and the
replication refinement that gates Autoscaler scale-out (ADN702)."""

import pytest

from repro.analysis.effects import (
    element_effects,
    refine_replication,
    refined_safety,
    summarize_elements,
)
from repro.control.scaling import Autoscaler, AutoscalerConfig
from repro.dsl import load_stdlib, parse, validate_element
from repro.ir.builder import build_element_ir
from repro.ir.replication import AccessMode, replication_safety
from repro.sim import Resource, Simulator


def effects_of(source, name=None):
    program = parse(source)
    element = validate_element(
        program.elements[name or next(iter(program.elements))]
    )
    return element_effects(build_element_ir(element))


def stdlib_effects(name):
    program = load_stdlib()
    element = validate_element(program.elements[name])
    return element_effects(build_element_ir(element))


def site_ids(sites):
    return sorted(s.target_id for s in sites)


# -- shape classification -------------------------------------------------


class TestShapes:
    def test_plain_increment(self):
        effects = effects_of(
            """
            element Counter {
                state hits (route: str KEY, n: int);
                on request {
                    UPDATE hits SET n = n + 1 WHERE route == input.username;
                    SELECT * FROM input;
                }
            }
            """
        )
        (site,) = effects.sites
        assert site.shape == "increment"
        assert not site.idempotent
        assert site.commutative
        assert site.deterministic
        assert not site.rpc_keyed

    def test_keyed_insert_is_idempotent_set(self):
        effects = effects_of(
            """
            element CachePut {
                state entries (k: str KEY, v: str);
                on request {
                    INSERT INTO entries
                        SELECT input.username, input.username FROM input;
                    SELECT * FROM input;
                }
            }
            """
        )
        (site,) = effects.sites
        assert site.shape == "set"
        assert site.idempotent
        assert site.commutative

    def test_nondeterministic_keyed_insert_not_idempotent(self):
        effects = effects_of(
            """
            element Stamp {
                state stamps (k: str KEY, at: float);
                on request {
                    INSERT INTO stamps SELECT input.username, now() FROM input;
                    SELECT * FROM input;
                }
            }
            """
        )
        (site,) = effects.sites
        assert site.shape == "set"
        assert not site.deterministic
        assert not site.idempotent

    def test_append_without_rpc_id(self):
        effects = effects_of(
            """
            element Audit {
                state log_tab (user: str) APPEND;
                on request {
                    INSERT INTO log_tab SELECT input.username FROM input;
                    SELECT * FROM input;
                }
            }
            """
        )
        (site,) = effects.sites
        assert site.shape == "append"
        assert not site.idempotent
        assert site.commutative
        assert not site.rpc_keyed
        assert effects.non_idempotent_sites() == [site]

    def test_append_with_rpc_id_is_dedupable(self):
        effects = effects_of(
            """
            element Audit {
                state log_tab (rpc: int, user: str) APPEND;
                on request {
                    INSERT INTO log_tab
                        SELECT input.rpc_id, input.username FROM input;
                    SELECT * FROM input;
                }
            }
            """
        )
        (site,) = effects.sites
        assert site.shape == "append"
        assert site.rpc_keyed
        assert effects.non_idempotent_sites() == []

    def test_aggregated_guard_makes_cas(self):
        effects = effects_of(
            """
            element Quota {
                state usage (user: str KEY, used: int);
                on request {
                    UPDATE usage SET used = used + 1
                        WHERE user == input.username
                          AND sum_of(usage, used) < 100;
                    SELECT * FROM input;
                }
            }
            """
        )
        (site,) = effects.sites
        assert site.shape == "cas"
        assert not site.commutative
        assert effects.non_commutative_sites() == [site]

    def test_var_self_increment(self):
        effects = effects_of(
            """
            element Seq {
                var seq: int = 0;
                on request {
                    SET seq = seq + 1;
                    SELECT * FROM input;
                }
            }
            """
        )
        (site,) = effects.sites
        assert site.target_kind == "var"
        assert site.shape == "increment"
        assert site.commutative and not site.idempotent

    def test_var_plain_set_is_idempotent(self):
        effects = effects_of(
            """
            element Flag {
                var armed: bool = false;
                on request {
                    SET armed = true;
                    SELECT * FROM input;
                }
            }
            """
        )
        (site,) = effects.sites
        assert site.shape == "set"
        assert site.idempotent
        assert effects.non_idempotent_sites() == []

    def test_delete_is_idempotent(self):
        effects = effects_of(
            """
            element Evict {
                state entries (k: str KEY, v: str);
                on request {
                    DELETE FROM entries WHERE k == input.username;
                    SELECT * FROM input;
                }
            }
            """
        )
        (site,) = effects.sites
        assert site.shape == "delete"
        assert site.idempotent

    def test_init_blocks_excluded(self):
        effects = effects_of(
            """
            element Seeded {
                state acl (user: str KEY, ok: bool);
                init { INSERT INTO acl VALUES ("alice", true); }
                on request {
                    SELECT * FROM input JOIN acl ON input.username == acl.user;
                }
            }
            """
        )
        assert effects.sites == ()
        assert "table:acl" in effects.observable_reads


# -- retry-visible reads (ADN703) -----------------------------------------


class TestRetryVisibleReads:
    def test_emitted_counter_is_retry_visible(self):
        effects = effects_of(
            """
            element Seq {
                var seq: int = 0;
                on request {
                    SET seq = seq + 1;
                    SELECT input.username, seq AS seq_no FROM input;
                }
            }
            """
        )
        pairs = effects.retry_visible_reads()
        assert len(pairs) == 1
        read, site = pairs[0]
        assert read.output_field == "seq_no"
        assert read.target_id == "var:seq" == site.target_id

    def test_idempotent_state_read_not_flagged(self):
        effects = effects_of(
            """
            element Flag {
                var armed: bool = false;
                on request {
                    SET armed = true;
                    SELECT input.username, armed AS is_armed FROM input;
                }
            }
            """
        )
        assert effects.retry_visible_reads() == []


# -- stdlib classifications (pins the sanitizer/static correspondence) ----


class TestStdlib:
    def test_logging_is_rpc_keyed(self):
        effects = stdlib_effects("Logging")
        assert all(s.rpc_keyed for s in effects.sites)
        assert effects.non_idempotent_sites() == []

    def test_metrics_increment_not_idempotent(self):
        effects = stdlib_effects("Metrics")
        risky = effects.non_idempotent_sites()
        assert risky, "Metrics must carry a non-idempotent site"
        assert any(s.shape == "increment" for s in risky)

    def test_global_quota_is_non_commutative(self):
        effects = stdlib_effects("GlobalQuota")
        assert any(
            s.shape == "cas" for s in effects.non_commutative_sites()
        )

    def test_cache_put_idempotent(self):
        effects = stdlib_effects("Cache")
        table_sites = [
            s for s in effects.sites if s.target_kind == "table"
        ]
        assert table_sites
        assert all(s.idempotent for s in table_sites)

    def test_acl_has_no_mutation_sites(self):
        assert stdlib_effects("Acl").sites == ()

    def test_summarize_all_stdlib(self):
        program = load_stdlib()
        irs = {
            name: build_element_ir(validate_element(element))
            for name, element in program.elements.items()
        }
        summaries = summarize_elements(irs)
        assert set(summaries) == set(irs)
        assert all(s.element == name for name, s in summaries.items())


# -- replication refinement (ADN702) --------------------------------------


NONDET_KEYED_INSERT = """
element Drifting {
    state cache_tab (obj_id: int KEY, stamp: float);
    on request {
        INSERT INTO cache_tab SELECT input.obj_id, now() FROM input;
        SELECT * FROM input;
    }
}
"""


def ir_of(source, name=None):
    program = parse(source)
    element = validate_element(
        program.elements[name or next(iter(program.elements))]
    )
    return build_element_ir(element)


class TestRefinement:
    def test_coarse_shardable_tightened(self):
        ir = ir_of(NONDET_KEYED_INSERT)
        coarse = replication_safety(ir)
        assert coarse.shardable, "coarse verdict must start permissive"
        refined = refine_replication(coarse, element_effects(ir))
        assert not refined.shardable
        assert any(
            "replica-divergent" in reason for reason in refined.reasons()
        )

    def test_refined_safety_one_call(self):
        refined = refined_safety(ir_of(NONDET_KEYED_INSERT))
        assert not refined.shardable

    def test_clean_element_untouched(self):
        ir = ir_of(
            """
            element Pure {
                state acl (user: str KEY, ok: bool);
                on request {
                    SELECT * FROM input
                        JOIN acl ON input.username == acl.user;
                }
            }
            """
        )
        coarse = replication_safety(ir)
        assert refine_replication(coarse, element_effects(ir)) is coarse

    def test_rmw_access_not_double_demoted(self):
        ir = ir_of(
            """
            element Guarded {
                state seen (k: int KEY);
                on request {
                    SELECT * FROM input
                        WHERE not contains(seen, input.obj_id);
                    INSERT INTO seen SELECT input.obj_id FROM input;
                }
            }
            """
        )
        coarse = replication_safety(ir)
        refined = refine_replication(coarse, element_effects(ir))
        modes = [a.mode for a in refined.accesses]
        assert AccessMode.READ_MODIFY_WRITE in modes


# -- autoscaler gating ----------------------------------------------------


class TestAutoscalerGating:
    def _scaler(self, effects):
        sim = Simulator()
        resource = Resource(sim, capacity=1, name="engine")
        ir = ir_of(NONDET_KEYED_INSERT)
        return Autoscaler(
            sim,
            resource,
            AutoscalerConfig(max_capacity=4),
            safety=[replication_safety(ir)],
            effects=effects,
        )

    def test_coarse_verdict_alone_allows_scale_out(self):
        scaler = self._scaler(effects=None)
        assert scaler._scale_out_blockers() == []

    def test_effects_refinement_blocks_scale_out(self):
        ir = ir_of(NONDET_KEYED_INSERT)
        scaler = self._scaler(effects=[element_effects(ir)])
        blockers = scaler._scale_out_blockers()
        assert blockers
        assert any("replica-divergent" in b for b in blockers)
