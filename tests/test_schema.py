"""Schema and field-type unit tests."""

import pytest

from repro.dsl.schema import META_FIELDS, FieldType, RpcSchema
from repro.errors import DslValidationError


class TestFieldType:
    def test_from_keyword(self):
        assert FieldType.from_keyword("STR") is FieldType.STR
        assert FieldType.from_keyword("bytes") is FieldType.BYTES

    def test_from_keyword_unknown(self):
        with pytest.raises(DslValidationError):
            FieldType.from_keyword("blob")

    def test_accepts_exact(self):
        assert FieldType.STR.accepts("x")
        assert FieldType.BYTES.accepts(b"x")
        assert FieldType.BOOL.accepts(True)

    def test_float_accepts_int(self):
        assert FieldType.FLOAT.accepts(3)
        assert FieldType.FLOAT.accepts(3.5)

    def test_bool_is_not_int(self):
        assert not FieldType.INT.accepts(True)
        assert not FieldType.FLOAT.accepts(False)

    def test_none_always_accepted(self):
        assert FieldType.INT.accepts(None)

    def test_rejects_wrong_type(self):
        assert not FieldType.INT.accepts("3")
        assert not FieldType.BYTES.accepts("text")


class TestRpcSchema:
    def test_of_constructor(self):
        schema = RpcSchema.of("kv", key=FieldType.INT, value=FieldType.BYTES)
        assert schema.application_field_names() == ("key", "value")

    def test_duplicate_field_rejected(self):
        schema = RpcSchema.of("s", a=FieldType.INT)
        with pytest.raises(DslValidationError, match="duplicate"):
            schema.add("a", FieldType.STR)

    def test_meta_collision_rejected(self):
        schema = RpcSchema("s")
        with pytest.raises(DslValidationError, match="meta-field"):
            schema.add("dst", FieldType.STR)

    def test_field_type_lookup_includes_meta(self):
        schema = RpcSchema.of("s", a=FieldType.INT)
        assert schema.field_type("a") is FieldType.INT
        assert schema.field_type("rpc_id") is FieldType.INT
        assert schema.field_type("ghost") is None

    def test_all_fields_merges_meta(self):
        schema = RpcSchema.of("s", a=FieldType.INT)
        merged = schema.all_fields()
        assert set(META_FIELDS) <= set(merged)
        assert merged["a"] is FieldType.INT

    def test_validate_message_fields(self):
        schema = RpcSchema.of("s", n=FieldType.INT)
        schema.validate_message_fields([("n", 3)])
        with pytest.raises(DslValidationError, match="expects int"):
            schema.validate_message_fields([("n", "three")])

    def test_validate_ignores_unknown_fields(self):
        schema = RpcSchema.of("s", n=FieldType.INT)
        schema.validate_message_fields([("extra", object())])
