"""Function registry unit tests."""

import random
import zlib

import pytest

from repro.dsl.functions import DEFAULT_REGISTRY, FunctionRegistry, FunctionSpec
from repro.dsl.schema import FieldType
from repro.errors import DslValidationError
from repro.platforms import Platform


@pytest.fixture
def registry():
    return FunctionRegistry()


class TestRegistry:
    def test_builtins_present(self, registry):
        for name in (
            "now",
            "rand",
            "hash",
            "len",
            "min",
            "max",
            "count",
            "contains",
            "compress",
            "decompress",
            "encrypt",
            "decrypt",
            "coalesce",
        ):
            assert name in registry

    def test_unknown_function(self, registry):
        with pytest.raises(DslValidationError):
            registry.get("frobnicate")

    def test_duplicate_registration(self, registry):
        spec = FunctionSpec("hash", (1,), FieldType.INT, impl=hash)
        with pytest.raises(DslValidationError, match="already registered"):
            registry.register(spec)

    def test_custom_udf(self, registry):
        registry.register(
            FunctionSpec(
                "double",
                arity=(1,),
                result_type=FieldType.INT,
                impl=lambda x: x * 2,
            )
        )
        assert registry.get("double").impl(21) == 42

    def test_arity_check(self, registry):
        spec = registry.get("min")
        spec.check_arity(2)
        with pytest.raises(DslValidationError):
            spec.check_arity(3)

    def test_multi_arity(self, registry):
        spec = registry.get("concat")
        spec.check_arity(2)
        spec.check_arity(4)
        with pytest.raises(DslValidationError):
            spec.check_arity(5)


class TestSemantics:
    def test_hash_stable_across_registries(self):
        a = FunctionRegistry().get("hash").impl("payload")
        b = FunctionRegistry().get("hash").impl("payload")
        assert a == b
        assert isinstance(a, int)

    def test_hash_distributes(self, registry):
        hash_fn = registry.get("hash").impl
        buckets = {hash_fn(i) % 4 for i in range(100)}
        assert buckets == {0, 1, 2, 3}

    def test_rand_seeded(self, registry):
        registry.bind_rng(random.Random(7))
        first = [registry.get("rand").impl() for _ in range(3)]
        registry.bind_rng(random.Random(7))
        second = [registry.get("rand").impl() for _ in range(3)]
        assert first == second

    def test_now_bound_to_clock(self, registry):
        registry.bind_clock(lambda: 42.5)
        assert registry.get("now").impl() == 42.5

    def test_compress_roundtrip(self, registry):
        compress = registry.get("compress").impl
        decompress = registry.get("decompress").impl
        data = b"hello world " * 20
        packed = compress(data)
        assert len(packed) < len(data)
        assert decompress(packed) == data

    def test_compress_accepts_str(self, registry):
        packed = registry.get("compress").impl("text payload")
        assert zlib.decompress(packed) == b"text payload"

    def test_encrypt_roundtrip(self, registry):
        encrypt = registry.get("encrypt").impl
        decrypt = registry.get("decrypt").impl
        data = b"secret"
        sealed = encrypt(data, "key1")
        assert sealed != data
        assert decrypt(sealed, "key1") == data
        assert decrypt(sealed, "key2") != data

    def test_len_of_none(self, registry):
        assert registry.get("len").impl(None) == 0

    def test_coalesce(self, registry):
        coalesce = registry.get("coalesce").impl
        assert coalesce(None, 5) == 5
        assert coalesce(3, 5) == 3


class TestProperties:
    def test_payload_ops_flagged(self, registry):
        for name in ("compress", "decompress", "encrypt", "decrypt"):
            assert registry.get(name).payload_op

    def test_nondeterministic_flagged(self, registry):
        assert not registry.get("rand").deterministic
        assert not registry.get("now").deterministic
        assert registry.get("hash").deterministic

    def test_payload_ops_not_on_switch(self, registry):
        assert Platform.SWITCH_P4 not in registry.get("compress").platforms
        assert Platform.KERNEL_EBPF not in registry.get("compress").platforms

    def test_hash_everywhere(self, registry):
        assert Platform.SWITCH_P4 in registry.get("hash").platforms

    def test_default_registry_is_shared(self):
        assert DEFAULT_REGISTRY.get("hash") is DEFAULT_REGISTRY.get("hash")
