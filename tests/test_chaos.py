"""Chaos soak: random chains × random placements × random workloads.

Each trial builds a random element chain, solves a random placement
strategy on random hardware, runs a random closed-loop workload, and
checks the global invariants: every issued RPC completes, Little's law
holds, CPU accounting is conservative, and the data plane's drop
counters agree with the client's view. Seeded: failures reproduce.
"""

import random

import pytest

from repro.compiler.compiler import AdnCompiler
from repro.control import ClusterSpec, PlacementRequest, solve_placement
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.dsl.ast_nodes import ChainDecl
from repro.ir.optimizer import OptimizerOptions
from repro.runtime import AdnMrpcStack
from repro.runtime.message import reset_rpc_ids
from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)

#: pool excludes the §2 payload pairs (order-coupled by design) and
#: GlobalQuota (quota exhaustion makes "all complete" trivially false)
POOL = [
    "Logging",
    "Acl",
    "Fault",
    "LbKeyHash",
    "Metrics",
    "Admission",
    "Encryption",
    "Router",
    "Mirror",
    "SizeLimit",
]

STRATEGIES = ["software", "inapp", "offload", "scaleout"]


def run_trial(seed: int):
    rng = random.Random(seed)
    names = rng.sample(POOL, k=rng.randint(1, 5))
    strategy = rng.choice(STRATEGIES)
    smartnics = rng.random() < 0.5
    programmable_switch = rng.random() < 0.5
    fuse = rng.random() < 0.5
    concurrency = rng.choice([1, 4, 16, 64])
    total = rng.choice([100, 300])

    reset_rpc_ids()
    registry = FunctionRegistry(rng=random.Random(seed))
    program = load_stdlib(schema=SCHEMA)
    # fusion is now a compile-time IR pass, not a placement flag
    compiler = AdnCompiler(
        registry=registry, options=OptimizerOptions(fusion=fuse)
    )
    chain = compiler.compile_chain(
        ChainDecl(src="A", dst="B", elements=tuple(names)), program, SCHEMA
    )
    plan = solve_placement(
        PlacementRequest(
            chain=chain,
            schema=SCHEMA,
            strategy=strategy,
            cluster=ClusterSpec(
                smartnics=smartnics,
                programmable_switch=programmable_switch,
            ),
            replicas=rng.choice([2, 4]) if strategy == "scaleout" else 1,
        )
    )
    sim = Simulator()
    cluster = two_machine_cluster(
        sim, smartnics=smartnics, programmable_switch=programmable_switch
    )
    stack = AdnMrpcStack(
        sim, cluster, chain, SCHEMA, registry, plan=plan, server_replicas=2
    )

    def fields(workload_rng, index):
        return {
            "payload": b"x" * workload_rng.choice([16, 128, 1024]),
            "username": workload_rng.choice(["usr1", "usr2", "ghost"]),
            "obj_id": workload_rng.randrange(1 << 12),
        }

    client = ClosedLoopClient(
        sim,
        stack.call,
        concurrency=concurrency,
        total_rpcs=total,
        seed=seed,
        fields_fn=fields,
    )
    metrics = client.run()
    return names, plan, stack, cluster, metrics, concurrency, total, sim


@pytest.mark.parametrize("seed", range(30))
def test_chaos_trial(seed):
    (
        names,
        plan,
        stack,
        cluster,
        metrics,
        concurrency,
        total,
        sim,
    ) = run_trial(seed)
    context = f"seed={seed} chain={names} plan={plan.description}"
    # 1. every issued RPC is answered
    assert metrics.completed == total, context
    # 2. the client's abort count equals the data plane's drop count
    drops = sum(p.rpcs_dropped for p in stack.processors)
    assert drops == metrics.aborted, context
    # 3. Little's law (generous tolerance: short runs, small N)
    if total >= 300 and concurrency >= 4:
        assert metrics.check_littles_law(concurrency, tolerance=0.5), context
    # 4. CPU accounting is conservative: busy time never exceeds
    #    capacity x elapsed for any thread
    for machine in cluster.machines.values():
        for resource in machine.threads.values():
            assert (
                resource.busy_time
                <= sim.now * resource.capacity + 1e-9
            ), (context, resource.name)
    # 5. latencies are sane
    assert metrics.latency.percentile(0) > 0
    assert metrics.latency.percentile(100) < 1.0, context


# -- fault soak: the same invariants must survive injected trouble -----------

#: machine-crash soak targets; faults are transient so no recovery
#: orchestrator is needed, just retries riding out the blackout
SOAK_MACHINES = ["client-host", "server-host"]


def run_fault_trial(seed: int):
    """A chaos trial plus one random transient fault and a retry policy
    generous enough to outlive it. Seeded: failures reproduce."""
    from repro.faults import FaultInjector, random_single_fault_plan
    from repro.runtime import RetryPolicy

    rng = random.Random(10_000 + seed)
    names = rng.sample(POOL, k=rng.randint(1, 4))
    strategy = rng.choice(STRATEGIES)
    concurrency = rng.choice([1, 4, 16])
    total = 300
    horizon_s = 0.01

    reset_rpc_ids()
    registry = FunctionRegistry(rng=random.Random(seed))
    program = load_stdlib(schema=SCHEMA)
    compiler = AdnCompiler(registry=registry)
    chain = compiler.compile_chain(
        ChainDecl(src="A", dst="B", elements=tuple(names)), program, SCHEMA
    )
    plan = solve_placement(
        PlacementRequest(
            chain=chain, schema=SCHEMA, strategy=strategy,
            cluster=ClusterSpec(),
        )
    )
    sim = Simulator()
    cluster = two_machine_cluster(sim)
    # the blackout tops out at horizon/4; 20 x 5ms attempts dwarf it.
    # only timeouts retry: element-level aborts (Acl, Fault) must keep
    # flowing through so the drop accounting stays meaningful
    policy = RetryPolicy(
        max_attempts=20,
        per_attempt_timeout_ms=5.0,
        base_backoff_ms=0.5,
        max_backoff_ms=5.0,
        retry_on=("Timeout",),
        seed=seed,
    )
    stack = AdnMrpcStack(
        sim, cluster, chain, SCHEMA, registry, plan=plan,
        server_replicas=2, retry_policy=policy,
    )
    fault_plan = random_single_fault_plan(seed, horizon_s, SOAK_MACHINES)
    injector = FaultInjector(sim, cluster)
    injector.register_stack(stack)
    sim.process(injector.run(fault_plan))
    client = ClosedLoopClient(
        sim, stack.call, concurrency=concurrency, total_rpcs=total, seed=seed
    )
    metrics = client.run()
    return names, fault_plan, stack, cluster, metrics, total, sim


@pytest.mark.parametrize("seed", range(15))
def test_fault_soak_trial(seed):
    names, fault_plan, stack, cluster, metrics, total, sim = run_fault_trial(
        seed
    )
    (event,) = fault_plan.events
    context = f"seed={seed} chain={names} fault={event.kind}@{event.at_s:.4f}"
    # 1. no silent loss: with retries enabled every issued RPC is
    #    answered, even the ones the fault blackholed mid-flight
    assert metrics.completed == total, context
    # 2. whatever the fault ate was converted into timeouts, never
    #    silence: lost attempts <= timed-out attempts
    assert stack.rpcs_lost <= stack.retry_stats.timeouts, context
    # 3. CPU accounting stays conservative under faults (slowdowns
    #    included): busy time never exceeds capacity x elapsed
    for machine in cluster.machines.values():
        for resource in machine.threads.values():
            assert (
                resource.busy_time <= sim.now * resource.capacity + 1e-9
            ), (context, resource.name)
    # 4. transient faults fully healed: machines back up, no processor
    #    left hung or slowed
    for name in SOAK_MACHINES:
        assert cluster.machine_up(name), context
    for processor in stack.processors:
        assert processor.hang_event is None, context
        assert processor.slowdown_factor == 1.0, context


# -- crash under overload protection: the breaker rides the blackout ---------


def run_overloaded_crash_trial(seed: int):
    """The canonical recovery scenario, but with the full overload kit
    armed: a tight retry policy (so the blackout surfaces as fast logical
    failures instead of being absorbed by patient retries), a circuit
    breaker in front of the stack, a retry budget, and bounded queues.
    The breaker must open while ``stats-host`` is dark and re-close once
    recovery restores the element from the warm standby."""
    from repro.faults import run_recovery_scenario
    from repro.overload import CircuitBreakerPolicy, RetryBudgetConfig
    from repro.runtime import RetryPolicy

    return run_recovery_scenario(
        seed=seed,
        total_rpcs=1200,
        concurrency=4,
        table_rows=100,
        retry_policy=RetryPolicy(
            max_attempts=3,
            per_attempt_timeout_ms=2.0,
            base_backoff_ms=0.2,
            max_backoff_ms=1.0,
            retry_on=("Timeout",),
            seed=seed,
        ),
        circuit_breaker=CircuitBreakerPolicy(
            failure_threshold=2, open_ms=5.0, half_open_probes=1
        ),
        retry_budget=RetryBudgetConfig(
            ratio=0.5, min_tokens=20.0, max_tokens=50.0
        ),
        queue_limit=32,
        # pace the loop: an open breaker answers with no simulated
        # delay, and a zero-think closed loop would drain the whole
        # workload at one sim instant while the breaker is open
        client_think_s=0.0005,
    )


def test_crash_mid_overload_recovers():
    result = run_overloaded_crash_trial(seed=5)
    breaker = result.stack.breaker
    # 1. every issued RPC is answered — aborts are explicit, not silent
    assert result.metrics.completed == result.total_rpcs
    # 2. the breaker opened during the blackout (fast local failure
    #    instead of hammering a dead machine) ...
    assert breaker.opens >= 1
    assert breaker.short_circuited > 0
    # 3. ... and re-closed once recovery restored the element
    assert breaker.closes >= 1
    assert breaker.state == "closed"
    # 4. recovery actually ran: re-homed off the dead machine and
    #    restored the tally from the warm standby
    report = result.report
    assert report is not None
    assert report.rows_restored > 0
    # 5. the service finished healthy: the tail of the workload (after
    #    the breaker re-closed) completed without aborts
    assert result.metrics.completed > result.metrics.aborted


def test_crash_mid_overload_reproducible():
    """Same seed, same storm: breaker timeline and metrics replay."""

    def signature(seed):
        result = run_overloaded_crash_trial(seed)
        breaker = result.stack.breaker
        return (
            result.metrics.completed,
            result.metrics.aborted,
            result.metrics.elapsed_s,
            breaker.opens,
            breaker.closes,
            tuple(breaker.transitions),
            result.stack.retry_stats.attempts,
            result.stack.retry_stats.logical_calls,
        )

    assert signature(5) == signature(5)


def test_fault_soak_reproducible():
    """Same seed, same trouble: the soak replays bit-identically."""
    def signature(seed):
        _, fault_plan, stack, _, metrics, _, sim = run_fault_trial(seed)
        return (
            tuple(event.to_dict().items() for event in fault_plan.events),
            metrics.completed,
            metrics.aborted,
            metrics.elapsed_s,
            stack.rpcs_lost,
            stack.retry_stats.timeouts,
            stack.retry_stats.retries,
        )

    assert signature(3) == signature(3)
