"""Property-based tests (hypothesis) for the wire codecs: varints,
protobuf-style serialization, the ADN compact format, TCP reassembly,
and HTTP/2 framing."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.headers import build_layout
from repro.dsl.schema import FieldType, RpcSchema
from repro.net import (
    AdnWireCodec,
    MessageFramer,
    ProtoCodec,
    TcpReceiver,
    TcpSender,
    decode_grpc_message,
    decode_varint,
    encode_grpc_message,
    encode_varint,
    zigzag_decode,
    zigzag_encode,
)

from repro.dsl.schema import META_FIELDS

field_names = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8).filter(
        lambda name: name not in META_FIELDS
    ),
    min_size=1,
    max_size=6,
    unique=True,
)

INT64 = st.integers(min_value=-(2**62), max_value=2**62)


class TestVarints:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_varint_roundtrip(self, value):
        encoded = encode_varint(value)
        decoded, offset = decode_varint(encoded, 0)
        assert decoded == value
        assert offset == len(encoded)

    @given(INT64)
    def test_zigzag_roundtrip(self, value):
        assert zigzag_decode(zigzag_encode(value)) == value

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_varint_length_monotone_in_magnitude(self, value):
        assert len(encode_varint(value)) <= len(encode_varint(2**63 - 1))


def _schema_and_values(names):
    types = [
        FieldType.INT,
        FieldType.FLOAT,
        FieldType.BOOL,
        FieldType.STR,
        FieldType.BYTES,
    ]
    schema = RpcSchema("prop")
    for index, name in enumerate(names):
        schema.add(name, types[index % len(types)])
    return schema


class TestProtoCodec:
    @given(
        names=field_names,
        ints=st.lists(INT64, min_size=6, max_size=6),
        text=st.text(max_size=40),
        blob=st.binary(max_size=60),
        flag=st.booleans(),
        real=st.floats(allow_nan=False, allow_infinity=False, width=32),
    )
    @settings(max_examples=60)
    def test_roundtrip(self, names, ints, text, blob, flag, real):
        schema = _schema_and_values(names)
        values = {}
        for index, name in enumerate(names):
            field_type = schema.fields[name].type
            values[name] = {
                FieldType.INT: ints[index],
                FieldType.FLOAT: float(real),
                FieldType.BOOL: flag,
                FieldType.STR: text,
                FieldType.BYTES: blob,
            }[field_type]
        codec = ProtoCodec(schema)
        assert codec.decode(codec.encode(values)) == values


class TestAdnWire:
    @given(
        names=field_names,
        ints=st.lists(INT64, min_size=6, max_size=6),
        text=st.text(max_size=40),
        blob=st.binary(max_size=60),
        flag=st.booleans(),
        real=st.floats(allow_nan=False, allow_infinity=False, width=32),
    )
    @settings(max_examples=60)
    def test_roundtrip(self, names, ints, text, blob, flag, real):
        schema = _schema_and_values(names)
        layout = build_layout(
            {name: spec.type for name, spec in schema.fields.items()}
        )
        codec = AdnWireCodec(layout)
        values = {}
        for index, name in enumerate(names):
            field_type = schema.fields[name].type
            values[name] = {
                FieldType.INT: ints[index],
                FieldType.FLOAT: float(real),
                FieldType.BOOL: flag,
                FieldType.STR: text,
                FieldType.BYTES: blob,
            }[field_type]
        assert codec.decode(codec.encode(values)) == values

    @given(names=field_names)
    @settings(max_examples=30)
    def test_layout_offsets_strictly_increase(self, names):
        layout = build_layout({name: FieldType.INT for name in names})
        offsets = [entry.offset for entry in layout.fields]
        assert offsets == sorted(offsets)
        assert len(set(offsets)) == len(offsets)


class TestTcpProperties:
    @given(
        data=st.binary(min_size=0, max_size=5000),
        mss=st.integers(min_value=1, max_value=1460),
    )
    @settings(max_examples=60)
    def test_segmentation_reassembly_identity(self, data, mss):
        sender = TcpSender(1, 2, mss=mss)
        receiver = TcpReceiver()
        out = b""
        for segment in sender.send(data):
            out += receiver.receive(segment)
        assert out == data

    @given(
        messages=st.lists(st.binary(max_size=200), min_size=1, max_size=10),
        chunk=st.integers(min_value=1, max_value=64),
    )
    @settings(max_examples=60)
    def test_framer_recovers_messages_under_any_chunking(self, messages, chunk):
        stream = b"".join(MessageFramer.frame(m) for m in messages)
        framer = MessageFramer()
        recovered = []
        for start in range(0, len(stream), chunk):
            recovered.extend(framer.feed(stream[start : start + chunk]))
        assert recovered == messages


class TestHttp2Properties:
    @given(payload=st.binary(max_size=1000))
    @settings(max_examples=60)
    def test_grpc_roundtrip(self, payload):
        headers = {":path": "/svc/M", "content-type": "application/grpc"}
        data = encode_grpc_message(headers, payload)
        decoded_headers, decoded_payload = decode_grpc_message(data)
        assert decoded_payload == payload
        assert decoded_headers == headers
