"""Replication-safety classification (paper §5 "decoupled tabular
state") and its consumers: the parallelize pass and the autoscaler."""

import pytest

from repro.control.scaling import Autoscaler, AutoscalerConfig
from repro.dsl import load_stdlib, parse, validate_element
from repro.ir.analysis import analyze_element
from repro.ir.builder import build_element_ir
from repro.ir.dependency import can_parallelize
from repro.ir.passes.parallelize import parallel_stages
from repro.ir.replication import AccessMode, replication_safety
from repro.sim import Resource, Simulator


def safety_of(source, name=None):
    program = parse(source)
    element = validate_element(
        program.elements[name or next(iter(program.elements))]
    )
    return replication_safety(build_element_ir(element))


def analysis_of(source, name=None):
    program = parse(source)
    element = validate_element(
        program.elements[name or next(iter(program.elements))]
    )
    return analyze_element(build_element_ir(element))


COMMUTATIVE_COUNTER = """
element HitCounter {
    state hits (route: str, n: int);
    on request {
        UPDATE hits SET n = n + 1;
        SELECT * FROM input;
    }
}
"""

RMW_ELEMENT = """
element Dedup {
    state seen (rpc: int KEY);
    on request {
        SELECT * FROM input WHERE not contains(seen, input.obj_id);
        INSERT INTO seen SELECT input.obj_id FROM input;
    }
}
"""


class TestClassifier:
    def test_read_only_table(self):
        safety = safety_of(
            """
            element R {
                state acl (user: str KEY, ok: bool);
                init { INSERT INTO acl VALUES ("alice", true); }
                on request {
                    SELECT input.* FROM input
                        JOIN acl ON acl.user == input.username;
                }
            }
            """
        )
        (access,) = safety.accesses
        assert access.mode is AccessMode.READ_ONLY
        assert safety.replicable and safety.shardable

    def test_append_only_insert_is_commutative(self):
        safety = safety_of(
            """
            element L {
                state log (ts: float);
                on request {
                    INSERT INTO log SELECT now() FROM input;
                    SELECT * FROM input;
                }
            }
            """
        )
        (access,) = safety.accesses
        assert access.mode is AccessMode.COMMUTATIVE
        assert safety.replicable

    def test_counter_update_is_commutative(self):
        safety = safety_of(COMMUTATIVE_COUNTER)
        (access,) = safety.accesses
        assert access.mode is AccessMode.COMMUTATIVE
        assert safety.replicable

    def test_non_commutative_update_is_rmw(self):
        safety = safety_of(
            """
            element W {
                state q (used: int);
                on request {
                    UPDATE q SET used = used * 2;
                    SELECT * FROM input;
                }
            }
            """
        )
        (access,) = safety.accesses
        assert access.mode is AccessMode.READ_MODIFY_WRITE
        assert not safety.replicable and not safety.shardable

    def test_aggregate_read_plus_write_is_rmw(self):
        safety = safety_of(RMW_ELEMENT)
        (access,) = safety.accesses
        assert access.mode is AccessMode.READ_MODIFY_WRITE
        assert not safety.replicable
        # the span points at real source (the WHERE that aggregates)
        assert access.span is not None and access.span.line >= 4

    def test_key_pinned_accesses_are_partitioned(self):
        safety = safety_of(
            """
            element P {
                state sess (user: str KEY, n: int);
                on request {
                    UPDATE sess SET n = 99
                        WHERE sess.user == input.username;
                    SELECT * FROM input;
                }
            }
            """
        )
        (access,) = safety.accesses
        assert access.mode is AccessMode.PARTITIONED
        assert not safety.replicable  # plain copies would still race
        assert safety.shardable  # but key-sharding is sound

    def test_unpinned_keyed_update_is_rmw(self):
        safety = safety_of(
            """
            element U {
                state sess (user: str KEY, n: int);
                on request {
                    UPDATE sess SET n = 99;
                    SELECT * FROM input;
                }
            }
            """
        )
        (access,) = safety.accesses
        assert access.mode is AccessMode.READ_MODIFY_WRITE

    def test_self_increment_var_is_commutative(self):
        safety = safety_of(
            """
            element C {
                var n: int = 0;
                on request {
                    SET n = n + 1;
                    SELECT * FROM input;
                }
            }
            """
        )
        (access,) = safety.accesses
        assert access.mode is AccessMode.COMMUTATIVE

    def test_read_back_var_is_rmw(self):
        safety = safety_of(
            """
            element V {
                var n: int = 0;
                on request {
                    SET n = n + 1;
                    SELECT input.*, n AS seq FROM input;
                }
            }
            """
        )
        (access,) = safety.accesses
        assert access.mode is AccessMode.READ_MODIFY_WRITE
        assert not safety.shardable  # vars have no key to shard by

    def test_stdlib_expectations(self):
        program = load_stdlib()
        verdicts = {}
        for name, element in program.elements.items():
            analysis = analyze_element(build_element_ir(element))
            verdicts[name] = analysis.replication
        assert verdicts["Acl"].replicable  # init-populated, read-only
        assert verdicts["Logging"].replicable  # append-only log
        assert not verdicts["RateLimit"].replicable  # token bucket
        assert not verdicts["Metrics"].replicable  # contains() guard
        assert not verdicts["LbRoundRobin"].replicable  # rr counter
        assert verdicts["Compression"].replicable  # stateless

    def test_analysis_carries_replication(self):
        analysis = analysis_of(COMMUTATIVE_COUNTER)
        assert analysis.replication is not None
        assert analysis.replication.replicable


class TestParallelizeGating:
    def test_rmw_element_refused_commutative_allowed(self):
        """The acceptance pair: a read-modify-write element may not join
        a parallel group, while a commutative counter may."""
        rmw = analysis_of(RMW_ELEMENT)
        counter = analysis_of(COMMUTATIVE_COUNTER)
        stateless = analysis_of(
            """
            element Pass {
                on request { SELECT * FROM input; }
            }
            """
        )
        refused = can_parallelize(stateless, rmw)
        assert not refused
        assert any("unsafe to replicate" in r for r in refused.reasons)
        assert can_parallelize(stateless, counter)

    def test_stage_grouping_respects_replication(self):
        analyses = {
            "Pass": analysis_of(
                "element Pass { on request { SELECT * FROM input; } }"
            ),
            "Counter": analysis_of(COMMUTATIVE_COUNTER),
            "Dedup": analysis_of(RMW_ELEMENT),
        }
        stages = parallel_stages(["Pass", "Counter", "Dedup"], analyses)
        # Pass+Counter group; Dedup is forced into its own stage
        assert ("Pass", "Counter") in stages
        assert ("Dedup",) in stages


class TestAutoscalerGating:
    def _saturate(self, sim, resource, duration_s=1.0):
        import random

        rng = random.Random(7)

        def arrivals():
            deadline = sim.now + duration_s
            while sim.now < deadline:
                yield sim.timeout(rng.expovariate(10_000))
                sim.process(one())

        def one():
            yield from resource.use(200e-6)

        sim.process(arrivals())

    def test_rmw_element_refused_scale_out(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1, name="engine")
        self._saturate(sim, resource)
        rmw = analysis_of(RMW_ELEMENT)
        autoscaler = Autoscaler(
            sim,
            resource,
            AutoscalerConfig(sample_interval_s=0.05, cooldown_s=0.1),
            safety=[rmw.replication],
        )
        sim.process(autoscaler.run(1.0))
        sim.run()
        assert resource.capacity == 1  # never scaled out
        refusals = [e for e in autoscaler.events if e.action == "refused_out"]
        assert refusals
        assert any("Dedup" in r for r in refusals[0].reasons)
        assert autoscaler.scale_out_count == 0

    def test_commutative_element_allowed_scale_out(self):
        sim = Simulator()
        resource = Resource(sim, capacity=1, name="engine")
        self._saturate(sim, resource)
        counter = analysis_of(COMMUTATIVE_COUNTER)
        autoscaler = Autoscaler(
            sim,
            resource,
            AutoscalerConfig(sample_interval_s=0.05, cooldown_s=0.1),
            safety=[counter.replication],
        )
        sim.process(autoscaler.run(1.0))
        sim.run()
        assert autoscaler.scale_out_count >= 1
        assert resource.capacity >= 2
        assert not [e for e in autoscaler.events if e.action == "refused_out"]

    def test_partitioned_element_allowed_scale_out(self):
        """Shardable-but-not-replicable state does not block scale-out:
        the runtime shards keyed tables on capacity changes."""
        sim = Simulator()
        resource = Resource(sim, capacity=1, name="engine")
        self._saturate(sim, resource)
        partitioned = analysis_of(
            """
            element P {
                state sess (user: str KEY, n: int);
                on request {
                    UPDATE sess SET n = 99
                        WHERE sess.user == input.username;
                    SELECT * FROM input;
                }
            }
            """
        )
        assert not partitioned.replication.replicable
        autoscaler = Autoscaler(
            sim,
            resource,
            AutoscalerConfig(sample_interval_s=0.05, cooldown_s=0.1),
            safety=[partitioned.replication],
        )
        sim.process(autoscaler.run(1.0))
        sim.run()
        assert autoscaler.scale_out_count >= 1
