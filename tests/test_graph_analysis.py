"""The interprocedural graph analyzer (repro.analysis.graph): mesh
liveness, retry-amplification bounds, the ADN600-ADN606 rule family,
graph-wide dead-field elimination, and CLI exit-code parity."""

import json

import pytest

from repro.analysis.graph import (
    GraphAnalysisOptions,
    analyze_graph,
    compute_mesh_liveness,
    eliminate_dead_fields_graph,
    lower_edge_chains,
    retry_amplification,
)
from repro.cli import main
from repro.dsl.functions import DEFAULT_REGISTRY
from repro.dsl.parser import parse
from repro.dsl.stdlib import load_stdlib
from repro.dsl.validator import validate_program
from repro.graph import (
    GraphBuilder,
    MESH_SCHEMA,
    bookinfo_graph,
    hotel_mesh_graph,
    mesh_program,
)
from repro.graph.lint import check_chain_resolution, load_graph_spec
from repro.ir.passmgr import GraphPassManager
from repro.lint import Severity

DEMO_DSL = "examples/lint_demo.adn"


def codes(diagnostics):
    return [d.code for d in diagnostics]


def analyze(graph, program=None, **kwargs):
    return analyze_graph(
        graph, program or mesh_program(), MESH_SCHEMA, **kwargs
    )


def retry_storm():
    """frontend -> cart -> checkout -> payment, 3 attempts per hop."""
    return (
        GraphBuilder("storm")
        .edge("frontend", "cart", elements=("Logging",),
              deadline_budget_ms=50.0, max_attempts=3,
              per_attempt_timeout_ms=15.0, breaker=True)
        .edge("cart", "checkout", elements=("Logging",),
              deadline_budget_ms=25.0, max_attempts=3,
              per_attempt_timeout_ms=8.0, breaker=True)
        .edge("checkout", "payment", elements=("Logging",),
              deadline_budget_ms=12.0, max_attempts=3,
              per_attempt_timeout_ms=4.0, breaker=True)
        .build()
    )


class TestMeshLiveness:
    def test_declared_reads_bound_leaf_liveness(self):
        graph = bookinfo_graph()
        chains = lower_edge_chains(graph, mesh_program(), DEFAULT_REGISTRY)
        live, edge_live = compute_mesh_liveness(graph, chains, MESH_SCHEMA)
        assert live["details"] == frozenset({"payload"})
        assert live["ratings"] == frozenset({"obj_id"})
        # reviews reads payload itself, obj_id via LbKeyHash + the
        # ratings callee, and priority/username via the admission edge
        assert live["reviews"] == frozenset(
            {"payload", "obj_id", "priority", "username"}
        )

    def test_edge_live_is_callee_liveness_plus_runtime_reads(self):
        graph = bookinfo_graph()
        chains = lower_edge_chains(graph, mesh_program(), DEFAULT_REGISTRY)
        _, edge_live = compute_mesh_liveness(graph, chains, MESH_SCHEMA)
        assert edge_live[("productpage", "details")] == frozenset(
            {"payload"}
        )
        # the admission edge must carry priority + its hash fields even
        # though ratings itself only reads obj_id
        assert edge_live[("reviews", "ratings")] == frozenset(
            {"obj_id", "priority", "username"}
        )

    def test_undeclared_services_stay_conservative(self):
        graph = hotel_mesh_graph()
        chains = lower_edge_chains(graph, mesh_program(), DEFAULT_REGISTRY)
        live, _ = compute_mesh_liveness(graph, chains, MESH_SCHEMA)
        all_fields = frozenset(MESH_SCHEMA.application_field_names())
        assert all(fields == all_fields for fields in live.values())


class TestRetryAmplification:
    def test_bounds_multiply_along_the_path(self):
        bounds, worst, path = retry_amplification(retry_storm())
        assert bounds[("frontend", "cart")] == 3.0
        assert bounds[("cart", "checkout")] == 9.0
        assert bounds[("checkout", "payment")] == 27.0
        assert worst == 27.0
        assert path == ("frontend", "cart", "checkout", "payment")

    def test_hotel_mesh_worst_path(self):
        bounds, worst, path = retry_amplification(hotel_mesh_graph())
        assert worst == 4.0
        assert path == ("gateway", "search", "geo")
        assert bounds[("gateway", "search")] == 2.0

    def test_analysis_exposes_per_edge_bounds(self):
        analysis = analyze(bookinfo_graph())
        assert analysis.worst_amplification == 2.0
        assert analysis.amplification_bound("productpage", "reviews") == 2.0
        assert analysis.amplification_bound("productpage", "details") == 1.0


class TestAdn601Amplification:
    def test_fires_once_at_the_crossing_edge(self):
        analysis = analyze(retry_storm())
        findings = [d for d in analysis.diagnostics if d.code == "ADN601"]
        assert len(findings) == 1
        assert findings[0].severity is Severity.ERROR
        assert findings[0].element == "cart->checkout"

    def test_quiet_below_the_threshold(self):
        analysis = analyze(retry_storm(), options=GraphAnalysisOptions(
            amplification_threshold=27.0
        ))
        assert "ADN601" not in codes(analysis.diagnostics)


class TestAdn602Budgets:
    def test_budget_above_callers_is_unusable_headroom(self):
        graph = (
            GraphBuilder("g")
            .edge("a", "b", elements=("Logging",), deadline_budget_ms=10.0)
            .edge("b", "c", elements=("Logging",), deadline_budget_ms=50.0)
            .build()
        )
        findings = [
            d for d in analyze(graph).diagnostics if d.code == "ADN602"
        ]
        assert any("headroom" in d.message for d in findings)
        assert findings[0].element == "b->c"

    def test_per_attempt_timeout_beyond_budget(self):
        graph = (
            GraphBuilder("g")
            .edge("a", "b", elements=("Logging",),
                  deadline_budget_ms=10.0, per_attempt_timeout_ms=20.0)
            .build()
        )
        findings = [
            d for d in analyze(graph).diagnostics if d.code == "ADN602"
        ]
        assert any("per attempt" in d.message for d in findings)

    def test_budget_too_thin_for_downstream_hops(self):
        graph = (
            GraphBuilder("g")
            .edge("a", "b", elements=("Logging",), deadline_budget_ms=1.5)
            .edge("b", "c", elements=("Logging",))
            .edge("c", "d", elements=("Logging",))
            .build()
        )
        findings = [
            d for d in analyze(graph).diagnostics if d.code == "ADN602"
        ]
        assert any("downstream hop" in d.message for d in findings)

    def test_demo_budgets_are_feasible(self):
        for graph in (bookinfo_graph(), hotel_mesh_graph()):
            assert "ADN602" not in codes(analyze(graph).diagnostics)


class TestAdn603DeepCoverage:
    def test_deep_retry_without_breaker_or_timeout(self):
        graph = (
            GraphBuilder("g")
            .edge("a", "b", elements=("Logging",), deadline_budget_ms=20.0)
            .edge("b", "c", elements=("Logging",),
                  deadline_budget_ms=10.0, max_attempts=2)
            .build()
        )
        findings = [
            d for d in analyze(graph).diagnostics if d.code == "ADN603"
        ]
        assert len(findings) == 1
        assert findings[0].element == "b->c"

    def test_covered_deep_retry_is_clean(self):
        graph = (
            GraphBuilder("g")
            .edge("a", "b", elements=("Logging",), deadline_budget_ms=20.0)
            .edge("b", "c", elements=("Logging",),
                  deadline_budget_ms=10.0, max_attempts=2,
                  per_attempt_timeout_ms=4.0, breaker=True)
            .build()
        )
        assert "ADN603" not in codes(analyze(graph).diagnostics)

    def test_entry_edges_are_exempt(self):
        graph = (
            GraphBuilder("g")
            .edge("a", "b", elements=("Logging",),
                  deadline_budget_ms=20.0, max_attempts=2)
            .build()
        )
        assert "ADN603" not in codes(analyze(graph).diagnostics)


class TestAdn604FateCoherence:
    def test_unknown_hash_field(self):
        graph = (
            GraphBuilder("g")
            .edge("a", "b", elements=("Logging",), deadline_budget_ms=10.0,
                  admission=True, hash_fields=("session",))
            .build()
        )
        findings = [
            d for d in analyze(graph).diagnostics if d.code == "ADN604"
        ]
        assert any("'session'" in d.message for d in findings)

    def test_sibling_admission_edges_must_agree(self):
        graph = (
            GraphBuilder("g")
            .edge("a", "b", elements=("Logging",), deadline_budget_ms=10.0,
                  admission=True, hash_fields=("username",))
            .edge("a", "c", elements=("Logging",), deadline_budget_ms=10.0,
                  admission=True, hash_fields=("obj_id",))
            .build()
        )
        findings = [
            d for d in analyze(graph).diagnostics if d.code == "ADN604"
        ]
        assert len(findings) == 1
        assert findings[0].element == "a"

    def test_agreeing_siblings_are_clean(self):
        assert "ADN604" not in codes(analyze(hotel_mesh_graph()).diagnostics)


class TestAdn605StateEscalation:
    def test_rmw_element_on_two_edges(self):
        graph = (
            GraphBuilder("g")
            .edge("a", "b", elements=("GlobalQuota",),
                  deadline_budget_ms=10.0)
            .edge("a", "c", elements=("GlobalQuota",),
                  deadline_budget_ms=10.0)
            .build()
        )
        findings = [
            d for d in analyze(graph).diagnostics if d.code == "ADN605"
        ]
        assert len(findings) == 1
        assert findings[0].element == "GlobalQuota"
        assert "usage" in findings[0].message

    def test_single_edge_rmw_is_fine(self):
        graph = (
            GraphBuilder("g")
            .edge("a", "b", elements=("GlobalQuota",),
                  deadline_budget_ms=10.0)
            .build()
        )
        assert "ADN605" not in codes(analyze(graph).diagnostics)

    def test_append_only_state_on_many_edges_is_fine(self):
        # Logging state is APPEND, not read-modify-write
        assert "ADN605" not in codes(analyze(hotel_mesh_graph()).diagnostics)


CORRUPTING_ELEMENTS = """
element Corrupt {
    on request { SELECT input.*, 'oops' AS obj_id FROM input; }
    on response { SELECT * FROM input; }
}
element ObjMath {
    on request { SELECT * FROM input WHERE input.obj_id - 1 >= 0; }
    on response { SELECT * FROM input; }
}
"""


class TestAdn606Interprocedural:
    def program(self):
        return validate_program(
            load_stdlib().merged(parse(CORRUPTING_ELEMENTS)),
            schema=MESH_SCHEMA,
        )

    def test_caller_environment_surfaces_downstream_fault(self):
        graph = (
            GraphBuilder("t")
            .edge("a", "b", elements=("Corrupt",))
            .edge("b", "c", elements=("ObjMath",))
            .build()
        )
        analysis = analyze(graph, program=self.program())
        findings = [
            d for d in analysis.diagnostics if d.code == "ADN606"
        ]
        assert len(findings) == 1
        assert findings[0].severity is Severity.ERROR
        assert "guaranteed to fault" in findings[0].message
        assert "caller actually delivers" in findings[0].message
        # the delivered entry environment narrowed obj_id to str
        from repro.dsl.schema import FieldType

        entry = analysis.edges[("b", "c")].entry_env
        assert entry["obj_id"].types == frozenset({FieldType.STR})

    def test_same_chain_is_clean_against_the_schema_alone(self):
        graph = (
            GraphBuilder("t")
            .edge("a", "b", elements=("ObjMath",))
            .build()
        )
        analysis = analyze(graph, program=self.program())
        assert "ADN606" not in codes(analysis.diagnostics)

    def test_demo_graphs_are_interprocedurally_clean(self):
        for graph in (bookinfo_graph(), hotel_mesh_graph()):
            assert analyze(graph).diagnostics == []


class TestAdn600SpecDiagnostics:
    def test_missing_file(self):
        graph, diags = load_graph_spec("examples/no_such_topology.json")
        assert graph is None
        assert codes(diags) == ["ADN600"]
        assert diags[0].severity is Severity.ERROR

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "topo.json"
        path.write_text("{not json")
        graph, diags = load_graph_spec(str(path))
        assert graph is None
        assert codes(diags) == ["ADN600"]
        assert "JSON" in diags[0].message

    def test_structurally_broken_spec(self, tmp_path):
        path = tmp_path / "topo.json"
        path.write_text('{"name": "g", "edges": [{"src": "a"}]}')
        graph, diags = load_graph_spec(str(path))
        assert graph is None
        assert codes(diags) == ["ADN600"]
        assert diags[0].path == str(path)

    def test_unknown_element_carries_the_edge(self):
        graph = GraphBuilder("g").edge("a", "b", elements=("Ghost",)).build()
        diags = check_chain_resolution(
            graph, mesh_program(), MESH_SCHEMA, path="topo.json"
        )
        assert codes(diags) == ["ADN600"]
        assert diags[0].element == "a->b"
        assert "Ghost" in diags[0].message

    def test_cli_never_raises_on_malformed_specs(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["graph", str(bad), "--check"]) == 1
        assert "ADN600" in capsys.readouterr().err


class TestGraphDeadFields:
    def test_bookinfo_shrinks_declared_edges(self):
        plan = eliminate_dead_fields_graph(
            bookinfo_graph(), mesh_program(), MESH_SCHEMA
        )
        assert set(plan.shrunk_edges()) == {
            ("productpage", "details"),
            ("reviews", "ratings"),
        }
        details = plan.changes[("productpage", "details")]
        assert set(details.removed_wire) == {
            "obj_id", "priority", "username"
        }
        assert details.bytes_after < details.bytes_before
        assert plan.bytes_saved() > 0

    def test_every_rewritten_edge_is_validated(self):
        plan = eliminate_dead_fields_graph(
            bookinfo_graph(), mesh_program(), MESH_SCHEMA
        )
        for change in plan.changes.values():
            if change.removals:
                assert change.verdict is not None
                assert change.verdict.ok is not False

    def test_undeclared_mesh_does_not_shrink(self):
        plan = eliminate_dead_fields_graph(
            hotel_mesh_graph(), mesh_program(), MESH_SCHEMA
        )
        assert plan.shrunk_edges() == []

    def test_pass_manager_reports_the_shrink(self):
        plan, reports = GraphPassManager().run(
            bookinfo_graph(), mesh_program(), MESH_SCHEMA
        )
        report = next(r for r in reports if r.name == "graph_dead_fields")
        assert report.rewrites == 2
        assert report.ir_size_after < report.ir_size_before
        assert report.legality_ok
        assert plan.edge_app_reads()[("productpage", "details")] == (
            frozenset({"payload"})
        )


class TestRetryStormExample:
    def test_example_spec_fires_the_documented_rules(self):
        graph, diags = load_graph_spec("examples/retry_storm.graph.json")
        assert graph is not None and diags == []
        analysis = analyze(graph)
        seen = set(codes(analysis.diagnostics))
        assert {"ADN601", "ADN603", "ADN604"} <= seen
        assert analysis.worst_amplification == 27.0

    def test_example_fails_the_cli_gate(self, capsys):
        assert main([
            "graph", "examples/retry_storm.graph.json",
            "--check", "--no-place",
        ]) == 1
        out = capsys.readouterr().out
        assert "ADN601" in out
        assert "ADN604" in out

    def test_bookinfo_example_spec_is_clean(self, capsys):
        assert main([
            "graph", "examples/bookinfo.graph.json",
            "--check", "--no-place", "--fail-on", "warning",
        ]) == 0


class TestDslGraphFlowRules:
    STORM_APP = """
app storm {
    service frontend;
    service cart;
    service checkout;
    service payment;
    chain frontend -> cart { Logging, Retry }
    chain cart -> checkout { Logging, Retry }
    chain checkout -> payment { Logging, Retry }
}
"""

    def test_adn601_on_stacked_retry_filters(self):
        from repro.lint import LintOptions, lint_source

        result = lint_source(
            self.STORM_APP,
            options=LintOptions(schema=MESH_SCHEMA),
        )
        findings = [
            d for d in result.diagnostics if d.code == "ADN601"
        ]
        # the stdlib Retry filter allows 4 attempts; 4*4=16 crosses the
        # 8x bound at the second chain, once
        assert len(findings) == 1
        assert "16x" in findings[0].message

    def test_single_chain_apps_are_exempt(self):
        from repro.lint import LintOptions, lint_source

        result = lint_source(
            """
app ok {
    service a;
    service b;
    chain a -> b { Logging, Retry }
}
""",
            options=LintOptions(schema=MESH_SCHEMA),
        )
        assert "ADN601" not in codes(result.diagnostics)


class TestCliExitCodeParity:
    """Satellite: ``lint``, ``check`` and ``graph --check`` must agree —
    same exit code for text and json, nonzero exactly at --fail-on."""

    STORM = "examples/retry_storm.graph.json"
    BOOKINFO = "examples/bookinfo.graph.json"

    def run_both_formats(self, argv, capsys):
        text_code = main(argv)
        capsys.readouterr()
        json_code = main(argv + ["--format", "json"])
        payload = json.loads(capsys.readouterr().out)
        assert text_code == json_code
        return text_code, payload

    def test_graph_check_parity_failing(self, capsys):
        code, payload = self.run_both_formats(
            ["graph", self.STORM, "--check", "--no-place"], capsys
        )
        assert code == 1
        assert payload["ok"] is False
        assert payload["analysis"]["worst_amplification"] == 27.0

    def test_graph_check_parity_threshold(self, capsys):
        # warnings only (ADN603/604/405) once the amplification bound is
        # not exceeded -> fail-on error passes, fail-on warning fails
        code, payload = self.run_both_formats(
            ["graph", self.BOOKINFO, "--check", "--no-place",
             "--fail-on", "warning"], capsys
        )
        assert code == 0
        assert payload["ok"] is True

    def test_check_graph_parity(self, capsys, tmp_path):
        code, payload = self.run_both_formats(
            ["check", DEMO_DSL, "--graph", self.STORM], capsys
        )
        assert code == 1
        assert payload["ok"] is False
        assert any(
            d["code"] == "ADN601" for d in payload["graph"]
        )

    def test_check_graph_passing(self, capsys):
        code, payload = self.run_both_formats(
            ["check", DEMO_DSL, "--graph", self.BOOKINFO], capsys
        )
        assert code == 0
        assert payload["ok"] is True

    def test_lint_parity_unchanged(self, capsys):
        code, payload = self.run_both_formats(["lint", DEMO_DSL], capsys)
        assert code == 0
        assert isinstance(payload, list)

    def test_all_three_agree_on_malformed_spec(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        graph_code = main(["graph", str(bad), "--check"])
        capsys.readouterr()
        check_code = main(["check", DEMO_DSL, "--graph", str(bad)])
        capsys.readouterr()
        assert graph_code == check_code == 1


NONDET_ELEMENTS = """
element Drifting {
    state cache_tab (obj_id: int KEY, stamp: float);
    on request {
        INSERT INTO cache_tab SELECT input.obj_id, now() FROM input;
        SELECT * FROM input;
    }
    on response { SELECT * FROM input; }
}
element SeqEcho {
    var seq: int = 0;
    on request {
        SET seq = seq + 1;
        SELECT input.*, seq AS obj_id FROM input;
    }
    on response { SELECT * FROM input; }
}
"""


def nondet_program():
    return validate_program(
        load_stdlib().merged(parse(NONDET_ELEMENTS)), schema=MESH_SCHEMA
    )


class TestAdn700Effects:
    """Spec-side ADN700 family: effect summaries against topology."""

    def test_double_charge_example_fires_adn700(self):
        graph, diags = load_graph_spec("examples/double_charge.graph.json")
        assert graph is not None and diags == []
        analysis = analyze(graph)
        errors = [
            d for d in analysis.diagnostics if d.code == "ADN700"
        ]
        assert errors, "Metrics under a retrying edge must be an error"
        assert {d.element for d in errors} == {"Metrics"}
        assert all(d.severity is Severity.ERROR for d in errors)

    def test_double_charge_fires_adn701_on_fanout(self):
        graph, _ = load_graph_spec("examples/double_charge.graph.json")
        warnings = [
            d for d in analyze(graph).diagnostics if d.code == "ADN701"
        ]
        assert any(d.element == "GlobalQuota" for d in warnings)

    def test_double_charge_example_fails_the_cli_gate(self, capsys):
        assert main([
            "graph", "examples/double_charge.graph.json",
            "--check", "--no-place",
        ]) == 1
        assert "ADN700" in capsys.readouterr().out

    def test_non_retrying_edge_is_exempt_from_adn700(self):
        graph = (
            GraphBuilder("g")
            .edge("a", "b", elements=("Metrics",), deadline_budget_ms=10.0)
            .build()
        )
        assert "ADN700" not in codes(analyze(graph).diagnostics)

    def test_rpc_keyed_logging_never_fires_adn700(self):
        graph = (
            GraphBuilder("g")
            .edge("a", "b", elements=("Logging",), deadline_budget_ms=10.0,
                  max_attempts=3, per_attempt_timeout_ms=3.0, breaker=True)
            .build()
        )
        assert "ADN700" not in codes(analyze(graph).diagnostics)

    def test_adn702_on_nondeterministic_keyed_insert(self):
        graph = (
            GraphBuilder("g")
            .edge("a", "b", elements=("Drifting",), deadline_budget_ms=10.0)
            .build()
        )
        findings = [
            d
            for d in analyze(graph, nondet_program()).diagnostics
            if d.code == "ADN702"
        ]
        assert len(findings) == 1
        assert findings[0].element == "Drifting"
        assert "diverge" in findings[0].message

    def test_adn703_on_retry_visible_read(self):
        graph = (
            GraphBuilder("g")
            .edge("a", "b", elements=("SeqEcho",), deadline_budget_ms=10.0,
                  max_attempts=3, per_attempt_timeout_ms=3.0, breaker=True)
            .build()
        )
        findings = [
            d
            for d in analyze(graph, nondet_program()).diagnostics
            if d.code == "ADN703"
        ]
        assert len(findings) == 1
        assert findings[0].element == "SeqEcho"
        assert "'obj_id'" in findings[0].message

    def test_adn703_quiet_without_retries(self):
        graph = (
            GraphBuilder("g")
            .edge("a", "b", elements=("SeqEcho",), deadline_budget_ms=10.0)
            .build()
        )
        assert "ADN703" not in codes(
            analyze(graph, nondet_program()).diagnostics
        )

    def test_demo_graphs_have_no_adn700_errors(self):
        for graph in (bookinfo_graph(), hotel_mesh_graph()):
            errors = [
                d
                for d in analyze(graph).diagnostics
                if d.code == "ADN700" and d.severity is Severity.ERROR
            ]
            assert errors == []


class TestAdn604EntryEdges:
    """Satellite edge case: hash_fields declared on an entry edge."""

    def test_unknown_hash_field_on_entry_edge(self):
        graph = (
            GraphBuilder("g")
            .edge("gw", "b", elements=("Logging",), deadline_budget_ms=10.0,
                  admission=True, hash_fields=("session",))
            .build()
        )
        findings = [
            d for d in analyze(graph).diagnostics if d.code == "ADN604"
        ]
        assert any("'session'" in d.message for d in findings)

    def test_entry_fanout_with_disagreeing_hashes(self):
        """The sibling-coherence check applies at the entry service too:
        its fan-out legs shed against the same inbound request."""
        graph = (
            GraphBuilder("g")
            .edge("gw", "b", elements=("Logging",), deadline_budget_ms=10.0,
                  admission=True, hash_fields=("username",))
            .edge("gw", "c", elements=("Logging",), deadline_budget_ms=10.0,
                  admission=True, hash_fields=("obj_id",))
            .build()
        )
        findings = [
            d for d in analyze(graph).diagnostics if d.code == "ADN604"
        ]
        assert len(findings) == 1
        assert findings[0].element == "gw"

    def test_valid_hash_on_single_entry_edge_is_clean(self):
        graph = (
            GraphBuilder("g")
            .edge("gw", "b", elements=("Logging",), deadline_budget_ms=10.0,
                  admission=True, hash_fields=("username",))
            .build()
        )
        assert "ADN604" not in codes(analyze(graph).diagnostics)


class TestAdn605ParallelFanout:
    """Satellite edge case: RMW element on two parallel fan-out edges
    of ONE parent (vs the sequential two-hop placement)."""

    def test_parallel_siblings_fire_once_naming_both_edges(self):
        graph = (
            GraphBuilder("g")
            .edge("parent", "left", elements=("GlobalQuota",),
                  deadline_budget_ms=10.0)
            .edge("parent", "right", elements=("GlobalQuota",),
                  deadline_budget_ms=10.0)
            .build()
        )
        findings = [
            d for d in analyze(graph).diagnostics if d.code == "ADN605"
        ]
        assert len(findings) == 1
        message = findings[0].message
        assert "parent->left" in message and "parent->right" in message

    def test_sequential_hops_fire_too(self):
        graph = (
            GraphBuilder("g")
            .edge("a", "b", elements=("GlobalQuota",),
                  deadline_budget_ms=10.0)
            .edge("b", "c", elements=("GlobalQuota",),
                  deadline_budget_ms=10.0)
            .build()
        )
        findings = [
            d for d in analyze(graph).diagnostics if d.code == "ADN605"
        ]
        assert len(findings) == 1

    def test_parallel_fanout_also_raises_adn701(self):
        """The same placement is order-dependent at runtime: the
        effect-level ADN701 fires alongside the state-copy ADN605."""
        graph = (
            GraphBuilder("g")
            .edge("parent", "left", elements=("GlobalQuota",),
                  deadline_budget_ms=10.0)
            .edge("parent", "right", elements=("GlobalQuota",),
                  deadline_budget_ms=10.0)
            .build()
        )
        seen = set(codes(analyze(graph).diagnostics))
        assert {"ADN605", "ADN701"} <= seen


class TestDiagnosticHygiene:
    """Satellite: cross-variant dedupe + stable output ordering."""

    def test_analysis_output_is_sorted_and_exact_dupe_free(self):
        from repro.lint.diagnostics import sort_key

        graph, _ = load_graph_spec("examples/retry_storm.graph.json")
        diagnostics = analyze(graph).diagnostics
        assert [sort_key(d) for d in diagnostics] == sorted(
            sort_key(d) for d in diagnostics
        )
        exact = [
            (d.path, d.line, d.column, d.code, d.element, d.message)
            for d in diagnostics
        ]
        assert len(exact) == len(set(exact))

    def test_cross_variant_codes_collapse_per_element(self):
        graph, _ = load_graph_spec("examples/retry_storm.graph.json")
        diagnostics = analyze(graph).diagnostics
        from repro.lint.diagnostics import CROSS_VARIANT_CODES

        keyed = [
            (d.code, d.element)
            for d in diagnostics
            if d.code in CROSS_VARIANT_CODES and d.element
        ]
        assert len(keyed) == len(set(keyed))

    def test_dedupe_prefers_higher_severity_variant(self):
        from repro.lint.diagnostics import Diagnostic, dedupe_diagnostics

        dsl_side = Diagnostic(
            code="ADN601", severity=Severity.WARNING,
            message="dsl wording", path="a.adn", element="storm",
        )
        spec_side = Diagnostic(
            code="ADN601", severity=Severity.ERROR,
            message="spec wording", path="a.adn", element="storm",
        )
        kept = dedupe_diagnostics([dsl_side, spec_side])
        assert kept == [spec_side]

    def test_unrelated_codes_never_collapse(self):
        from repro.lint.diagnostics import Diagnostic, dedupe_diagnostics

        first = Diagnostic(
            code="ADN700", severity=Severity.ERROR,
            message="edge one", path="g.json", element="Metrics",
        )
        second = Diagnostic(
            code="ADN700", severity=Severity.ERROR,
            message="edge two", path="g.json", element="Metrics",
        )
        assert len(dedupe_diagnostics([first, second])) == 2
