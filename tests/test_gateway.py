"""Ingress/egress gateway and application-peering tests (paper §7)."""

import pytest

from repro.compiler.headers import build_layout
from repro.dsl import FieldType, RpcSchema
from repro.net.wire import AdnWireCodec
from repro.runtime.gateway import (
    EgressGateway,
    IngressGateway,
    downshift_transfer,
    peer_translate,
    peering_savings,
)
from repro.runtime.message import make_request

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)


def sample_message():
    return make_request(
        SCHEMA,
        src="A.0",
        dst="B",
        method="get",
        rpc_id=7,
        payload=b"external data",
        username="usr2",
        obj_id=42,
    )


def layout_for(*names, schema=SCHEMA):
    types = dict(schema.all_fields())
    return build_layout({name: types[name] for name in names})


class TestGatewayRoundTrip:
    def test_egress_then_ingress_preserves_tuple(self):
        message = sample_message()
        egress = EgressGateway(SCHEMA, authority="B")
        ingress = IngressGateway(SCHEMA)
        grpc_bytes = egress.translate_out(message)
        restored = ingress.translate_in(grpc_bytes)
        for field in ("rpc_id", "method", "kind", "status",
                      "payload", "username", "obj_id"):
            assert restored[field] == message[field], field
        assert ingress.translated == 1
        assert egress.translated == 1

    def test_ingress_parses_external_grpc(self):
        from repro.net.http2 import encode_grpc_message, default_grpc_headers
        from repro.net.serialization import ProtoCodec

        codec = ProtoCodec(SCHEMA)
        payload = codec.encode({"payload": b"x", "obj_id": 3})
        headers = default_grpc_headers("put", "B")
        headers["x-rpc-id"] = "99"
        data = encode_grpc_message(headers, payload)
        tuple_row = IngressGateway(SCHEMA).translate_in(data)
        assert tuple_row["method"] == "put"
        assert tuple_row["rpc_id"] == 99
        assert tuple_row["obj_id"] == 3
        assert tuple_row["username"] is None

    def test_gateway_costs_positive(self):
        assert IngressGateway(SCHEMA).cost_us() > 0
        assert EgressGateway(SCHEMA).cost_us() > 0


class TestPeering:
    def test_translation_carries_shared_fields(self):
        sender = AdnWireCodec(
            layout_for("rpc_id", "dst", "src", "kind", "obj_id", "payload")
        )
        receiver = AdnWireCodec(
            layout_for("rpc_id", "dst", "src", "kind", "obj_id")
        )
        message = sample_message()
        encoded, report = peer_translate(sender, receiver, message)
        decoded = receiver.decode(encoded)
        assert decoded["obj_id"] == 42
        assert report.fields_dropped == ("payload",)

    def test_no_drops_when_receiver_superset(self):
        sender = AdnWireCodec(layout_for("rpc_id", "obj_id"))
        receiver = AdnWireCodec(layout_for("rpc_id", "obj_id", "payload"))
        _encoded, report = peer_translate(sender, receiver, sample_message())
        assert report.fields_dropped == ()

    def test_downshift_round_trips_fields(self):
        sender = AdnWireCodec(
            layout_for("rpc_id", "dst", "src", "kind", "obj_id", "payload")
        )
        receiver = AdnWireCodec(layout_for("rpc_id", "obj_id", "payload"))
        encoded, _report = downshift_transfer(
            sender, receiver, SCHEMA, sample_message()
        )
        decoded = receiver.decode(encoded)
        assert decoded["payload"] == b"external data"

    def test_peering_cheaper_than_downshift(self):
        sender_layout = layout_for(
            "rpc_id", "dst", "src", "kind", "status", "obj_id", "payload"
        )
        receiver_layout = layout_for(
            "rpc_id", "dst", "src", "kind", "status", "obj_id", "payload"
        )
        savings = peering_savings(
            sender_layout, receiver_layout, SCHEMA, sample_message()
        )
        # fewer bytes between the apps and far less CPU: no wrapped-stack
        # parse/serialize in the middle
        assert savings["byte_ratio"] > 1.5
        assert savings["cpu_ratio"] > 3.0

    def test_peering_savings_shape(self):
        savings = peering_savings(
            layout_for("rpc_id", "obj_id"),
            layout_for("rpc_id", "obj_id"),
            SCHEMA,
            sample_message(),
        )
        assert set(savings) == {
            "peered_bytes",
            "downshift_bytes",
            "peered_cpu_us",
            "downshift_cpu_us",
            "byte_ratio",
            "cpu_ratio",
        }
