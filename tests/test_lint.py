"""The ``adn-lint`` framework: engine, rule catalog, demo file, CLI."""

import json

import pytest

from repro.cli import main
from repro.control.placement import ClusterSpec
from repro.lint import (
    LintOptions,
    Severity,
    all_rules,
    lint_file,
    lint_source,
)

DEMO = "examples/lint_demo.adn"


def codes_of(result):
    return {d.code for d in result.diagnostics}


def find(result, code):
    return [d for d in result.diagnostics if d.code == code]


class TestRuleCatalog:
    def test_codes_are_stable_and_documented(self):
        rules = all_rules()
        codes = [r.code for r in rules]
        assert codes == sorted(codes)
        assert len(codes) == len(set(codes))
        for registered in rules:
            assert registered.code.startswith("ADN")
            assert registered.doc, f"{registered.code} has no docstring"

    def test_expected_rules_present(self):
        codes = {r.code for r in all_rules()}
        assert {
            "ADN201", "ADN202", "ADN203", "ADN204", "ADN205",
            "ADN301", "ADN302", "ADN303", "ADN310", "ADN401", "ADN402",
            "ADN403", "ADN404", "ADN405", "ADN406",
            "ADN700", "ADN701", "ADN702", "ADN703",
        } <= codes

    def test_every_registered_rule_is_in_the_docs_table(self):
        """The consolidated catalog in docs/linting.md must stay in
        lockstep with the registry."""
        with open("docs/linting.md") as handle:
            docs = handle.read()
        table_rows = {
            line.split("|")[1].strip()
            for line in docs.splitlines()
            if line.startswith("| ADN")
        }
        missing = [
            r.code for r in all_rules() if r.code not in table_rows
        ]
        assert missing == [], (
            f"rules missing from the docs/linting.md catalog: {missing}"
        )


class TestExplain:
    def test_every_registered_rule_has_an_example(self):
        from repro.lint.explain import missing_examples

        assert missing_examples() == []

    def test_explain_text_carries_code_severity_and_doc(self):
        from repro.lint.explain import explain_rule

        for registered in all_rules():
            text = explain_rule(registered.code)
            assert text is not None
            assert registered.code in text
            assert registered.severity.value in text
            assert "Minimal triggering example:" in text

    def test_explain_is_case_insensitive(self):
        from repro.lint.explain import explain_rule

        assert explain_rule("adn301") is not None

    def test_unknown_code_returns_none(self):
        from repro.lint.explain import explain_rule

        assert explain_rule("ADN999") is None

    def test_cli_explain_known_rule(self, capsys):
        assert main(["lint", "--explain", "ADN700"]) == 0
        out = capsys.readouterr().out
        assert "ADN700" in out and "non-idempotent-under-retry" in out

    def test_cli_explain_unknown_rule(self, capsys):
        assert main(["lint", "--explain", "ADN999"]) == 1
        assert "unknown rule" in capsys.readouterr().err

    def test_cli_explain_needs_no_files(self, capsys):
        """--explain must not require positional lint targets."""
        assert main(["lint", "--explain", "ADN301"]) == 0


class TestFrontEndCapture:
    def test_syntax_error_is_adn101(self):
        result = lint_source("element Broken { on request { SELECT; } }")
        (diagnostic,) = result.diagnostics
        assert diagnostic.code == "ADN101"
        assert diagnostic.severity is Severity.ERROR
        assert diagnostic.line == 1

    def test_validation_error_is_adn102_with_span(self):
        result = lint_source(
            "element Bad {\n"
            "    on request {\n"
            "        SELECT * FROM nosuch;\n"
            "    }\n"
            "}\n"
        )
        (diagnostic,) = result.diagnostics
        assert diagnostic.code == "ADN102"
        assert (diagnostic.line, diagnostic.column) == (3, 9)

    def test_one_bad_element_does_not_mask_the_rest(self):
        result = lint_source(
            "element Bad { on request { SELECT * FROM nosuch; } }\n"
            "element AlsoDead {\n"
            "    state t (x: int);\n"
            "    on request { SELECT * FROM input; }\n"
            "}\n"
        )
        assert {"ADN102", "ADN202"} <= codes_of(result)

    def test_clean_element_is_quiet(self):
        result = lint_source(
            "element Clean { on request { SELECT * FROM input; } }"
        )
        assert result.diagnostics == []


class TestDeadRules:
    def test_unused_table_adn202(self):
        result = lint_source(
            "element E {\n"
            "    state ghost (x: int);\n"
            "    on request { SELECT * FROM input; }\n"
            "}\n"
        )
        (diagnostic,) = find(result, "ADN202")
        assert (diagnostic.line, diagnostic.column) == (2, 5)

    def test_silent_handler_adn204(self):
        result = lint_source(
            "element Blackhole {\n"
            "    state log (ts: float);\n"
            "    on request {\n"
            "        INSERT INTO log SELECT now() FROM input;\n"
            "    }\n"
            "}\n"
        )
        assert find(result, "ADN204")

    def test_write_only_var_adn205(self):
        result = lint_source(
            "element E {\n"
            "    var n: int = 0;\n"
            "    on request {\n"
            "        SET n = 7;\n"
            "        SELECT * FROM input;\n"
            "    }\n"
            "}\n"
        )
        (diagnostic,) = find(result, "ADN205")
        assert diagnostic.line == 2

    def test_append_only_table_not_flagged_write_only(self):
        result = lint_source(
            "element E {\n"
            "    state APPEND log (ts: float);\n"
            "    on request {\n"
            "        INSERT INTO log SELECT now() FROM input;\n"
            "        SELECT * FROM input;\n"
            "    }\n"
            "}\n"
        )
        assert not find(result, "ADN201")


class TestStateRaceRules:
    def test_partitioned_table_adn303_hint(self):
        result = lint_source(
            "element P {\n"
            "    state sess (user: str KEY, n: int);\n"
            "    on request {\n"
            "        UPDATE sess SET n = 99\n"
            "            WHERE sess.user == input.username;\n"
            "        SELECT * FROM input;\n"
            "    }\n"
            "}\n"
        )
        (diagnostic,) = find(result, "ADN303")
        assert diagnostic.severity is Severity.HINT
        assert not find(result, "ADN301")


class TestPlacementRules:
    def test_no_feasible_processor_adn401(self):
        # 'mandatory' excludes the app binary; with no engine, sidecars,
        # kernel, SmartNIC, or switch, nothing can host the element.
        options = LintOptions(
            cluster=ClusterSpec(
                engine_available=False,
                sidecars_available=False,
                kernel_offload=False,
            )
        )
        result = lint_source(
            "element M {\n"
            "    meta { mandatory: true; }\n"
            "    on request { SELECT * FROM input; }\n"
            "}\n",
            options=options,
        )
        (diagnostic,) = find(result, "ADN401")
        assert diagnostic.severity is Severity.ERROR
        assert diagnostic.line == 1

    def test_feasible_with_default_cluster(self):
        result = lint_source(
            "element M {\n"
            "    meta { mandatory: true; }\n"
            "    on request { SELECT * FROM input; }\n"
            "}\n"
        )
        assert not find(result, "ADN401")

    def test_contradictory_colocation_adn402(self):
        result = lint_source(
            "element Enc {\n"
            "    meta { position: sender; }\n"
            "    on request { SELECT * FROM input; }\n"
            "}\n"
            "app A {\n"
            "    service x;\n"
            "    service y;\n"
            "    chain x -> y { Enc }\n"
            "    constrain Enc colocate receiver;\n"
            "}\n"
        )
        (diagnostic,) = find(result, "ADN402")
        assert diagnostic.severity is Severity.ERROR
        assert diagnostic.line == 9

    # the contains() read is what makes this read-modify-write: a
    # pure "hits + 1" counter would classify as commutative
    RMW_COUNTER = (
        "element Tally {{\n"
        "{meta}"
        "    state t (k: str KEY, hits: int);\n"
        "    on request {{\n"
        "        INSERT INTO t SELECT input.username, 0 FROM input\n"
        "            WHERE NOT contains(t, input.username);\n"
        "        UPDATE t SET hits = hits + 1 WHERE k == input.username;\n"
        "        SELECT * FROM input;\n"
        "    }}\n"
        "}}\n"
        "app A {{\n"
        "    service x;\n"
        "    service y;\n"
        "    chain x -> y {{ Tally }}\n"
        "}}\n"
    )

    def test_unrecoverable_state_adn403(self):
        result = lint_source(self.RMW_COUNTER.format(meta=""))
        (diagnostic,) = find(result, "ADN403")
        assert diagnostic.severity is Severity.WARNING
        assert "read-modify-write" in diagnostic.message
        assert "checkpoint" in diagnostic.fix

    def test_checkpoint_meta_silences_adn403(self):
        result = lint_source(
            self.RMW_COUNTER.format(
                meta="    meta { checkpoint: true; }\n"
            )
        )
        assert not find(result, "ADN403")

    def test_replicable_state_no_adn403(self):
        # append-only logging commutes across replicas: no warning
        result = lint_source(
            "element Log {\n"
            "    state log_t (entry: str) APPEND ONLY;\n"
            "    on request {\n"
            "        INSERT INTO log_t SELECT input.username FROM input;\n"
            "        SELECT * FROM input;\n"
            "    }\n"
            "}\n"
            "app A {\n"
            "    service x;\n"
            "    service y;\n"
            "    chain x -> y { Log }\n"
            "}\n"
        )
        assert not find(result, "ADN403")

    def test_unplaced_element_no_adn403(self):
        # the warning is about placement: an element no chain uses is
        # not reported
        result = lint_source(self.RMW_COUNTER.format(meta="").split("app ")[0])
        assert not find(result, "ADN403")


class TestOverloadRules:
    """ADN404: retries without a deadline budget amplify overload."""

    UNBUDGETED = (
        "filter Eager {\n"
        "    meta { max_retries: 5; timeout_ms: 10.0; }\n"
        "    use operator retry;\n"
        "}\n"
    )

    def test_retry_without_deadline_adn404(self):
        result = lint_source(self.UNBUDGETED)
        (diagnostic,) = find(result, "ADN404")
        assert diagnostic.severity is Severity.WARNING
        assert "Eager" in diagnostic.message
        assert "deadline_budget_ms" in diagnostic.fix
        # a real span: the filter's own declaration site
        assert diagnostic.line >= 1 and diagnostic.column >= 1

    def test_deadline_budget_silences_adn404(self):
        result = lint_source(
            "filter Patient {\n"
            "    meta { max_retries: 5; timeout_ms: 10.0;"
            " deadline_budget_ms: 50.0; }\n"
            "    use operator retry;\n"
            "}\n"
        )
        assert not find(result, "ADN404")

    def test_non_retry_filters_are_quiet(self):
        result = lint_source(
            "filter JustTimeout {\n"
            "    meta { timeout_ms: 25.0; }\n"
            "    use operator timeout;\n"
            "}\n"
        )
        assert not find(result, "ADN404")


class TestDemoFile:
    """The acceptance-criteria file: >= 4 distinct codes including one
    state-race and one dead-state finding, with real positions."""

    @pytest.fixture(scope="class")
    def result(self):
        return lint_file(DEMO)

    def test_at_least_four_distinct_codes(self, result):
        assert len(codes_of(result)) >= 4

    def test_dead_state_findings(self, result):
        audit = [
            d for d in find(result, "ADN201") if "'audit'" in d.message
        ]
        assert audit and (audit[0].line, audit[0].column) == (13, 9)
        false_arm = find(result, "ADN203")
        assert false_arm and (false_arm[0].line, false_arm[0].column) == (16, 9)

    def test_state_race_findings(self, result):
        quota = find(result, "ADN301")
        assert quota and (quota[0].line, quota[0].column) == (14, 9)
        seq = find(result, "ADN302")
        assert seq and seq[0].line == 17  # where seq is read back

    def test_cross_element_finding(self, result):
        pair = find(result, "ADN310")
        assert any("Logging and Acl" in d.message for d in pair)
        assert all(d.severity is Severity.HINT for d in pair)

    def test_spans_point_at_real_source(self, result):
        lines = open(DEMO).read().splitlines()
        for diagnostic in result.diagnostics:
            assert diagnostic.line >= 1
            text = lines[diagnostic.line - 1]
            assert len(text) >= diagnostic.column

    def test_fails_on_warning_not_error(self, result):
        assert result.fails(Severity.WARNING)
        assert not result.fails(Severity.ERROR)


class TestStdlibClean:
    def test_stdlib_has_no_errors(self):
        from repro.dsl.stdlib import STDLIB_SOURCES

        for name, source in STDLIB_SOURCES.items():
            result = lint_source(source, path=f"<stdlib:{name}>")
            errors = [
                d for d in result.diagnostics
                if d.severity is Severity.ERROR
            ]
            assert not errors, f"{name}: {errors}"


class TestLintCli:
    def test_demo_passes_at_error_threshold(self, capsys):
        assert main(["lint", DEMO]) == 0
        out = capsys.readouterr().out
        assert "ADN301" in out and "finding(s)" in out

    def test_demo_fails_at_warning_threshold(self, capsys):
        assert main(["lint", DEMO, "--fail-on", "warning"]) == 1

    def test_json_format(self, capsys):
        assert main(["lint", DEMO, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        diagnostics = payload[0]["diagnostics"]
        codes = {d["code"] for d in diagnostics}
        assert len(codes) >= 4
        assert all(d["line"] >= 1 for d in diagnostics)

    def test_stdlib_flag_error_clean(self, capsys):
        assert main(["lint", "--stdlib"]) == 0

    def test_syntax_error_fails(self, tmp_path, capsys):
        bad = tmp_path / "bad.adn"
        bad.write_text("element Broken { on request { SELECT; } }")
        assert main(["lint", str(bad)]) == 1
        assert "ADN101" in capsys.readouterr().out


class TestCheckJson:
    def test_check_json_ok(self, capsys):
        assert main(["check", DEMO, "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["elements"] == ["LintDemo"]

    def test_check_json_failure_carries_position(self, tmp_path, capsys):
        bad = tmp_path / "bad.adn"
        bad.write_text(
            "element Bad {\n    on request { SELECT * FROM nosuch; }\n}\n"
        )
        assert main(["check", str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is False
        assert payload["error"]["line"] == 2
