"""Baseline stack tests: plain gRPC, gRPC+Envoy mesh, hand-written mRPC
modules."""

import random

import pytest

from repro.baselines import (
    AclConfig,
    AclRule,
    EnvoyMeshStack,
    FaultConfig,
    GrpcStack,
    HAND_MODULES,
    HandAclModule,
    HandFaultModule,
    HandLoggingModule,
    LoggingConfig,
    RUST_LOC,
    hand_module_loc,
    tcp_wire_bytes,
)
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.ir import ElementInstance, analyze_element, build_element_ir
from repro.runtime.message import reset_rpc_ids
from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster

from conftest import make_rpc

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)


def element_irs(*names, registry=None):
    program = load_stdlib(schema=SCHEMA)
    irs = []
    for name in names:
        ir = build_element_ir(program.elements[name])
        analyze_element(ir, registry)
        irs.append(ir)
    return irs


class TestGrpcStack:
    def test_roundtrip(self):
        reset_rpc_ids()
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = GrpcStack(sim, cluster, SCHEMA)
        client = ClosedLoopClient(sim, stack.call, concurrency=4, total_rpcs=100)
        metrics = client.run()
        assert metrics.completed == 100
        assert metrics.aborted == 0
        assert stack.wire_bytes_total > 0

    def test_encode_decode_preserves_app_fields(self):
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = GrpcStack(sim, cluster, SCHEMA)
        message = make_rpc(obj_id=42, username="u", payload=b"pp")
        headers, fields = stack.decode(stack.encode(message))
        assert fields["obj_id"] == 42
        assert fields["payload"] == b"pp"
        assert headers["x-username"] == "u"  # the §2 header-stuffing hack

    def test_unloaded_latency_order_of_magnitude(self):
        # plain gRPC RTT should land in the ~100-400us range typical of
        # LAN gRPC with small messages
        reset_rpc_ids()
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = GrpcStack(sim, cluster, SCHEMA)
        client = ClosedLoopClient(sim, stack.call, concurrency=1, total_rpcs=50)
        metrics = client.run()
        assert 80 < metrics.latency.median_us() < 400


class TestEnvoyMesh:
    def build(self, sim, cluster, registry):
        logging_ir, acl_ir, fault_ir = element_irs(
            "Logging", "Acl", "Fault", registry=registry
        )
        return EnvoyMeshStack(
            sim,
            cluster,
            SCHEMA,
            client_filters=[logging_ir, fault_ir],
            server_filters=[acl_ir],
            registry=registry,
        )

    def test_roundtrip_with_filters(self):
        reset_rpc_ids()
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = self.build(sim, cluster, FunctionRegistry())
        client = ClosedLoopClient(sim, stack.call, concurrency=8, total_rpcs=300)
        metrics = client.run()
        assert metrics.completed == 300
        assert 10 <= metrics.aborted <= 80  # ACL denials + faults

    def test_four_traversals_per_ok_rpc(self):
        reset_rpc_ids()
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        registry = FunctionRegistry(rng=random.Random(1))
        stack = self.build(sim, cluster, registry)
        process = sim.process(
            stack.call(payload=b"x", username="usr2", obj_id=1)
        )
        outcome = sim.run_until_complete(process)
        assert outcome.ok
        assert stack.client_sidecar.traversals == 2
        assert stack.server_sidecar.traversals == 2

    def test_client_side_abort_never_crosses_wire(self):
        reset_rpc_ids()
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        registry = FunctionRegistry()
        logging_ir, acl_ir, fault_ir = element_irs(
            "Logging", "Acl", "Fault", registry=registry
        )
        # put the ACL on the *client* sidecar so denials abort locally
        stack = EnvoyMeshStack(
            sim,
            cluster,
            SCHEMA,
            client_filters=[acl_ir],
            server_filters=[],
            registry=registry,
        )
        process = sim.process(
            stack.call(payload=b"x", username="usr1", obj_id=1)
        )
        outcome = sim.run_until_complete(process)
        assert outcome.aborted_by == "Acl"
        assert stack.wire_bytes_total == 0
        assert stack.server_sidecar.traversals == 0

    def test_mesh_slower_than_plain_grpc(self):
        def grpc_run():
            reset_rpc_ids()
            sim = Simulator()
            cluster = two_machine_cluster(sim)
            stack = GrpcStack(sim, cluster, SCHEMA)
            client = ClosedLoopClient(
                sim, stack.call, concurrency=1, total_rpcs=50
            )
            return client.run().latency.median_us()

        def mesh_run():
            reset_rpc_ids()
            sim = Simulator()
            cluster = two_machine_cluster(sim)
            stack = self.build(sim, cluster, FunctionRegistry())
            client = ClosedLoopClient(
                sim, stack.call, concurrency=1, total_rpcs=50
            )
            return client.run().latency.median_us()

        assert mesh_run() > 2.5 * grpc_run()

    def test_tcp_wire_bytes(self):
        assert tcp_wire_bytes(100) == 154
        assert tcp_wire_bytes(3000) == 3000 + 3 * 54


class TestHandModules:
    def test_logging_matches_generated_behaviour(self):
        module = HandLoggingModule(clock=lambda: 1.5)
        out = module.process(make_rpc(rpc_id=9), "request")
        assert len(out) == 1
        module.process(make_rpc(rpc_id=9, kind="response"), "response")
        entries = module.log_entries()
        assert [e[1] for e in entries] == ["request", "response"]
        assert entries[0][0] == 1.5

    def test_logging_buffer_bounded(self):
        config = LoggingConfig(max_buffered_entries=10, flush_every=100)
        module = HandLoggingModule(config=config)
        for i in range(50):
            module.process(make_rpc(rpc_id=i), "request")
        assert len(module.buffer) <= 10
        assert module.dropped_entries == 40

    def test_logging_flush_batches(self):
        config = LoggingConfig(flush_every=5)
        module = HandLoggingModule(config=config)
        for i in range(12):
            module.process(make_rpc(rpc_id=i), "request")
        assert len(module.flushed) == 10
        assert len(module.buffer) == 2

    def test_acl_matches_stdlib_semantics(self):
        module = HandAclModule()
        assert module.process(make_rpc(username="usr2"), "request")
        assert module.process(make_rpc(username="usr1"), "request") == []
        assert module.process(make_rpc(username="nobody"), "request") == []
        assert module.process(make_rpc(kind="response"), "response")
        assert module.allowed == 1
        assert module.denied == 2

    def test_acl_rule_management(self):
        module = HandAclModule(AclConfig(rules=[AclRule("a", "W")]))
        assert module.process(make_rpc(username="a"), "request")
        module.remove_rule("a")
        assert module.process(make_rpc(username="a"), "request") == []
        module.add_rule("b", "W")
        assert module.process(make_rpc(username="b"), "request")

    def test_fault_rate(self):
        module = HandFaultModule(
            FaultConfig(abort_probability=0.02), rng=random.Random(5)
        )
        dropped = sum(
            1
            for i in range(2000)
            if not module.process(make_rpc(rpc_id=i), "request")
        )
        assert 20 <= dropped <= 70
        assert module.injected == dropped

    def test_fault_config_validation(self):
        with pytest.raises(ValueError):
            FaultConfig(abort_probability=1.5)

    def test_hand_vs_generated_differential(self):
        """Hand modules behave identically to the DSL elements for ACL
        (the deterministic one)."""
        registry = FunctionRegistry()
        (acl_ir,) = element_irs("Acl", registry=registry)
        generated = ElementInstance(acl_ir, registry)
        hand = HandAclModule()
        for i in range(50):
            user = ("usr1", "usr2", "ghost")[i % 3]
            rpc = make_rpc(rpc_id=i, username=user)
            generated_out = [
                {k: v for k, v in row.items() if isinstance(k, str)}
                for row in generated.process(dict(rpc), "request")
            ]
            hand_out = hand.process(dict(rpc), "request")
            assert bool(generated_out) == bool(hand_out), user

    def test_loc_comparison_shape(self):
        # DSL sources are tens of lines; hand Python is a few times more;
        # the paper's Rust is two orders of magnitude more
        from repro.dsl.stdlib import stdlib_loc

        for name in ("Logging", "Acl", "Fault"):
            assert name in HAND_MODULES
            dsl = stdlib_loc(name)
            hand = hand_module_loc(name)
            rust = RUST_LOC[name]
            assert dsl <= 30
            assert hand > dsl
            assert rust >= 10 * dsl
