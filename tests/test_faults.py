"""Fault injection, failure detection, and recovery (repro.faults).

Covers the subsystem bottom-up: fault plans as data, the retry policy's
timeout/backoff/deadline machinery, the phi-accrual detector, the
injector's effect on the substrate (links, processors, machines), the
checkpointer's warm standby, and the end-to-end acceptance scenario —
crash the machine hosting a stateful element mid-workload and watch the
system detect, re-place, restore, and finish with zero RPC loss.
"""

import random

import pytest

from repro.compiler.compiler import AdnCompiler
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.dsl.ast_nodes import ChainDecl, ColumnDef, StateDecl
from repro.faults import (
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultPlanError,
    HeartbeatFailureDetector,
    default_crash_plan,
    random_single_fault_plan,
    run_recovery_scenario,
)
from repro.faults.plan import (
    LINK_LATENCY,
    LINK_LOSS,
    LINK_PARTITION,
    MACHINE_CRASH,
    PROCESSOR_HANG,
    PROCESSOR_SLOWDOWN,
)
from repro.runtime import AdnMrpcStack, RetryPolicy, RetryStats
from repro.runtime.filters import wrap_retry_policy
from repro.runtime.message import RpcOutcome, reset_rpc_ids
from repro.runtime.telemetry import ProcessorReport, TelemetryCollector
from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster
from repro.state.checkpoint import Checkpointer, CheckpointTiming
from repro.state.table import StateStore

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)


def build_stack(retry_policy=None, elements=("Logging", "Acl")):
    reset_rpc_ids()
    registry = FunctionRegistry()
    program = load_stdlib(schema=SCHEMA)
    compiler = AdnCompiler(registry=registry)
    chain = compiler.compile_chain(
        ChainDecl(src="A", dst="B", elements=tuple(elements)), program, SCHEMA
    )
    sim = Simulator()
    cluster = two_machine_cluster(sim)
    stack = AdnMrpcStack(
        sim, cluster, chain, SCHEMA, registry, retry_policy=retry_policy
    )
    return sim, cluster, stack


def run_workload(sim, stack, total=200, concurrency=8, seed=0, limit_s=60.0):
    client = ClosedLoopClient(
        sim,
        stack.call,
        concurrency=concurrency,
        total_rpcs=total,
        seed=seed,
    )
    return client.run(limit_s=limit_s)


def sleep(sim, duration_s):
    yield sim.timeout(duration_s)


def generous_policy(seed=0):
    """Outlives every transient fault used in these tests."""
    return RetryPolicy(
        max_attempts=20,
        per_attempt_timeout_ms=5.0,
        base_backoff_ms=1.0,
        backoff_multiplier=2.0,
        max_backoff_ms=10.0,
        seed=seed,
    )


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            events=[
                FaultEvent(at_s=0.2, kind=LINK_LOSS, magnitude=0.3,
                           duration_s=0.1),
                FaultEvent(at_s=0.1, kind=MACHINE_CRASH, target="server-host"),
            ],
            seed=7,
        )
        back = FaultPlan.from_json(plan.to_json())
        assert back == plan

    def test_events_sorted_by_time(self):
        plan = FaultPlan(
            events=[
                FaultEvent(at_s=0.5, kind=LINK_PARTITION),
                FaultEvent(at_s=0.1, kind=MACHINE_CRASH, target="m"),
            ]
        )
        assert [event.at_s for event in plan.events] == [0.1, 0.5]

    def test_unknown_kind_rejected(self):
        with pytest.raises(FaultPlanError, match="unknown fault kind"):
            FaultEvent(at_s=0.0, kind="meteor_strike")

    def test_machine_kinds_need_target(self):
        with pytest.raises(FaultPlanError, match="target machine"):
            FaultEvent(at_s=0.0, kind=MACHINE_CRASH)

    def test_loss_magnitude_is_probability(self):
        with pytest.raises(FaultPlanError, match="probability"):
            FaultEvent(at_s=0.0, kind=LINK_LOSS, magnitude=1.5)

    def test_slowdown_is_multiplier(self):
        with pytest.raises(FaultPlanError, match="multiplier"):
            FaultEvent(at_s=0.0, kind=PROCESSOR_SLOWDOWN, target="m",
                       magnitude=0.5)

    def test_negative_time_rejected(self):
        with pytest.raises(FaultPlanError, match=">= 0"):
            FaultEvent(at_s=-1.0, kind=LINK_PARTITION)

    def test_bad_json_rejected(self):
        with pytest.raises(FaultPlanError, match="JSON"):
            FaultPlan.from_json("{not json")
        with pytest.raises(FaultPlanError, match="events"):
            FaultPlan.from_json('{"seed": 3}')

    def test_random_plan_deterministic(self):
        machines = ["client-host", "server-host"]
        a = random_single_fault_plan(9, 1.0, machines)
        b = random_single_fault_plan(9, 1.0, machines)
        c = random_single_fault_plan(10, 1.0, machines)
        assert a == b
        assert a != c
        (event,) = a.events
        assert event.duration_s is not None  # transient by construction


class TestRetryPolicy:
    def test_backoff_grows_and_caps(self):
        policy = RetryPolicy(
            base_backoff_ms=1.0, backoff_multiplier=2.0, max_backoff_ms=4.0,
            jitter=0.0,
        )
        rng = random.Random(0)
        backoffs = [policy.backoff_s(a, rng) for a in (1, 2, 3, 4, 5)]
        assert backoffs == [1e-3, 2e-3, 4e-3, 4e-3, 4e-3]

    def test_jitter_is_seeded(self):
        policy = RetryPolicy(jitter=0.5)
        a = [policy.backoff_s(1, random.Random(3)) for _ in range(3)]
        b = [policy.backoff_s(1, random.Random(3)) for _ in range(3)]
        assert a == b

    def test_timeout_converts_blackhole_to_retry(self):
        """A call parked forever only completes because the per-attempt
        timeout converts silence into a retryable abort."""
        sim = Simulator()
        calls = {"n": 0}

        def flaky(**fields):
            calls["n"] += 1
            if calls["n"] < 3:
                yield sim.event()  # blackhole: never fires
            yield sim.timeout(1e-4)
            return RpcOutcome(
                request=dict(fields),
                response={"status": "ok", "kind": "response"},
                issued_at=sim.now,
                completed_at=sim.now,
            )

        stats = RetryStats()
        shaped = wrap_retry_policy(
            sim, flaky,
            RetryPolicy(max_attempts=5, per_attempt_timeout_ms=1.0),
            stats=stats,
        )
        outcome = sim.run_until_complete(sim.process(shaped()))
        assert outcome.ok
        assert stats.timeouts == 2
        assert stats.retries == 2
        assert stats.attempts == 3

    def test_attempt_budget_exhausts(self):
        sim = Simulator()

        def blackhole(**fields):
            yield sim.event()

        shaped = wrap_retry_policy(
            sim, blackhole,
            RetryPolicy(max_attempts=3, per_attempt_timeout_ms=1.0),
        )
        outcome = sim.run_until_complete(sim.process(shaped()))
        assert outcome.aborted_by == "Timeout"
        assert shaped.stats.attempts == 3

    def test_deadline_budget(self):
        sim = Simulator()

        def blackhole(**fields):
            yield sim.event()

        shaped = wrap_retry_policy(
            sim, blackhole,
            RetryPolicy(
                max_attempts=100,
                per_attempt_timeout_ms=1.0,
                base_backoff_ms=1.0,
                deadline_budget_ms=5.0,
            ),
        )
        outcome = sim.run_until_complete(sim.process(shaped()))
        assert outcome.aborted_by == "DeadlineExceeded"
        assert sim.now <= 5.1e-3
        assert shaped.stats.deadline_exceeded == 1

    def test_stable_rpc_id_across_attempts(self):
        sim = Simulator()
        seen = []

        def flaky(**fields):
            seen.append(fields["rpc_id"])
            if len(seen) < 3:
                yield sim.event()
            yield sim.timeout(1e-5)
            return RpcOutcome(
                request=dict(fields),
                response={"status": "ok", "kind": "response"},
                issued_at=sim.now,
                completed_at=sim.now,
            )

        shaped = wrap_retry_policy(
            sim, flaky, RetryPolicy(max_attempts=5, per_attempt_timeout_ms=1.0)
        )
        sim.run_until_complete(sim.process(shaped()))
        assert len(seen) == 3
        assert len(set(seen)) == 1  # one logical call, one id

    def test_non_retryable_abort_returns_immediately(self):
        sim = Simulator()

        def denied(**fields):
            yield sim.timeout(1e-5)
            return RpcOutcome(
                request=dict(fields),
                response={"status": "aborted:Acl", "kind": "response"},
                issued_at=sim.now,
                completed_at=sim.now,
                aborted_by="Acl",
            )

        shaped = wrap_retry_policy(
            sim, denied, RetryPolicy(max_attempts=5, per_attempt_timeout_ms=1.0)
        )
        outcome = sim.run_until_complete(sim.process(shaped()))
        assert outcome.aborted_by == "Acl"
        assert shaped.stats.attempts == 1


def report_at(machine, at_s):
    return ProcessorReport(
        at_s=at_s,
        platform="mrpc",
        machine=machine,
        elements=("X",),
        window_s=0.01,
        rpcs_in_window=1,
        drops_in_window=0,
        utilization=0.1,
    )


class TestDetector:
    def test_silence_triggers_hard_timeout(self):
        sim = Simulator()
        detector = HeartbeatFailureDetector(sim, heartbeat_interval_s=0.01)
        detector.sink(report_at("m", 0.0))
        sim.run_until_complete(sim.process(sleep(sim, 0.05)))
        fresh = detector.check()
        assert [s.machine for s in fresh] == ["m"]
        assert fresh[0].silent_for_s >= detector.hard_timeout_s

    def test_regular_heartbeats_keep_phi_low(self):
        sim = Simulator()
        detector = HeartbeatFailureDetector(sim, heartbeat_interval_s=0.01)
        for tick in range(10):
            detector.sink(report_at("m", tick * 0.01))
        sim.run_until_complete(sim.process(sleep(sim, 0.095)))
        assert detector.phi("m") < detector.phi_threshold
        assert detector.check() == []

    def test_phi_grows_with_silence(self):
        sim = Simulator()
        detector = HeartbeatFailureDetector(sim, heartbeat_interval_s=0.01)
        for tick in range(5):
            detector.sink(report_at("m", tick * 0.01))
        sim.run_until_complete(sim.process(sleep(sim, 0.2)))
        early = detector.phi("m")
        sim.run_until_complete(sim.process(sleep(sim, 0.2)))
        assert detector.phi("m") > early

    def test_heartbeat_rehabilitates_suspect(self):
        sim = Simulator()
        detector = HeartbeatFailureDetector(sim, heartbeat_interval_s=0.01)
        detector.sink(report_at("m", 0.0))
        sim.run_until_complete(sim.process(sleep(sim, 0.05)))
        detector.check()
        assert "m" in detector.suspects
        detector.sink(report_at("m", sim.now))
        assert "m" not in detector.suspects

    def test_callbacks_fire_once_per_suspicion(self):
        sim = Simulator()
        detector = HeartbeatFailureDetector(sim, heartbeat_interval_s=0.01)
        fired = []
        detector.on_suspect(fired.append)
        detector.sink(report_at("m", 0.0))
        sim.run_until_complete(sim.process(sleep(sim, 0.05)))
        detector.check()
        detector.check()  # already suspect: no second callback
        assert len(fired) == 1


class TestInjectorLinkFaults:
    def test_partition_blackholes_then_recovers(self):
        policy = generous_policy()
        sim, cluster, stack = build_stack(retry_policy=policy)
        injector = FaultInjector(sim, cluster)
        injector.register_stack(stack)
        plan = FaultPlan(
            events=[
                FaultEvent(at_s=0.0005, kind=LINK_PARTITION, duration_s=0.01)
            ]
        )
        sim.process(injector.run(plan))
        metrics = run_workload(sim, stack, total=200, concurrency=4)
        assert metrics.completed == 200
        assert cluster.l2.frames_dropped > 0
        assert stack.rpcs_lost > 0
        assert stack.retry_stats.retries > 0
        actions = [(e.action, e.kind) for e in injector.timeline]
        assert ("inject", LINK_PARTITION) in actions
        assert ("revert", LINK_PARTITION) in actions

    def test_loss_is_seeded_and_survivable(self):
        def drops_for(plan_seed):
            policy = generous_policy()
            sim, cluster, stack = build_stack(retry_policy=policy)
            injector = FaultInjector(sim, cluster)
            injector.register_stack(stack)
            plan = FaultPlan(
                events=[
                    FaultEvent(
                        at_s=0.0, kind=LINK_LOSS, magnitude=0.2,
                        duration_s=0.05,
                    )
                ],
                seed=plan_seed,
            )
            sim.process(injector.run(plan))
            metrics = run_workload(sim, stack, total=150, concurrency=4)
            assert metrics.completed == 150
            assert cluster.l2.frames_dropped > 0
            return cluster.l2.frames_dropped

        assert drops_for(5) == drops_for(5)

    def test_latency_fault_slows_the_wire(self):
        def elapsed_with(extra_us):
            sim, cluster, stack = build_stack()
            if extra_us:
                injector = FaultInjector(sim, cluster)
                plan = FaultPlan(
                    events=[
                        FaultEvent(
                            at_s=0.0, kind=LINK_LATENCY, magnitude=extra_us
                        )
                    ]
                )
                sim.process(injector.run(plan))
            metrics = run_workload(sim, stack, total=100, concurrency=1)
            assert metrics.completed == 100
            return metrics.latency.median_us()

        assert elapsed_with(500.0) > elapsed_with(0.0) + 500.0


class TestInjectorProcessorFaults:
    def test_slowdown_multiplies_cost(self):
        def median_with(factor):
            sim, cluster, stack = build_stack()
            if factor:
                injector = FaultInjector(sim, cluster)
                injector.register_stack(stack)
                plan = FaultPlan(
                    events=[
                        FaultEvent(
                            at_s=0.0, kind=PROCESSOR_SLOWDOWN,
                            target="client-host", magnitude=factor,
                        )
                    ]
                )
                sim.process(injector.run(plan))
            metrics = run_workload(sim, stack, total=100, concurrency=1)
            assert metrics.completed == 100
            return metrics.latency.median_us()

        assert median_with(8.0) > median_with(0)

    def test_slowdown_reverts(self):
        sim, cluster, stack = build_stack()
        injector = FaultInjector(sim, cluster)
        injector.register_stack(stack)
        plan = FaultPlan(
            events=[
                FaultEvent(
                    at_s=0.0, kind=PROCESSOR_SLOWDOWN,
                    target="client-host", magnitude=4.0, duration_s=0.001,
                )
            ]
        )
        sim.process(injector.run(plan))
        run_workload(sim, stack, total=50, concurrency=1)
        for processor in stack.processors:
            assert processor.slowdown_factor == 1.0

    def test_hang_parks_rpcs_until_revert(self):
        policy = generous_policy()
        sim, cluster, stack = build_stack(retry_policy=policy)
        injector = FaultInjector(sim, cluster)
        injector.register_stack(stack)
        plan = FaultPlan(
            events=[
                FaultEvent(
                    at_s=0.0005, kind=PROCESSOR_HANG,
                    target="client-host", duration_s=0.02,
                )
            ]
        )
        sim.process(injector.run(plan))
        metrics = run_workload(sim, stack, total=150, concurrency=4)
        assert metrics.completed == 150
        assert stack.retry_stats.timeouts > 0
        for processor in stack.processors:
            assert processor.hang_event is None


class TestInjectorMachineFaults:
    def test_crash_blackholes_without_retries(self):
        """No retry policy: attempts lost to the crash stay silent
        forever, so the client never finishes — exactly the failure
        mode the per-attempt timeout exists to prevent."""
        from repro.errors import SimulationError

        sim, cluster, stack = build_stack()
        injector = FaultInjector(sim, cluster)
        injector.register_stack(stack)
        plan = FaultPlan(
            events=[
                FaultEvent(at_s=0.0005, kind=MACHINE_CRASH,
                           target="server-host")
            ]
        )
        sim.process(injector.run(plan))
        with pytest.raises(SimulationError, match="did not finish"):
            run_workload(sim, stack, total=100, concurrency=4, limit_s=0.05)
        assert stack.rpcs_lost > 0
        assert not cluster.machine_up("server-host")

    def test_restart_resets_element_instances(self):
        policy = generous_policy()
        sim, cluster, stack = build_stack(
            retry_policy=policy, elements=("Metrics",)
        )
        injector = FaultInjector(sim, cluster)
        injector.register_stack(stack)
        plan = FaultPlan(
            events=[
                FaultEvent(
                    at_s=0.002, kind=MACHINE_CRASH,
                    target="client-host", duration_s=0.01,
                )
            ]
        )
        sim.process(injector.run(plan))
        metrics = run_workload(sim, stack, total=300, concurrency=4)
        assert metrics.completed == 300
        assert cluster.machine_up("client-host")
        assert injector.crash_times == {"client-host": 0.002}
        # the restart wiped runtime state: Metrics counted only what ran
        # after the machine came back
        store = next(
            p.element_state("Metrics")
            for p in stack.processors
            if "Metrics" in p.segment.elements
        )
        counted = sum(r["hits"] for r in store.table("counters").rows())
        assert 0 < counted < 300  # pre-crash history was wiped


def simple_store():
    decl = StateDecl(
        name="t",
        columns=(
            ColumnDef("k", FieldType.INT, is_key=True),
            ColumnDef("v", FieldType.INT),
        ),
    )
    return StateStore([decl], {})


class TestCheckpointer:
    def test_restore_carries_pre_watch_rows(self):
        sim = Simulator()
        source = simple_store()
        for key in range(50):
            source.table("t").insert_values([key, 0])
        checkpointer = Checkpointer(sim, stream_interval_s=0.001)
        checkpointer.watch("elem", source)
        target = simple_store()
        report = sim.run_until_complete(
            sim.process(checkpointer.restore("elem", target))
        )
        assert report.rows_restored == 50
        assert report.deltas_replayed == 0
        assert len(target.table("t")) == 50

    def test_streaming_catches_later_writes(self):
        sim = Simulator()
        source = simple_store()
        checkpointer = Checkpointer(
            sim, stream_interval_s=0.001, fold_every=1000
        )
        checkpointer.watch("elem", source)

        def writer():
            for key in range(20):
                source.table("t").insert_values([key, key])
                yield sim.timeout(0.0005)

        sim.process(checkpointer.run(0.05))
        sim.run_until_complete(sim.process(writer()))
        sim.run(until=0.05)
        assert checkpointer.backlog("elem") == 20
        target = simple_store()
        report = sim.run_until_complete(
            sim.process(checkpointer.restore("elem", target))
        )
        assert report.deltas_replayed == 20
        assert len(target.table("t")) == 20

    def test_restore_cost_tracks_backlog_not_table_size(self):
        timing = CheckpointTiming()

        def restore_s(rows, backlog_writes):
            sim = Simulator()
            source = simple_store()
            for key in range(rows):
                source.table("t").insert_values([key, 0])
            checkpointer = Checkpointer(
                sim, stream_interval_s=0.001, fold_every=10**6, timing=timing
            )
            checkpointer.watch("elem", source)
            for key in range(backlog_writes):
                source.table("t").insert_values([key, 1])
            sim.run_until_complete(sim.process(checkpointer.run(0.002)))
            target = simple_store()
            report = sim.run_until_complete(
                sim.process(checkpointer.restore("elem", target))
            )
            return report.restore_s

        flat = {restore_s(rows, 10) for rows in (10, 1000, 5000)}
        assert len(flat) == 1  # table size never shows up in the blackout
        assert restore_s(100, 200) > restore_s(100, 10)

    def test_crash_loses_unstreamed_tail(self):
        sim = Simulator()
        source = simple_store()
        checkpointer = Checkpointer(sim, stream_interval_s=0.001)
        checkpointer.watch("elem", source)
        source.table("t").insert_values([1, 1])  # never streamed
        lost = checkpointer.mark_crashed("elem")
        assert lost == 1
        assert checkpointer.tail_writes_lost == 1
        target = simple_store()
        report = sim.run_until_complete(
            sim.process(checkpointer.restore("elem", target))
        )
        assert report.rows_restored == 0  # the tail write is really gone

    def test_dead_source_is_not_drained(self):
        sim = Simulator()
        source = simple_store()
        alive = {"up": True}
        checkpointer = Checkpointer(sim, stream_interval_s=0.001)
        checkpointer.watch("elem", source, live_of=lambda: alive["up"])
        alive["up"] = False
        source.table("t").insert_values([1, 1])
        sim.run_until_complete(sim.process(checkpointer.run(0.005)))
        assert checkpointer.backlog("elem") == 0  # nothing streamed


class TestTelemetryUnderFaults:
    """Satellite: the collector must survive crashed and deregistered
    processors mid-window."""

    def test_crashed_processor_is_skipped_not_sampled(self):
        sim, cluster, stack = build_stack()
        collector = TelemetryCollector(sim, interval_s=0.001)
        collector.register_stack(stack)
        run_workload(sim, stack, total=50, concurrency=4)
        cluster.machine("client-host").crash()
        samples = collector.sample()
        machines = {report.machine for report in samples}
        assert "client-host" not in machines
        assert collector.skipped_down > 0

    def test_deregister_mid_window_from_a_sink(self):
        sim, cluster, stack = build_stack()
        collector = TelemetryCollector(sim, interval_s=0.001)
        collector.register_stack(stack)

        def vicious_sink(report):
            collector.deregister_stack(stack)

        collector.add_sink(vicious_sink)
        run_workload(sim, stack, total=50, concurrency=4)
        samples = collector.sample()  # must not raise or double-count
        assert len(samples) <= 1
        assert collector.sample() == []  # everyone is gone now

    def test_deregister_unknown_processor_ignored(self):
        sim, cluster, stack = build_stack()
        collector = TelemetryCollector(sim)
        collector.deregister(stack.processors[0])  # never registered

    def test_reregister_keeps_baseline(self):
        sim, cluster, stack = build_stack()
        collector = TelemetryCollector(sim)
        collector.register_stack(stack)
        run_workload(sim, stack, total=100, concurrency=4)
        collector.register_stack(stack)  # idempotent: no baseline reset
        (report,) = [
            r for r in collector.sample() if r.machine == "client-host"
        ]
        assert report.rpcs_in_window >= 100


class TestRecoveryScenario:
    """The acceptance scenario: crash the machine hosting a stateful
    element mid-workload; detection, re-placement, restore, and retries
    must make the failure invisible to the workload."""

    @pytest.fixture(scope="class")
    def result(self):
        return run_recovery_scenario(seed=1, total_rpcs=2000)

    def test_no_silent_rpc_loss(self, result):
        assert result.metrics.completed == result.total_rpcs
        assert result.metrics.aborted == 0
        assert result.stack.rpcs_lost > 0  # the crash did bite

    def test_detector_fired_and_recovery_ran(self, result):
        report = result.report
        assert report is not None
        assert report.machine == "stats-host"
        assert report.detection_latency_s is not None
        assert 0 < report.detection_latency_s < 0.1
        assert report.unavailability_s < 0.1

    def test_element_moved_off_the_dead_machine(self, result):
        locations = result.stack.plan.element_locations()
        _, machine = locations["SessionTally"]
        assert machine != "stats-host"

    def test_resident_state_survived(self, result):
        report = result.report
        assert report.rows_restored >= result.table_rows
        residents = sum(
            1
            for row in result._tally_store().table("tally").rows()
            if str(row["username"]).startswith("resident")
        )
        assert residents == result.table_rows

    def test_duplicates_bounded_by_lost_attempts(self, result):
        assert (
            result.stack.duplicate_server_executions
            <= result.stack.rpcs_lost
        )

    def test_restore_blackout_not_table_sized(self, result):
        report = result.report
        # 2000 rows of table would cost ~3x the observed blackout under
        # any per-row copy; the restore paid backlog + fixed flip only
        per_row_copy_s = (
            result.table_rows
            * result.checkpointer.timing.per_delta_replay_us
            * 1e-6
        )
        assert report.restore_s < per_row_copy_s

    def test_deterministic_under_seed(self):
        def signature(result):
            report = result.report
            return (
                result.metrics.completed,
                result.metrics.aborted,
                result.metrics.elapsed_s,
                result.stack.rpcs_lost,
                tuple(sorted(result.stack.lost_by.items())),
                result.stack.duplicate_server_executions,
                tuple(result.timeline),
                report.suspected_at,
                report.recovered_at,
                report.rows_restored,
                report.deltas_replayed,
                report.restore_s,
                result.tally_hits(),
                result.metrics.latency.percentile(99),
            )

        a = signature(run_recovery_scenario(seed=4, total_rpcs=800))
        b = signature(run_recovery_scenario(seed=4, total_rpcs=800))
        c = signature(run_recovery_scenario(seed=5, total_rpcs=800))
        assert a == b
        assert a != c

    def test_tally_accounts_for_tail_loss_and_duplicates(self, result):
        """Hits = workload size − tail writes lost with the crashed
        memory + duplicate server executions that re-counted."""
        hits = result.tally_hits()
        lost_tail = result.checkpointer.tail_writes_lost
        duplicates = result.stack.duplicate_server_executions
        assert hits <= result.total_rpcs + duplicates
        assert hits >= result.total_rpcs - 2 * lost_tail
