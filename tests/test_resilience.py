"""Control-plane resilience (repro.control.resilience).

Leases and terms, the journaled warm-standby failover, epoch-fenced
configuration pushes, gray-failure scoring and post-partition detector
rehabilitation, the concurrent-fault plan builders, ADN610 fault-plan
diagnostics, and the seeded chaos soak — every scenario asserted
bit-identical under replay via ``ResilienceResult.signature()``.
"""

import dataclasses
import json

import pytest

from repro.control.resilience import (
    CTRL_A,
    CTRL_B,
    STATS_MACHINE,
    LeaseStore,
    RecoveryJournal,
    run_chaos_soak,
    run_chaos_trial,
    run_control_resilience_scenario,
)
from repro.errors import StaleEpochError
from repro.faults import (
    CONTROL_PARTITION,
    DATAPLANE_FAULT_KINDS,
    FAULT_KINDS,
    GRAY_DEGRADE,
    FaultEvent,
    FaultPlan,
    HeartbeatFailureDetector,
    controller_crash_during_failover_plan,
    double_crash_plan,
    load_fault_plan,
    partition_during_recovery_plan,
    random_multi_fault_plan,
    random_single_fault_plan,
)
from repro.runtime.telemetry import ProcessorReport
from repro.sim import Simulator


def sleep(sim, duration_s):
    yield sim.timeout(duration_s)


def advance(sim, duration_s):
    sim.run_until_complete(sim.process(sleep(sim, duration_s)))


# -- leases ------------------------------------------------------------------


class TestLeaseStore:
    def test_acquire_bumps_term_only_on_holder_change(self):
        sim = Simulator()
        lease = LeaseStore(sim, duration_s=0.03)
        assert lease.acquire("a") == 1
        # refreshing our own lease is not a leadership change
        assert lease.acquire("a") == 1
        assert lease.valid("a")

    def test_live_lease_blocks_other_nodes(self):
        sim = Simulator()
        lease = LeaseStore(sim, duration_s=0.03)
        lease.acquire("a")
        assert lease.acquire("b") is None
        assert not lease.valid("b")

    def test_renew_extends_only_while_valid(self):
        sim = Simulator()
        lease = LeaseStore(sim, duration_s=0.03)
        lease.acquire("a")
        advance(sim, 0.02)
        assert lease.renew("a")
        advance(sim, 0.02)
        assert lease.valid("a")  # the renew pushed expiry past here
        advance(sim, 0.02)
        assert not lease.renew("a")  # expired: must re-acquire

    def test_expired_reacquire_by_same_node_keeps_term(self):
        sim = Simulator()
        lease = LeaseStore(sim, duration_s=0.03)
        lease.acquire("a")
        advance(sim, 0.05)
        assert lease.acquire("a") == 1  # no takeover happened

    def test_takeover_after_expiry_bumps_term(self):
        sim = Simulator()
        lease = LeaseStore(sim, duration_s=0.03)
        lease.acquire("a")
        advance(sim, 0.05)
        assert lease.acquire("b") == 2
        assert lease.holder == "b"
        # the deposed node cannot renew under its old term
        assert not lease.renew("a")


# -- the recovery journal ----------------------------------------------------


class TestRecoveryJournal:
    def test_open_close_lifecycle(self):
        journal = RecoveryJournal()
        journal.open("m1", 0.5)
        journal.open("m2", 0.7)
        assert journal.open_entries() == [("m1", 0.5), ("m2", 0.7)]
        journal.close("m1")
        assert journal.open_entries() == [("m2", 0.7)]

    def test_reopen_updates_in_place(self):
        journal = RecoveryJournal()
        journal.open("m1", 0.5)
        journal.close("m1")
        journal.open("m1", 0.9)
        assert journal.open_entries() == [("m1", 0.9)]
        assert len(list(journal.table("recoveries").rows())) == 1

    def test_close_unknown_machine_is_a_noop(self):
        journal = RecoveryJournal()
        journal.close("never-opened")
        assert journal.open_entries() == []

    def test_speaks_the_state_store_protocol(self):
        # the checkpointer consumes tables/vars/table(); the journal
        # must satisfy all three so delta-log streaming Just Works
        journal = RecoveryJournal()
        assert "recoveries" in journal.tables
        assert journal.vars == {}
        assert journal.table("recoveries") is journal.tables["recoveries"]


# -- epoch fencing -----------------------------------------------------------


def build_stack():
    import random

    from repro.compiler.compiler import AdnCompiler
    from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
    from repro.dsl.ast_nodes import ChainDecl
    from repro.runtime import AdnMrpcStack
    from repro.runtime.message import reset_rpc_ids
    from repro.sim import two_machine_cluster

    schema = RpcSchema.of(
        "t",
        payload=FieldType.BYTES,
        username=FieldType.STR,
        obj_id=FieldType.INT,
    )
    reset_rpc_ids()
    registry = FunctionRegistry(rng=random.Random(0))
    program = load_stdlib(schema=schema)
    chain = AdnCompiler(registry=registry).compile_chain(
        ChainDecl(src="A", dst="B", elements=("Logging",)), program, schema
    )
    sim = Simulator()
    cluster = two_machine_cluster(sim)
    stack = AdnMrpcStack(sim, cluster, chain, schema, registry)
    return stack


class TestEpochFence:
    def test_newer_epoch_advances_the_fence(self):
        stack = build_stack()
        assert stack.config_epoch == 0
        stack.apply_plan(dataclasses.replace(stack.plan, epoch=1_000_001))
        assert stack.config_epoch == 1_000_001
        assert stack.stale_plans_rejected == 0

    def test_stale_epoch_is_rejected_and_counted(self):
        stack = build_stack()
        stack.apply_plan(dataclasses.replace(stack.plan, epoch=2_000_001))
        with pytest.raises(StaleEpochError):
            stack.apply_plan(dataclasses.replace(stack.plan, epoch=1_000_009))
        with pytest.raises(StaleEpochError):  # equal is stale too
            stack.apply_plan(dataclasses.replace(stack.plan, epoch=2_000_001))
        assert stack.stale_plans_rejected == 2
        assert stack.stale_plans_applied == 0
        assert stack.config_epoch == 2_000_001

    def test_fence_off_applies_and_counts_split_brain(self):
        stack = build_stack()
        stack.fence_epochs = False
        stack.apply_plan(dataclasses.replace(stack.plan, epoch=2_000_001))
        stack.apply_plan(dataclasses.replace(stack.plan, epoch=1_000_009))
        assert stack.stale_plans_applied == 1
        assert stack.stale_plans_rejected == 0

    def test_legacy_epoch_zero_plans_bypass_the_fence(self):
        stack = build_stack()
        stack.apply_plan(dataclasses.replace(stack.plan, epoch=0))
        stack.apply_plan(dataclasses.replace(stack.plan, epoch=0))
        assert stack.stale_plans_rejected == 0
        assert stack.stale_plans_applied == 0


# -- concurrent-fault plan builders ------------------------------------------


class TestFaultPlanBuilders:
    def test_fault_kind_universe(self):
        # the new control-plane kinds extend the catalog, but the
        # single-fault soak keeps the dataplane default so historical
        # seeds replay bit-identically
        assert set(DATAPLANE_FAULT_KINDS) < set(FAULT_KINDS)
        assert CONTROL_PARTITION in FAULT_KINDS
        assert GRAY_DEGRADE in FAULT_KINDS
        assert CONTROL_PARTITION not in DATAPLANE_FAULT_KINDS
        plan = random_single_fault_plan(seed=7, horizon_s=1.0,
                                        machines=["m1"])
        assert all(e.kind in DATAPLANE_FAULT_KINDS for e in plan.events)

    def test_random_multi_plan_is_deterministic_and_valid(self):
        a = random_multi_fault_plan(3, 1.0, ["m1", "m2"], events=5)
        b = random_multi_fault_plan(3, 1.0, ["m1", "m2"], events=5)
        assert a.events == b.events
        assert len(a.events) == 5
        assert a.validate() == []

    def test_random_multi_plan_can_overlap_distinct_faults(self):
        # with enough events some pair of distinct (kind, target)
        # windows overlaps — the point of the concurrent schedule
        plan = random_multi_fault_plan(1, 1.0, ["m1", "m2"], events=8)
        spans = [
            (e.at_s, e.at_s + (e.duration_s or 0.0), e.kind, e.target)
            for e in plan.events
        ]
        overlapping = any(
            a_start < b_end and b_start < a_end
            for i, (a_start, a_end, ak, at) in enumerate(spans)
            for (b_start, b_end, bk, bt) in spans[i + 1:]
            if (ak, at) != (bk, bt)
        )
        assert overlapping

    def test_double_crash_plan_overlaps_outages(self):
        plan = double_crash_plan(["m1", "m2"], at_s=0.01, stagger_s=0.005,
                                 outage_s=0.05)
        first, second = plan.events
        assert second.at_s < first.at_s + first.duration_s
        assert plan.validate() == []

    def test_partition_during_recovery_plan_shape(self):
        plan = partition_during_recovery_plan(
            "data", "leader", crash_at_s=0.01, partition_at_s=0.03,
            partition_for_s=0.06,
        )
        kinds = [e.kind for e in plan.events]
        assert kinds == ["machine_crash", CONTROL_PARTITION]
        assert plan.events[1].target == "leader"
        assert plan.validate() == []

    def test_controller_crash_during_failover_plan_shape(self):
        plan = controller_crash_during_failover_plan(
            "data", "leader", crash_at_s=0.01, leader_crash_at_s=0.03,
        )
        assert [e.target for e in plan.events] == ["data", "leader"]
        assert plan.events[1].duration_s is None  # leader stays dead
        assert plan.validate() == []


# -- ADN610: fault plans as diagnostics --------------------------------------


class TestLoadFaultPlanDiagnostics:
    def write(self, tmp_path, payload):
        path = tmp_path / "plan.json"
        path.write_text(
            payload if isinstance(payload, str) else json.dumps(payload)
        )
        return str(path)

    def assert_failed(self, plan, diagnostics):
        assert plan is None
        assert diagnostics
        for diagnostic in diagnostics:
            assert diagnostic.code == "ADN610"
            assert diagnostic.severity.value == "error"
            # span-free: renders with the path and 0:0, never a traceback
            text = diagnostic.format_text()
            assert text.startswith(f"{diagnostic.path}:0:0: error ADN610:")
            assert diagnostic.message in text

    def test_missing_file(self):
        plan, diagnostics = load_fault_plan("/nonexistent/plan.json")
        self.assert_failed(plan, diagnostics)
        assert "cannot read" in diagnostics[0].message

    def test_invalid_json(self, tmp_path):
        plan, diagnostics = load_fault_plan(
            self.write(tmp_path, "{not json")
        )
        self.assert_failed(plan, diagnostics)
        assert "invalid JSON" in diagnostics[0].message

    def test_missing_events_key(self, tmp_path):
        plan, diagnostics = load_fault_plan(self.write(tmp_path, {}))
        self.assert_failed(plan, diagnostics)

    def test_every_bad_event_reported_not_just_the_first(self, tmp_path):
        plan, diagnostics = load_fault_plan(self.write(tmp_path, {
            "events": [
                {"at_s": 0.1, "kind": "meteor_strike", "target": "m"},
                {"at_s": -1.0, "kind": "machine_crash", "target": "m"},
                {"kind": "machine_crash", "target": "m"},  # missing at_s
                "not-an-object",
            ],
        }))
        self.assert_failed(plan, diagnostics)
        text = " ".join(d.message for d in diagnostics)
        assert "events[0]" in text and "meteor_strike" in text
        assert "events[1]" in text and ">= 0" in text
        assert "events[2]" in text and "at_s" in text
        assert "events[3]" in text

    def test_overlapping_same_fault_rejected(self, tmp_path):
        plan, diagnostics = load_fault_plan(self.write(tmp_path, {
            "events": [
                {"at_s": 0.1, "kind": "processor_hang", "target": "m",
                 "duration_s": 0.2},
                {"at_s": 0.2, "kind": "processor_hang", "target": "m",
                 "duration_s": 0.2},
            ],
        }))
        self.assert_failed(plan, diagnostics)
        assert "overlap" in diagnostics[0].message

    def test_valid_plan_loads_clean(self, tmp_path):
        plan, diagnostics = load_fault_plan(self.write(tmp_path, {
            "seed": 9,
            "events": [
                {"at_s": 0.1, "kind": "machine_crash", "target": "m",
                 "duration_s": 0.05},
                {"at_s": 0.12, "kind": CONTROL_PARTITION, "target": "c",
                 "duration_s": 0.05},
                {"at_s": 0.2, "kind": GRAY_DEGRADE, "target": "m",
                 "duration_s": 0.1, "magnitude": 20.0},
            ],
        }))
        assert diagnostics == []
        assert plan is not None and plan.seed == 9
        assert len(plan.events) == 3


# -- detector: gray score and rehabilitation ---------------------------------


def latency_report(machine, at_s, service_ms):
    return ProcessorReport(
        at_s=at_s,
        platform="mrpc",
        machine=machine,
        elements=("X",),
        window_s=0.01,
        rpcs_in_window=5,
        drops_in_window=0,
        utilization=0.1,
        service_ms_per_rpc=service_ms,
    )


class TestGrayScore:
    def feed(self, detector, machine, samples):
        for tick, service_ms in enumerate(samples):
            detector.sink(latency_report(machine, tick * 0.01, service_ms))

    def test_fires_after_consecutive_hot_windows(self):
        sim = Simulator()
        detector = HeartbeatFailureDetector(
            sim, heartbeat_interval_s=0.01, gray_factor=3.0,
            gray_consecutive=3, gray_min_samples=5,
        )
        fired = []
        detector.on_suspect(fired.append)
        self.feed(detector, "m", [1.0] * 5 + [10.0, 10.0])
        assert fired == []  # streak of 2 < gray_consecutive
        detector.sink(latency_report("m", 0.07, 10.0))
        assert [s.kind for s in fired] == ["gray"]
        assert detector.suspects["m"].kind == "gray"

    def test_needs_priming_before_judging(self):
        sim = Simulator()
        detector = HeartbeatFailureDetector(
            sim, heartbeat_interval_s=0.01, gray_factor=3.0,
            gray_consecutive=1, gray_min_samples=5,
        )
        # hot from the first window: an unprimed baseline must not fire
        self.feed(detector, "m", [10.0] * 4)
        assert "m" not in detector.suspects

    def test_crash_only_detector_ignores_latency(self):
        sim = Simulator()
        detector = HeartbeatFailureDetector(
            sim, heartbeat_interval_s=0.01, gray_factor=0.0,
        )
        self.feed(detector, "m", [1.0] * 5 + [50.0] * 10)
        assert detector.suspects == {}

    def test_healthy_window_rehabilitates_gray(self):
        sim = Simulator()
        detector = HeartbeatFailureDetector(
            sim, heartbeat_interval_s=0.01, gray_factor=3.0,
            gray_consecutive=2, gray_min_samples=3,
        )
        self.feed(detector, "m", [1.0] * 3 + [10.0, 10.0])
        assert "m" in detector.suspects
        detector.sink(latency_report("m", 0.06, 1.0))
        assert "m" not in detector.suspects

    def test_heartbeat_does_not_rehabilitate_gray(self):
        # a gray machine keeps heartbeating — only a *healthy-latency*
        # window clears the suspicion
        sim = Simulator()
        detector = HeartbeatFailureDetector(
            sim, heartbeat_interval_s=0.01, gray_factor=3.0,
            gray_consecutive=2, gray_min_samples=3,
        )
        self.feed(detector, "m", [1.0] * 3 + [10.0, 10.0])
        assert "m" in detector.suspects
        detector.sink(latency_report("m", 0.06, 10.0))
        assert detector.suspects["m"].kind == "gray"


class TestDetectorRehabilitation:
    def test_expect_reprimes_after_partition_heal(self):
        # a machine silenced by a control partition was healthy all
        # along: without the re-prime, its stale arrival clock would
        # re-declare it dead on the very next poll after the heal
        sim = Simulator()
        detector = HeartbeatFailureDetector(sim, heartbeat_interval_s=0.01)
        detector.sink(latency_report("m", 0.0, 1.0))
        advance(sim, 0.05)
        assert [s.machine for s in detector.check()] == ["m"]
        # partition heals: the injector re-primes the detector
        detector.expect("m")
        assert "m" not in detector.suspects
        assert detector.check() == []  # the arrival clock restarted

    def test_expect_resets_gray_streak(self):
        sim = Simulator()
        detector = HeartbeatFailureDetector(
            sim, heartbeat_interval_s=0.01, gray_factor=3.0,
            gray_consecutive=3, gray_min_samples=3,
        )
        for tick, service_ms in enumerate([1.0] * 3 + [10.0, 10.0]):
            detector.sink(latency_report("m", tick * 0.01, service_ms))
        detector.expect("m")
        # the streak restarted: two more hot windows are not enough
        detector.sink(latency_report("m", 0.06, 10.0))
        detector.sink(latency_report("m", 0.07, 10.0))
        assert "m" not in detector.suspects

    def test_injector_reprimes_on_partition_revert(self):
        # end to end: run the scenario with only a CONTROL_PARTITION on
        # the stats host; the revert must re-prime the detector, so the
        # healthy machine is never recovered off of
        plan = FaultPlan(events=[
            FaultEvent(at_s=0.02, kind=CONTROL_PARTITION,
                       target=STATS_MACHINE, duration_s=0.01),
        ], seed=11)
        result = run_control_resilience_scenario(
            seed=11, total_rpcs=600, fault_plan=plan, horizon_s=0.5,
        )
        assert not result.timed_out
        assert result.reports == []  # nobody recovered a healthy host
        assert STATS_MACHINE not in result.detector.suspects
        assert result.goodput_fraction == 1.0


# -- failover scenarios ------------------------------------------------------


class TestFailoverScenarios:
    def crash_mid_recovery(self, standby):
        plan = controller_crash_during_failover_plan(
            STATS_MACHINE, CTRL_A, crash_at_s=0.01, leader_crash_at_s=0.032,
        )
        return run_control_resilience_scenario(
            seed=2, total_rpcs=1500, fault_plan=plan, standby=standby,
            run_limit_s=4.0,
        )

    def test_standby_resumes_the_orphaned_recovery(self):
        result = self.crash_mid_recovery(standby=True)
        assert not result.timed_out
        (failover,) = result.failovers
        assert failover.node == CTRL_B
        assert failover.term == 2
        assert STATS_MACHINE in failover.resumed
        assert failover.journal_rows_restored >= 1
        (report,) = result.reports
        assert report.machine == STATS_MACHINE
        assert result.abandoned_recoveries >= 1  # ctrl-a died mid-flight
        assert result.goodput_fraction >= 0.9

    def test_without_standby_the_mesh_is_orphaned(self):
        result = self.crash_mid_recovery(standby=False)
        assert result.timed_out
        assert result.reports == []
        assert result.failovers == []

    def test_partition_during_recovery_is_fenced(self):
        plan = partition_during_recovery_plan(
            STATS_MACHINE, CTRL_A, crash_at_s=0.01, partition_at_s=0.031,
            partition_for_s=0.06,
        )
        result = run_control_resilience_scenario(
            seed=3, total_rpcs=1500, fault_plan=plan,
        )
        # the healed stale leader's late push bounced off the fence
        assert result.stale_plans_rejected >= 1
        assert result.stale_plans_applied == 0
        assert result.goodput_fraction == 1.0

    def test_fence_off_demonstrates_split_brain(self):
        plan = partition_during_recovery_plan(
            STATS_MACHINE, CTRL_A, crash_at_s=0.01, partition_at_s=0.031,
            partition_for_s=0.06,
        )
        result = run_control_resilience_scenario(
            seed=3, total_rpcs=1500, fault_plan=plan, fence_epochs=False,
        )
        assert result.stale_plans_applied >= 1

    def test_overlapping_double_crash_recovers_both(self):
        plan = double_crash_plan(
            [STATS_MACHINE, CTRL_A], at_s=0.01, stagger_s=0.01,
            outage_s=0.08,
        )
        result = run_control_resilience_scenario(
            seed=6, total_rpcs=1500, fault_plan=plan, run_limit_s=4.0,
        )
        assert not result.timed_out
        machines = [report.machine for report in result.reports]
        assert STATS_MACHINE in machines
        assert result.goodput_fraction >= 0.7
        assert result.stale_plans_applied == 0

    @pytest.mark.parametrize("name", [
        "crash_during_failover", "partition_during_recovery",
        "double_crash",
    ])
    def test_replay_is_bit_identical(self, name):
        plans = {
            "crash_during_failover": controller_crash_during_failover_plan(
                STATS_MACHINE, CTRL_A, crash_at_s=0.01,
                leader_crash_at_s=0.032,
            ),
            "partition_during_recovery": partition_during_recovery_plan(
                STATS_MACHINE, CTRL_A, crash_at_s=0.01,
                partition_at_s=0.031, partition_for_s=0.06,
            ),
            "double_crash": double_crash_plan(
                [STATS_MACHINE, CTRL_A], at_s=0.01, stagger_s=0.01,
                outage_s=0.08,
            ),
        }
        runs = [
            run_control_resilience_scenario(
                seed=5, total_rpcs=800, fault_plan=plans[name],
                run_limit_s=4.0,
            )
            for _ in range(2)
        ]
        assert runs[0].signature() == runs[1].signature()


# -- the chaos soak ----------------------------------------------------------


class TestChaosSoak:
    def test_trial_replays_identically(self):
        a = run_chaos_trial(seed=104, total_rpcs=400)
        b = run_chaos_trial(seed=104, total_rpcs=400)
        assert a == b

    def test_soak_never_applies_a_stale_plan(self):
        soak = run_chaos_soak(trials=2, base_seed=100, total_rpcs=400)
        assert len(soak["trials"]) == 2
        assert soak["total_stale_applied"] == 0
        for trial in soak["trials"]:
            assert trial["seed"] >= 100
            assert 0.0 <= trial["goodput_fraction"] <= 1.0
            assert trial["signature"]
        assert soak["min_goodput_fraction"] <= 1.0
