"""Multi-chain apps: one controller managing several service pairs,
each with its own chain and placement (a microservice graph, not just a
client/server pair)."""

import pytest

from repro.control import AdnController, MiniKube
from repro.dsl import FieldType, RpcSchema
from repro.runtime.message import reset_rpc_ids
from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster

SCHEMA = RpcSchema.of(
    "shop", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)

APP = """
app Shop {
    service frontend;
    service cart replicas 2;
    service inventory replicas 3;
    chain frontend -> cart { Logging, Acl }
    chain cart -> inventory { LbKeyHash, Fault }
    constrain Acl outside_app;
}
"""


@pytest.fixture
def controller():
    kube = MiniKube()
    controller = AdnController(kube, SCHEMA)
    kube.apply_deployment("cart", 2)
    kube.apply_deployment("inventory", 3)
    kube.apply_adn_config("shop", APP, "Shop")
    return kube, controller


class TestMultiChain:
    def test_both_chains_installed(self, controller):
        _kube, ctrl = controller
        assert ("frontend", "cart") in ctrl.installed
        assert ("cart", "inventory") in ctrl.installed
        first = ctrl.installed[("frontend", "cart")].chain
        second = ctrl.installed[("cart", "inventory")].chain
        assert set(first.element_order) == {"Logging", "Acl"}
        assert set(second.element_order) == {"LbKeyHash", "Fault"}

    def test_chains_run_independently(self, controller):
        _kube, ctrl = controller
        reset_rpc_ids()
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        front_stack = ctrl.install_stack(sim, cluster, "frontend", "cart")
        metrics = ClosedLoopClient(
            sim, front_stack.call, concurrency=8, total_rpcs=300
        ).run()
        assert metrics.completed == 300

        # the second chain gets its own simulated hosts (a different
        # machine pair in the same DC)
        sim2 = Simulator()
        cluster2 = two_machine_cluster(sim2)
        reset_rpc_ids()
        cart_stack = ctrl.install_stack(sim2, cluster2, "cart", "inventory")
        metrics2 = ClosedLoopClient(
            sim2, cart_stack.call, concurrency=8, total_rpcs=300
        ).run()
        assert metrics2.completed == 300

    def test_lb_endpoints_match_each_service(self, controller):
        kube, ctrl = controller
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        reset_rpc_ids()
        stack = ctrl.install_stack(sim, cluster, "cart", "inventory")
        table = None
        for processor in stack.processors:
            if "LbKeyHash" in processor.segment.elements:
                table = processor.element_state("LbKeyHash").table("endpoints")
        assert table is not None
        assert sorted(row["replica"] for row in table.rows()) == [
            "inventory.1",
            "inventory.2",
            "inventory.3",
        ]

    def test_deployment_change_targets_right_chain(self, controller):
        kube, ctrl = controller
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        reset_rpc_ids()
        stack = ctrl.install_stack(sim, cluster, "cart", "inventory")
        kube.apply_deployment("inventory", 5)
        table = None
        for processor in stack.processors:
            if "LbKeyHash" in processor.segment.elements:
                table = processor.element_state("LbKeyHash").table("endpoints")
        assert len(table) == 5
        # scaling `cart` must not disturb the inventory LB
        kube.apply_deployment("cart", 4)
        assert len(table) == 5

    def test_per_chain_placement(self, controller):
        _kube, ctrl = controller
        first_plan = ctrl.installed[("frontend", "cart")].plan
        second_plan = ctrl.installed[("cart", "inventory")].plan
        assert first_plan is not second_plan
        assert first_plan.segments
        assert second_plan.segments
