"""Property-based tests for header layout invariants."""

import string

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.headers import (
    P4_PARSE_WINDOW_BYTES,
    STR_FIXED_WIDTH,
    build_layout,
    relayout_for_switch,
)
from repro.dsl.schema import FieldType
from repro.net.wire import AdnWireCodec

names = st.lists(
    st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10),
    min_size=1,
    max_size=12,
    unique=True,
)
types = st.sampled_from(list(FieldType))


@st.composite
def field_maps(draw):
    field_names = draw(names)
    return {name: draw(types) for name in field_names}


class TestLayoutProperties:
    @given(fields=field_maps())
    @settings(max_examples=100)
    def test_layout_covers_all_fields_once(self, fields):
        layout = build_layout(fields)
        assert sorted(layout.field_names) == sorted(fields)
        ids = [entry.field_id for entry in layout.fields]
        assert len(set(ids)) == len(ids)

    @given(fields=field_maps())
    @settings(max_examples=100)
    def test_fixed_fields_precede_variable(self, fields):
        layout = build_layout(fields)
        seen_variable = False
        for entry in layout.fields:
            if not entry.fixed:
                seen_variable = True
            else:
                assert not seen_variable, "fixed field after variable"

    @given(fields=field_maps())
    @settings(max_examples=100)
    def test_layout_is_order_independent(self, fields):
        forward = build_layout(fields)
        backward = build_layout(dict(reversed(list(fields.items()))))
        assert forward == backward

    @given(fields=field_maps())
    @settings(max_examples=60)
    def test_codec_roundtrip_of_zero_values(self, fields):
        layout = build_layout(fields)
        codec = AdnWireCodec(layout)
        decoded = codec.decode(codec.encode({}))
        assert set(decoded) == set(fields)

    @given(fields=field_maps())
    @settings(max_examples=100)
    def test_switch_relayout_promotes_read_strings(self, fields):
        str_fields = [n for n, t in fields.items() if t is FieldType.STR]
        layout = build_layout(fields)
        relaid = relayout_for_switch(layout, str_fields)
        for name in str_fields:
            assert relaid.field(name).fixed
        # non-read variable fields stay variable
        for name, field_type in fields.items():
            if field_type is FieldType.BYTES:
                assert not relaid.field(name).fixed

    @given(fields=field_maps())
    @settings(max_examples=60)
    def test_relayout_preserves_field_set(self, fields):
        layout = build_layout(fields)
        relaid = relayout_for_switch(layout, list(fields))
        assert sorted(relaid.field_names) == sorted(layout.field_names)

    @given(
        count=st.integers(min_value=1, max_value=24),
    )
    @settings(max_examples=50)
    def test_window_check_boundary(self, count):
        """Exactly the fields whose (offset + width) fit the window pass
        the offsets_within test."""
        fields = {f"f{i:02d}": FieldType.INT for i in range(count)}
        layout = build_layout(fields)
        for entry in layout.fields:
            fits = entry.offset + 8 <= P4_PARSE_WINDOW_BYTES
            assert layout.offsets_within([entry.name], P4_PARSE_WINDOW_BYTES) == fits

    def test_str_fixed_width_constant_sane(self):
        assert 8 <= STR_FIXED_WIDTH <= 64
