"""Property-based tests for the simulator and the backend/interpreter
equivalence on randomized RPCs."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.compiler.backends.python_backend import PythonBackend
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.ir.analysis import analyze_element
from repro.ir.builder import build_element_ir
from repro.ir.interp import ElementInstance
from repro.runtime.message import RpcOutcome
from repro.sim import ClosedLoopClient, Resource, Simulator

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)
PROGRAM = load_stdlib(schema=SCHEMA)

#: deterministic elements whose request handlers accept arbitrary inputs
DET_ELEMENTS = ["Acl", "LbKeyHash", "Metrics", "Router", "Encryption", "Cache"]


class TestBackendEquivalenceRandomized:
    @given(
        name=st.sampled_from(DET_ELEMENTS),
        username=st.text(max_size=12),
        obj_id=st.integers(min_value=0, max_value=2**31),
        payload=st.binary(max_size=128),
        method=st.sampled_from(["get", "put", "admin"]),
        kind=st.sampled_from(["request", "response"]),
    )
    @settings(max_examples=120, deadline=None)
    def test_generated_equals_interpreter(
        self, name, username, obj_id, payload, method, kind
    ):
        registry = FunctionRegistry(rng=random.Random(0))
        ir = build_element_ir(PROGRAM.elements[name])
        analyze_element(ir, registry)
        artifact = PythonBackend(registry).emit(ir)
        generated = artifact.factory()
        reference = ElementInstance(ir, registry)
        for instance in (generated, reference):
            if "endpoints" in instance.state.tables:
                instance.state.table("endpoints").insert_values([0, "B.1"])
                instance.state.table("endpoints").insert_values([1, "B.2"])
        rpc = {
            "src": "A.0",
            "dst": "B",
            "rpc_id": 1,
            "method": method,
            "kind": kind,
            "status": "ok",
            "payload": payload,
            "username": username,
            "obj_id": obj_id,
        }
        generated_out = generated.process(dict(rpc), kind)
        reference_out = [
            {k: v for k, v in row.items() if isinstance(k, str)}
            for row in reference.process(dict(rpc), kind)
        ]
        assert generated_out == reference_out


class TestSimulatorInvariants:
    @given(
        concurrency=st.integers(min_value=1, max_value=32),
        service_us=st.integers(min_value=1, max_value=200),
        multiplier=st.integers(min_value=10, max_value=25),
    )
    @settings(max_examples=40, deadline=None)
    def test_littles_law_closed_loop(self, concurrency, service_us, multiplier):
        # enough work per worker that end effects don't dominate
        total = concurrency * multiplier
        sim = Simulator()
        resource = Resource(sim, capacity=1)

        def call(**fields):
            issued = sim.now
            yield from resource.use(service_us * 1e-6)
            return RpcOutcome(
                request={}, response={}, issued_at=issued, completed_at=sim.now
            )

        client = ClosedLoopClient(
            sim, call, concurrency=concurrency, total_rpcs=total
        )
        metrics = client.run()
        assert metrics.completed == total
        # N = X * R within tolerance (end effects for short runs)
        assert metrics.check_littles_law(concurrency, tolerance=0.35)

    @given(
        concurrency=st.integers(min_value=1, max_value=16),
        service_us=st.integers(min_value=1, max_value=100),
    )
    @settings(max_examples=40, deadline=None)
    def test_busy_time_bounded_by_elapsed(self, concurrency, service_us):
        sim = Simulator()
        resource = Resource(sim, capacity=2)

        def call(**fields):
            issued = sim.now
            yield from resource.use(service_us * 1e-6)
            return RpcOutcome(
                request={}, response={}, issued_at=issued, completed_at=sim.now
            )

        client = ClosedLoopClient(
            sim, call, concurrency=concurrency, total_rpcs=60
        )
        client.run()
        assert resource.busy_time <= sim.now * resource.capacity + 1e-12

    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
            min_size=1,
            max_size=30,
        )
    )
    @settings(max_examples=60, deadline=None)
    def test_events_fire_in_time_order(self, delays):
        sim = Simulator()
        fired = []

        def waiter(delay):
            yield sim.timeout(delay)
            fired.append(sim.now)

        for delay in delays:
            sim.process(waiter(delay))
        sim.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

    @given(
        service_times=st.lists(
            st.floats(min_value=1e-6, max_value=1e-3, allow_nan=False),
            min_size=2,
            max_size=20,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_fcfs_resource_conserves_work(self, service_times):
        sim = Simulator()
        resource = Resource(sim, capacity=1)
        done = []

        def job(duration):
            yield from resource.use(duration)
            done.append(sim.now)

        for duration in service_times:
            sim.process(job(duration))
        sim.run()
        assert len(done) == len(service_times)
        assert sim.now >= sum(service_times) - 1e-12
        assert abs(resource.busy_time - sum(service_times)) < 1e-9
