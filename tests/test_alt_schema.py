"""End-to-end with a completely different RPC schema — nothing in the
pipeline may assume the benchmark app's payload/username/obj_id field
names."""

import pytest

from repro.compiler.compiler import AdnCompiler
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, parse
from repro.dsl.ast_nodes import ChainDecl
from repro.dsl.validator import validate_program
from repro.runtime import AdnMrpcStack
from repro.runtime.message import reset_rpc_ids
from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster

DOC_SCHEMA = RpcSchema.of(
    "docs",
    tenant=FieldType.STR,
    doc_id=FieldType.INT,
    body=FieldType.BYTES,
    priority=FieldType.INT,
)

PROGRAM = """
element TenantGate {
    state tenants (tenant: str KEY, active: bool);
    init { INSERT INTO tenants VALUES ('acme', true), ('globex', false); }
    on request {
        SELECT input.* FROM input
        JOIN tenants ON tenants.tenant == input.tenant
        WHERE tenants.active == true;
    }
    on response { SELECT * FROM input; }
}

element PriorityTag {
    on request {
        SELECT input.*, CASE WHEN input.priority >= 5 THEN 'gold'
            ELSE 'base' END AS tier FROM input;
    }
    on response { SELECT * FROM input; }
}

element DocShard {
    state endpoints (idx: int KEY, replica: str);
    on request {
        SELECT input.*, endpoints.replica AS dst FROM input
        JOIN endpoints ON endpoints.idx == hash(input.doc_id) % count(endpoints);
    }
    on response { SELECT * FROM input; }
}
"""


@pytest.fixture
def compiled():
    registry = FunctionRegistry()
    program = validate_program(
        parse(PROGRAM), schema=DOC_SCHEMA, registry=registry
    )
    compiler = AdnCompiler(registry=registry)
    decl = ChainDecl(
        src="gateway",
        dst="docstore",
        elements=("TenantGate", "PriorityTag", "DocShard"),
    )
    chain = compiler.compile_chain(decl, program, DOC_SCHEMA)
    return chain, registry


class TestAlternateSchema:
    def test_chain_compiles_for_all_legal_backends(self, compiled):
        chain, _registry = compiled
        for name, element in chain.elements.items():
            assert "python" in element.legal_backends(), name
        # TenantGate is a pure header-match ACL: switch-offloadable
        assert "p4" in chain.elements["TenantGate"].legal_backends()

    def test_header_plan_uses_schema_fields(self, compiled):
        chain, _registry = compiled
        from repro.compiler.headers import plan_hop_headers

        layout = plan_hop_headers(chain.ir, DOC_SCHEMA, [0])[0].layout
        assert "tenant" in layout.field_names
        assert "doc_id" in layout.field_names
        assert "payload" not in layout.field_names  # no such field here

    def test_end_to_end_traffic(self, compiled):
        chain, registry = compiled
        reset_rpc_ids()
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = AdnMrpcStack(
            sim,
            cluster,
            chain,
            DOC_SCHEMA,
            registry,
            client_service="gateway",
            server_service="docstore",
            server_replicas=3,
        )

        def workload(rng, index):
            return {
                "tenant": "acme" if rng.random() < 0.8 else "globex",
                "doc_id": rng.randrange(1000),
                "body": b"document contents",
                "priority": rng.randrange(10),
            }

        client = ClosedLoopClient(
            sim,
            stack.call,
            concurrency=16,
            total_rpcs=600,
            fields_fn=workload,
        )
        metrics = client.run()
        assert metrics.completed == 600
        # ~20% globex (inactive tenant) denials
        assert 60 <= metrics.aborted <= 200

    def test_derived_field_crosses_wire(self, compiled):
        chain, registry = compiled
        reset_rpc_ids()
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = AdnMrpcStack(
            sim,
            cluster,
            chain,
            DOC_SCHEMA,
            registry,
            client_service="gateway",
            server_service="docstore",
            server_replicas=2,
        )
        process = sim.process(
            stack.call(tenant="acme", doc_id=7, body=b"d", priority=9)
        )
        outcome = sim.run_until_complete(process)
        assert outcome.ok
        # the PriorityTag-derived field is in the header plan only if
        # something downstream reads it — here nothing does, so it is
        # stripped at the wire (minimal headers)
        assert "tier" not in stack.hop_plan.layout.field_names

    def test_sharding_spreads_by_doc_id(self, compiled):
        chain, registry = compiled
        reset_rpc_ids()
        sim = Simulator()
        cluster = two_machine_cluster(sim)
        stack = AdnMrpcStack(
            sim, cluster, chain, DOC_SCHEMA, registry,
            client_service="gateway", server_service="docstore",
            server_replicas=3,
        )
        shard_processor = next(
            p for p in stack.processors
            if "DocShard" in p.segment.elements
        )
        table = shard_processor.element_state("DocShard").table("endpoints")
        assert len(table) == 3
