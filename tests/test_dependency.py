"""Commutativity / dependency analysis tests — including executable
checks that the verdicts are *sound* (when commute() says yes, running
the pair in either order really gives the same result)."""

import itertools

import pytest

from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.ir.analysis import analyze_element
from repro.ir.builder import build_element_ir
from repro.ir.dependency import (
    can_parallelize,
    commute,
    ordering_violations,
)
from repro.ir.interp import ElementInstance

from conftest import make_rpc

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)


@pytest.fixture(scope="module")
def analyses():
    program = load_stdlib(schema=SCHEMA)
    result = {}
    for name, element in program.elements.items():
        ir = build_element_ir(element)
        result[name] = analyze_element(ir)
    return result


class TestPairVerdicts:
    def test_acl_fault_commute(self, analyses):
        # two droppers with no effects and disjoint fields
        assert commute(analyses["Acl"], analyses["Fault"])

    def test_logging_blocks_droppers(self, analyses):
        # a dropper cannot move before/after an effectful logger
        verdict = commute(analyses["Logging"], analyses["Acl"])
        assert not verdict
        assert any("observable effects" in r for r in verdict.reasons)

    def test_lb_and_compression_commute(self, analyses):
        # the paper's Figure 2 config 3 justification: compression does
        # not touch the field the load balancer reads
        assert commute(analyses["LbKeyHash"], analyses["Compression"])

    def test_compression_pair_conflicts(self, analyses):
        # both write `payload`
        verdict = commute(analyses["Compression"], analyses["Decompression"])
        assert not verdict

    def test_mirror_blocks_droppers(self, analyses):
        verdict = commute(analyses["Mirror"], analyses["Acl"])
        assert not verdict

    def test_router_and_lb_conflict_on_dst(self, analyses):
        verdict = commute(analyses["Router"], analyses["LbKeyHash"])
        assert not verdict
        assert any("dst" in r for r in verdict.reasons)

    def test_verdict_is_symmetric(self, analyses):
        names = list(analyses)
        for a, b in itertools.combinations(names, 2):
            assert bool(commute(analyses[a], analyses[b])) == bool(
                commute(analyses[b], analyses[a])
            ), (a, b)


class TestParallelize:
    def test_parallel_stricter_than_commute(self, analyses):
        for a, b in itertools.combinations(analyses, 2):
            if can_parallelize(analyses[a], analyses[b]):
                assert commute(analyses[a], analyses[b]), (a, b)

    def test_fanout_never_parallel(self, analyses):
        for other in analyses:
            if other == "Mirror":
                continue
            assert not can_parallelize(analyses["Mirror"], analyses[other])

    def test_acl_fault_parallel(self, analyses):
        assert can_parallelize(analyses["Acl"], analyses["Fault"])


class TestOrderingViolations:
    def test_identity_always_legal(self, analyses):
        order = ["Logging", "Acl", "Fault"]
        assert ordering_violations(order, order, analyses) == []

    def test_legal_swap(self, analyses):
        assert (
            ordering_violations(
                ["Logging", "Fault", "Acl"], ["Logging", "Acl", "Fault"], analyses
            )
            == []
        )

    def test_illegal_swap_detected(self, analyses):
        violations = ordering_violations(
            ["Acl", "Logging", "Fault"], ["Logging", "Acl", "Fault"], analyses
        )
        assert violations

    def test_non_adjacent_inversion_checked(self, analyses):
        violations = ordering_violations(
            ["Fault", "Compression", "Logging"],
            ["Logging", "Compression", "Fault"],
            analyses,
        )
        assert violations  # Fault inverted past Logging


class TestSoundnessExecutable:
    """When commute() approves a stdlib pair, executing the pair in both
    orders over a batch of RPCs must produce identical outputs and drops.
    (Nondeterministic elements are re-seeded per order.)"""

    class _PerRpcOracle:
        """rand() as a per-request random oracle: the draw depends only
        on which RPC is being processed, not on how many draws happened
        before — the model under which probabilistic fault injection
        commutes with deterministic droppers."""

        def __init__(self):
            self.current_rpc = 0

        def random(self):
            import hashlib

            digest = hashlib.blake2b(
                str(self.current_rpc).encode(), digest_size=8
            ).digest()
            return int.from_bytes(digest, "big") / 2**64

    def run_chain(self, program, order, rpcs, seed=11):
        oracle = self._PerRpcOracle()
        registry = FunctionRegistry(rng=oracle)
        instances = []
        for name in order:
            ir = build_element_ir(program.elements[name])
            analyze_element(ir, registry)
            instance = ElementInstance(ir, registry)
            if any(d.name == "endpoints" for d in ir.states):
                instance.state.table("endpoints").insert_values([0, "B.1"])
                instance.state.table("endpoints").insert_values([1, "B.2"])
            instances.append(instance)
        results = []
        for rpc in rpcs:
            oracle.current_rpc = rpc["rpc_id"]
            current = dict(rpc)
            dropped = False
            for instance in instances:
                outs = instance.process(dict(current), "request")
                outs = [
                    {k: v for k, v in row.items() if isinstance(k, str)}
                    for row in outs
                ]
                if not outs:
                    dropped = True
                    break
                current = outs[0]
            results.append(None if dropped else current)
        return results

    @pytest.mark.parametrize(
        "pair",
        [
            ("Acl", "Fault"),
            ("LbKeyHash", "Compression"),
            ("Acl", "LbKeyHash"),
            ("Encryption", "LbKeyHash"),
        ],
    )
    def test_commuting_pairs_agree(self, analyses, pair):
        first, second = pair
        assert commute(analyses[first], analyses[second])
        program = load_stdlib(schema=SCHEMA)
        rpcs = [
            make_rpc(rpc_id=i, obj_id=i * 3, username="usr2" if i % 3 else "usr1")
            for i in range(60)
        ]
        forward = self.run_chain(program, [first, second], rpcs)
        backward = self.run_chain(program, [second, first], rpcs)
        assert forward == backward

    def test_non_commuting_pair_really_differs(self, analyses):
        # sanity that the executable harness can detect a difference:
        # Compression then Decompression restores the payload, reversed
        # order corrupts it (decompressing uncompressed data fails) —
        # so we use Router/LbKeyHash, which differ in final dst
        program = load_stdlib(schema=SCHEMA)
        for instance_order in (["Router", "LbKeyHash"], ["LbKeyHash", "Router"]):
            pass
        rpcs = [make_rpc(rpc_id=i, obj_id=i, method="admin") for i in range(10)]

        def with_route(order):
            import random

            registry = FunctionRegistry(rng=random.Random(1))
            instances = []
            for name in order:
                ir = build_element_ir(program.elements[name])
                analyze_element(ir, registry)
                inst = ElementInstance(ir, registry)
                if any(d.name == "endpoints" for d in ir.states):
                    inst.state.table("endpoints").insert_values([0, "B.1"])
                    inst.state.table("endpoints").insert_values([1, "B.2"])
                if any(d.name == "routes" for d in ir.states):
                    inst.state.table("routes").insert(
                        {"method": "admin", "target": "B.9"}
                    )
                instances.append(inst)
            outs = []
            for rpc in rpcs:
                current = dict(rpc)
                for inst in instances:
                    result = inst.process(dict(current), "request")
                    current = {
                        k: v for k, v in result[0].items() if isinstance(k, str)
                    }
                outs.append(current["dst"])
            return outs

        assert with_route(["LbKeyHash", "Router"]) != with_route(
            ["Router", "LbKeyHash"]
        )


class TestEdgeCases:
    """Corner cases of the write/read-set machinery: the ALL_FIELDS
    narrowing sentinel, disjoint droppers, and response-side writers."""

    @staticmethod
    def _analysis(source, name=None):
        from repro.dsl import parse, validate_element

        program = parse(source)
        element = validate_element(
            program.elements[name or next(iter(program.elements))]
        )
        return analyze_element(build_element_ir(element))

    def test_narrowing_writes_all_fields_sentinel(self):
        from repro.ir.dependency import ALL_FIELDS, _write_set

        narrower = self._analysis(
            "element Narrow { on request {"
            " SELECT input.obj_id AS obj_id FROM input; } }"
        )
        passthrough = self._analysis(
            "element Pass { on request { SELECT * FROM input; } }"
        )
        assert _write_set(narrower) == {ALL_FIELDS}
        assert _write_set(passthrough) == set()

    def test_all_fields_vs_empty_sets_commute(self):
        # The sentinel conflicts with *any* non-empty read/write set, but
        # not with an element that touches no fields at all — so a pure
        # pass-through may still move across a narrowing projection.
        narrower = self._analysis(
            "element Narrow { on request {"
            " SELECT input.obj_id AS obj_id FROM input; } }"
        )
        passthrough = self._analysis(
            "element Pass { on request { SELECT * FROM input; } }"
        )
        assert commute(narrower, passthrough)
        assert commute(passthrough, narrower)

    def test_all_fields_conflicts_with_any_reader(self):
        narrower = self._analysis(
            "element Narrow { on request {"
            " SELECT input.obj_id AS obj_id FROM input; } }"
        )
        reader = self._analysis(
            "element Reader { on request {"
            ' SELECT * FROM input WHERE input.username == "root"; } }'
        )
        verdict = commute(narrower, reader)
        assert not verdict
        assert any("Narrow writes" in r for r in verdict.reasons)

    def test_two_droppers_with_disjoint_predicates_commute(self):
        # The kept set is the intersection of two order-independent
        # predicates: neither dropper has effects or reads the other's
        # writes, so either order keeps exactly the same RPCs.
        d1 = self._analysis(
            "element D1 { on request {"
            " SELECT * FROM input WHERE input.obj_id > 5; } }"
        )
        d2 = self._analysis(
            "element D2 { on request {"
            " SELECT * FROM input WHERE len(input.payload) < 100; } }"
        )
        assert d1.can_drop and d2.can_drop
        assert commute(d1, d2)
        assert commute(d2, d1)

    def test_response_side_only_writer_still_conflicts(self):
        # Field sets aggregate over *all* handlers: a field written only
        # in `on response` still conflicts with a reader of that field,
        # because responses traverse the chain in reverse order.
        stamp = self._analysis(
            "element Stamp {\n"
            "    on request { SELECT * FROM input; }\n"
            "    on response {\n"
            '        SELECT input.*, "served" AS status FROM input;\n'
            "    }\n"
            "}\n"
        )
        reader = self._analysis(
            "element SR { on request {"
            ' SELECT * FROM input WHERE input.status == "served"; } }'
        )
        assert stamp.fields_written == {"status"}
        verdict = commute(stamp, reader)
        assert not verdict
        assert any("status" in r for r in verdict.reasons)
