"""Every shipped example must run clean — they are the quickstart
documentation."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples must produce output"


def test_all_examples_present():
    names = {path.name for path in EXAMPLES}
    assert {
        "quickstart.py",
        "object_store.py",
        "autoscaling.py",
        "offload_planner.py",
        "resilience.py",
        "external_ingress.py",
    } <= names
