"""GraphRuntime: deadline/priority propagation through fan-out, failure
classes crossing service boundaries, and the mesh workload model."""

import random

import pytest

from repro.graph import (
    GraphBuilder,
    MESH_SCHEMA,
    MeshWorkload,
    MeshWorkloadConfig,
    ZipfSampler,
    bookinfo_graph,
    build_graph_cluster,
    mesh_program,
    solve_graph_placement,
)
from repro.graph.runtime import GraphRuntime
from repro.overload import DEADLINE_EXPIRED
from repro.runtime.message import reset_rpc_ids
from repro.runtime.mrpc import ABORT_KEY
from repro.sim.costmodel import CostModel
from repro.sim.engine import Simulator

FIELDS = {"payload": b"x", "username": "alice", "obj_id": 7, "priority": 0}


def fanout_graph(parent_budget_ms=None, child_budget_ms=1000.0):
    """a -> b, then b fans out to c and d; the child edges carry a huge
    budget of their own so any expiry must come from the parent."""
    return (
        GraphBuilder("chain")
        .edge("a", "b", elements=("Logging",),
              deadline_budget_ms=parent_budget_ms,
              per_attempt_timeout_ms=50.0)
        .edge("b", "c", elements=("Logging",),
              deadline_budget_ms=child_budget_ms)
        .edge("b", "d", elements=("Logging",),
              deadline_budget_ms=child_budget_ms)
        .build()
    )


def build_runtime(graph, element_dispatch_us=2.0, **kwargs):
    reset_rpc_ids()
    sim = Simulator()
    placement = solve_graph_placement(graph, mesh_program(), MESH_SCHEMA)
    cluster = build_graph_cluster(
        sim, placement, costs=CostModel(element_dispatch_us=element_dispatch_us)
    )
    runtime = GraphRuntime(sim, cluster, placement, MESH_SCHEMA, **kwargs)
    return sim, runtime


def drive(sim, runtime, count=1, **fields):
    outcomes = []

    def one():
        outcome = yield sim.process(runtime.entry_call(**fields))
        outcomes.append(outcome)

    for _ in range(count):
        sim.process(one())
    sim.run(until=sim.now + 5.0)
    return outcomes


def install_probe(runtime, src, dst, seen):
    """Replace one edge's server handler with a probe recording the
    propagated absolute deadline (the runtime's own handlers consume it
    before application logic can see it)."""
    stack = runtime.stack(src, dst)

    def probe(request, deadline_at):
        seen.append(deadline_at)
        return {}
        yield  # pragma: no cover — generator, like every server handler

    stack.server_handler = probe
    stack._handler_takes_deadline = True


class TestDeadlinePropagation:
    def test_parent_budget_strictly_bounds_children(self):
        graph = fanout_graph(parent_budget_ms=5.0)
        sim, runtime = build_runtime(graph)
        seen_c, seen_d = [], []
        install_probe(runtime, "b", "c", seen_c)
        install_probe(runtime, "b", "d", seen_d)
        (outcome,) = drive(sim, runtime, **FIELDS)
        assert outcome.ok
        # both fan-out children saw a deadline, and it is the *parent's*
        # 5 ms horizon — never the children's own 1000 ms budget
        for seen in (seen_c, seen_d):
            (deadline_at,) = seen
            assert deadline_at is not None
            assert deadline_at <= outcome.issued_at + 5.001e-3

    def test_without_parent_budget_children_use_their_own(self):
        graph = fanout_graph(parent_budget_ms=None)
        sim, runtime = build_runtime(graph)
        seen_c = []
        install_probe(runtime, "b", "c", seen_c)
        (outcome,) = drive(sim, runtime, **FIELDS)
        assert outcome.ok
        (deadline_at,) = seen_c
        # the child's 1000 ms budget is the only bound in play
        assert deadline_at > outcome.issued_at + 0.9

    def test_entry_deadline_bounds_the_whole_traversal(self):
        graph = fanout_graph(parent_budget_ms=None)
        sim, runtime = build_runtime(graph)
        seen_c = []
        install_probe(runtime, "b", "c", seen_c)
        entry_deadline = sim.now + 2e-3
        (outcome,) = drive(
            sim, runtime, deadline_at=entry_deadline, **FIELDS
        )
        assert outcome.ok
        (deadline_at,) = seen_c
        assert deadline_at is not None and deadline_at <= entry_deadline

    def test_exhausted_budget_drops_before_downstream_service_time(self):
        # 200 us per element dispatch makes each hop cost a fair chunk
        # of the parent's 0.8 ms budget: the request clears the a->b
        # boundary alive but is expired by the time it reaches the
        # slower fan-out leg, whose own budget is 1000 ms
        graph = fanout_graph(parent_budget_ms=0.8)
        sim, runtime = build_runtime(graph, element_dispatch_us=200.0)
        handled = []
        install_probe(runtime, "b", "d", handled)
        (outcome,) = drive(sim, runtime, **FIELDS)
        assert not outcome.ok
        stack_d = runtime.stack("b", "d")
        assert stack_d.deadline_expired_at_server >= 1
        # the server boundary dropped it *before* application service
        # time: the handler never ran, and the caller saw a deadline-
        # class failure (the dropped request never answers, so the
        # budget-clipped attempt window expires client-side)
        assert handled == []
        (token,) = runtime.stats("b", "d").aborted_by
        assert token in {DEADLINE_EXPIRED, "DeadlineExceeded", "Timeout"}

    def test_expiry_deep_in_the_graph_propagates_to_the_entry(self):
        graph = fanout_graph(parent_budget_ms=0.8)
        sim, runtime = build_runtime(graph, element_dispatch_us=200.0)
        (outcome,) = drive(sim, runtime, **FIELDS)
        assert not outcome.ok
        # the failure class survives two boundaries (d's server -> b's
        # handler -> the entry outcome) instead of flattening into a
        # generic downstream error
        assert outcome.aborted_by in {DEADLINE_EXPIRED, "DeadlineExceeded",
                                      "Timeout"}


class TestPriorityPropagation:
    def test_priority_rides_fanout_to_every_leaf(self):
        graph = fanout_graph()
        seen = {}

        def capture(name):
            def logic(request, outcomes):
                seen.setdefault(name, []).append(request.get("priority"))
                return {}
            return logic

        sim, runtime = build_runtime(
            graph, service_logic={"c": capture("c"), "d": capture("d")}
        )
        fields = dict(FIELDS, priority=3)
        (outcome,) = drive(sim, runtime, **fields)
        assert outcome.ok
        assert seen["c"] == [3] and seen["d"] == [3]


class TestFailurePropagation:
    def test_required_child_failure_aborts_the_parent(self):
        graph = fanout_graph()

        def deny(request, outcomes):
            return {ABORT_KEY: "AclDenied"}

        sim, runtime = build_runtime(graph, service_logic={"c": deny})
        (outcome,) = drive(sim, runtime, **FIELDS)
        assert not outcome.ok
        # an application-level abort is not a breaker-countable failure
        # class, so each boundary wraps it as downstream:<edge> — the
        # a->b hop records where *it* saw the failure, the entry where
        # it did
        assert runtime.stats("a", "b").aborted_by == {"downstream:b->c": 1}
        assert outcome.aborted_by == "downstream:a->b"

    def test_optional_child_failure_degrades_instead_of_failing(self):
        graph = (
            GraphBuilder("g")
            .edge("a", "b", elements=("Logging",))
            .edge("b", "c", elements=("Logging",), required=False)
            .build()
        )

        def deny(request, outcomes):
            return {ABORT_KEY: "AclDenied"}

        sim, runtime = build_runtime(graph, service_logic={"c": deny})
        (outcome,) = drive(sim, runtime, **FIELDS)
        assert outcome.ok
        assert runtime.stats("b", "c").aborted == 1

    def test_edge_stats_account_every_call(self):
        sim, runtime = build_runtime(bookinfo_graph())
        outcomes = drive(sim, runtime, count=5, **FIELDS)
        assert len(outcomes) == 5 and all(o.ok for o in outcomes)
        for edge in runtime.graph.edges:
            stats = runtime.stats(edge.src, edge.dst)
            assert stats.calls == 5 and stats.ok == 5
        assert runtime.entry_calls == 5 and runtime.entry_ok == 5
        mesh = runtime.mesh_stats()
        assert mesh["entry_ok"] == 5
        assert mesh["edges"]["reviews->ratings"]["calls"] == 5


class TestMeshWorkload:
    def test_zipf_sampler_is_skewed_and_bounded(self):
        sampler = ZipfSampler(n=1_000_000, s=1.2)
        rng = random.Random(7)
        draws = [sampler.sample(rng) for _ in range(4000)]
        assert all(1 <= value <= 1_000_000 for value in draws)
        head = sum(1 for value in draws if value <= 10)
        assert head > len(draws) * 0.3  # the hot set dominates

    def test_zipf_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            ZipfSampler(n=0)
        with pytest.raises(ValueError):
            ZipfSampler(n=10, s=1.0)

    def test_open_loop_workload_drives_the_graph(self):
        sim, runtime = build_runtime(bookinfo_graph())
        workload = MeshWorkload(
            sim,
            runtime,
            MeshWorkloadConfig(
                users=1_000_000,
                base_rps=500.0,
                duration_s=0.2,
                diurnal_amplitude=0.3,
                diurnal_period_s=0.1,
                priority_high_ratio=0.25,
                seed=3,
            ),
        )
        metrics = workload.run(drain_s=0.2)
        assert metrics.issued > 50
        assert metrics.completed == metrics.issued  # open loop drains
        assert workload.goodput_ratio() == 1.0
        # both priority tiers were issued and accounted separately
        assert set(workload.issued_by_priority) == {0, 1}
        assert workload.goodput_ratio(priority=1) == 1.0

    def test_diurnal_amplitude_zero_is_flat_poisson(self):
        sim, runtime = build_runtime(bookinfo_graph())
        workload = MeshWorkload(
            sim,
            runtime,
            MeshWorkloadConfig(
                base_rps=400.0, duration_s=0.1, diurnal_amplitude=0.0
            ),
        )
        assert workload._rate(0.0) == workload._rate(0.05) == 400.0
        metrics = workload.run(drain_s=0.1)
        assert metrics.issued > 10
