"""Standard element library: parse/validate + functional behaviour of
every element through the reference interpreter."""

import random
import zlib

import pytest

from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.dsl.stdlib import STDLIB_SOURCES, stdlib_loc, stdlib_source
from repro.ir import ElementInstance, analyze_element, build_element_ir

from conftest import make_rpc


@pytest.fixture(scope="module")
def schema():
    return RpcSchema.of(
        "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
    )


@pytest.fixture(scope="module")
def program(schema):
    return load_stdlib(schema=schema)


def instance(program, name, registry=None):
    ir = build_element_ir(program.elements[name])
    analyze_element(ir, registry)
    return ElementInstance(ir, registry)


def strip(rows):
    return [{k: v for k, v in r.items() if isinstance(k, str)} for r in rows]


class TestLibraryShape:
    def test_all_sources_load(self, program):
        assert len(program.elements) == 19
        assert len(program.filters) == 4

    def test_every_element_is_tens_of_lines(self):
        # the paper: "ADN elements have tens of lines of SQL"
        for name in STDLIB_SOURCES:
            assert stdlib_loc(name) <= 30, name

    def test_selective_load(self, schema):
        program = load_stdlib(["Acl"], schema=schema)
        assert set(program.elements) == {"Acl"}

    def test_unknown_name(self):
        with pytest.raises(KeyError):
            stdlib_source("Nope")


class TestLogging:
    def test_forwards_and_records(self, program):
        logger = instance(program, "Logging")
        out = logger.process(make_rpc(), "request")
        assert len(out) == 1
        out = logger.process(make_rpc(kind="response"), "response")
        assert len(out) == 1
        log = logger.state.table("log_tab")
        assert len(log) == 2
        directions = [row["direction"] for row in log.rows()]
        assert directions == ["request", "response"]


class TestAcl:
    def test_writer_allowed(self, program):
        acl = instance(program, "Acl")
        assert acl.process(make_rpc(username="usr2"), "request")

    def test_reader_denied(self, program):
        acl = instance(program, "Acl")
        assert acl.process(make_rpc(username="usr1"), "request") == []

    def test_unknown_user_denied(self, program):
        acl = instance(program, "Acl")
        assert acl.process(make_rpc(username="stranger"), "request") == []

    def test_responses_pass(self, program):
        acl = instance(program, "Acl")
        out = acl.process(make_rpc(username="usr1", kind="response"), "response")
        assert len(out) == 1


class TestFault:
    def test_abort_rate_near_configured(self, program):
        registry = FunctionRegistry(rng=random.Random(3))
        fault = instance(program, "Fault", registry)
        dropped = sum(
            1
            for i in range(2000)
            if not fault.process(make_rpc(rpc_id=i), "request")
        )
        assert 20 <= dropped <= 70  # 2% of 2000 = 40 expected

    def test_responses_never_dropped(self, program):
        registry = FunctionRegistry(rng=random.Random(3))
        fault = instance(program, "Fault", registry)
        for i in range(200):
            assert fault.process(make_rpc(rpc_id=i), "response")


class TestLoadBalancers:
    def seed(self, element):
        table = element.state.table("endpoints")
        table.insert_values([0, "B.1"])
        table.insert_values([1, "B.2"])

    def test_key_hash_deterministic(self, program):
        lb = instance(program, "LbKeyHash")
        self.seed(lb)
        first = lb.process(make_rpc(obj_id=99), "request")[0]["dst"]
        second = lb.process(make_rpc(obj_id=99), "request")[0]["dst"]
        assert first == second

    def test_key_hash_spreads(self, program):
        lb = instance(program, "LbKeyHash")
        self.seed(lb)
        destinations = {
            lb.process(make_rpc(obj_id=i), "request")[0]["dst"]
            for i in range(50)
        }
        assert destinations == {"B.1", "B.2"}

    def test_round_robin_alternates(self, program):
        lb = instance(program, "LbRoundRobin")
        self.seed(lb)
        sequence = [
            lb.process(make_rpc(rpc_id=i), "request")[0]["dst"]
            for i in range(4)
        ]
        assert sequence == ["B.1", "B.2", "B.1", "B.2"]

    def test_no_endpoints_drops(self, program):
        lb = instance(program, "LbKeyHash")
        # empty endpoints table: join never matches — conservative drop
        assert lb.process(make_rpc(), "request") == []


class TestPayloadElements:
    def test_compression_roundtrip_through_chain(self, program):
        compress = instance(program, "Compression")
        decompress = instance(program, "Decompression")
        rpc = make_rpc(payload=b"abc" * 100)
        compressed = compress.process(rpc, "request")[0]
        assert len(compressed["payload"]) < len(rpc["payload"])
        restored = decompress.process(compressed, "request")[0]
        assert restored["payload"] == rpc["payload"]

    def test_encryption_roundtrip(self, program):
        encrypt = instance(program, "Encryption")
        decrypt = instance(program, "Decryption")
        rpc = make_rpc(payload=b"top secret")
        sealed = encrypt.process(rpc, "request")[0]
        assert sealed["payload"] != rpc["payload"]
        opened = decrypt.process(sealed, "request")[0]
        assert opened["payload"] == rpc["payload"]

    def test_compression_response_direction(self, program):
        compress = instance(program, "Compression")
        response = make_rpc(
            kind="response", payload=zlib.compress(b"result data", 1)
        )
        out = compress.process(response, "response")[0]
        assert out["payload"] == b"result data"


class TestAccessControl:
    def test_pair_whitelist(self, program):
        ac = instance(program, "AccessControl")
        table = ac.state.table("acl")
        table.insert({"username": "usr2", "obj_id": 7, "allowed": True})
        table.insert({"username": "usr2", "obj_id": 8, "allowed": False})
        assert ac.process(make_rpc(username="usr2", obj_id=7), "request")
        assert ac.process(make_rpc(username="usr2", obj_id=8), "request") == []
        assert ac.process(make_rpc(username="usr1", obj_id=7), "request") == []


class TestRateLimit:
    def test_burst_then_throttle(self, program):
        registry = FunctionRegistry()
        clock = {"t": 0.0}
        registry.bind_clock(lambda: clock["t"])
        limiter = instance(program, "RateLimit", registry)
        passed = sum(
            1
            for i in range(200)
            if limiter.process(make_rpc(rpc_id=i), "request")
        )
        # burst of 128 tokens, no refill (clock frozen)
        assert passed == 128

    def test_refill_restores_capacity(self, program):
        registry = FunctionRegistry()
        clock = {"t": 0.0}
        registry.bind_clock(lambda: clock["t"])
        limiter = instance(program, "RateLimit", registry)
        for i in range(200):
            limiter.process(make_rpc(rpc_id=i), "request")
        clock["t"] = 1.0  # a full second refills to the burst cap
        assert limiter.process(make_rpc(), "request")


class TestMetrics:
    def test_counts_by_method(self, program):
        metrics = instance(program, "Metrics")
        for _ in range(3):
            metrics.process(make_rpc(method="get"), "request")
        metrics.process(make_rpc(method="put"), "request")
        counters = {
            row["method"]: row["hits"]
            for row in metrics.state.table("counters").rows()
        }
        assert counters == {"get": 3, "put": 1}


class TestRouter:
    def test_pinned_method_rerouted(self, program):
        router = instance(program, "Router")
        router.state.table("routes").insert(
            {"method": "admin", "target": "B.9"}
        )
        out = router.process(make_rpc(method="admin"), "request")
        assert out[0]["dst"] == "B.9"

    def test_unpinned_method_untouched(self, program):
        router = instance(program, "Router")
        router.state.table("routes").insert(
            {"method": "admin", "target": "B.9"}
        )
        out = router.process(make_rpc(method="get"), "request")
        assert len(out) == 1
        assert out[0]["dst"] == "B"


class TestAdmission:
    def test_window_enforced(self, program):
        admission = instance(program, "Admission")
        passed = sum(
            1
            for i in range(2000)
            if admission.process(make_rpc(rpc_id=i), "request")
        )
        assert passed == 1024

    def test_responses_release_window(self, program):
        admission = instance(program, "Admission")
        for i in range(1024):
            admission.process(make_rpc(rpc_id=i), "request")
        assert admission.process(make_rpc(), "request") == []
        admission.process(make_rpc(kind="response"), "response")
        assert admission.process(make_rpc(), "request")


class TestMirror:
    def test_mirrors_a_sample(self, program):
        registry = FunctionRegistry(rng=random.Random(5))
        mirror = instance(program, "Mirror", registry)
        copies = 0
        for i in range(2000):
            out = mirror.process(make_rpc(rpc_id=i), "request")
            assert len(out) >= 1
            copies += len(out) - 1
            if len(out) == 2:
                assert out[1]["dst"] == "shadow"
        assert 5 <= copies <= 50  # ~1% of 2000


class TestCache:
    def test_responses_populate_cache(self, program):
        cache = instance(program, "Cache")
        cache.process(
            make_rpc(kind="response", obj_id=5, payload=b"val"), "response"
        )
        row = cache.state.table("cache_tab").get(5)
        assert row is not None
        assert row["payload"] == b"val"


class TestSizeLimit:
    def test_oversized_dropped(self, program):
        limiter = instance(program, "SizeLimit")
        assert limiter.process(make_rpc(payload=b"x" * 100), "request")
        assert (
            limiter.process(make_rpc(payload=b"x" * 70000), "request") == []
        )


class TestGlobalQuota:
    def test_counts_usage_per_user(self, program):
        quota = instance(program, "GlobalQuota")
        for i in range(3):
            quota.process(make_rpc(rpc_id=i, username="usr2"), "request")
        quota.process(make_rpc(username="usr1"), "request")
        usage = {
            row["username"]: row["used"]
            for row in quota.state.table("usage").rows()
        }
        assert usage == {"usr2": 3, "usr1": 1}

    def test_quota_exhaustion_blocks(self, program):
        quota = instance(program, "GlobalQuota")
        table = quota.state.table("usage")
        table.insert({"username": "whale", "used": 100000})
        assert quota.process(make_rpc(username="usr2"), "request") == []
        # and usage is not incremented for blocked requests
        usage = {r["username"]: r["used"] for r in table.rows()}
        assert "usr2" not in usage
