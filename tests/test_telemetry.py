"""Telemetry tests (paper §5.3): processors report to the controller."""

import pytest

from repro.compiler.compiler import AdnCompiler
from repro.dsl import FieldType, FunctionRegistry, RpcSchema, load_stdlib
from repro.dsl.ast_nodes import ChainDecl
from repro.runtime import AdnMrpcStack
from repro.runtime.message import reset_rpc_ids
from repro.runtime.telemetry import TelemetryCollector, TelemetryStore
from repro.sim import ClosedLoopClient, Simulator, two_machine_cluster

SCHEMA = RpcSchema.of(
    "t", payload=FieldType.BYTES, username=FieldType.STR, obj_id=FieldType.INT
)


@pytest.fixture
def running_stack():
    reset_rpc_ids()
    registry = FunctionRegistry()
    program = load_stdlib(schema=SCHEMA)
    compiler = AdnCompiler(registry=registry)
    decl = ChainDecl(src="A", dst="B", elements=("Logging", "Acl", "Fault"))
    chain = compiler.compile_chain(decl, program, SCHEMA)
    sim = Simulator()
    cluster = two_machine_cluster(sim)
    stack = AdnMrpcStack(sim, cluster, chain, SCHEMA, registry)
    return sim, stack


class TestCollector:
    def test_reports_flow_to_store(self, running_stack):
        sim, stack = running_stack
        collector = TelemetryCollector(sim, interval_s=0.001)
        collector.register_stack(stack)
        store = TelemetryStore()
        collector.add_sink(store.sink)
        sim.process(collector.run(0.05))
        client = ClosedLoopClient(sim, stack.call, concurrency=16, total_rpcs=500)
        client.run()
        sim.run()
        assert collector.reports
        assert store.latest()

    def test_window_rates_sum_to_traffic(self, running_stack):
        sim, stack = running_stack
        collector = TelemetryCollector(sim, interval_s=0.002)
        collector.register_stack(stack)
        sim.process(collector.run(0.1))
        client = ClosedLoopClient(sim, stack.call, concurrency=16, total_rpcs=600)
        client.run()
        collector.sample()  # final flush
        processed = sum(r.rpcs_in_window for r in collector.reports)
        # requests + responses traverse the processor: 600 requests, each
        # non-aborted one also a response
        assert processed >= 600

    def test_per_element_counters(self, running_stack):
        sim, stack = running_stack
        collector = TelemetryCollector(sim)
        collector.register_stack(stack)
        client = ClosedLoopClient(sim, stack.call, concurrency=8, total_rpcs=400)
        metrics = client.run()
        (report,) = collector.sample()
        assert report.element_processed["Logging"] >= 400
        dropped_total = sum(report.element_dropped.values())
        assert dropped_total == metrics.aborted

    def test_drop_rate_matches_workload(self, running_stack):
        sim, stack = running_stack
        collector = TelemetryCollector(sim)
        collector.register_stack(stack)
        client = ClosedLoopClient(sim, stack.call, concurrency=8, total_rpcs=1000)
        metrics = client.run()
        (report,) = collector.sample()
        assert report.drops_in_window == metrics.aborted
        assert 0.02 <= report.drop_rate <= 0.25

    def test_utilization_in_unit_range_under_load(self, running_stack):
        sim, stack = running_stack
        collector = TelemetryCollector(sim, interval_s=0.001)
        collector.register_stack(stack)
        sim.process(collector.run(0.05))
        client = ClosedLoopClient(sim, stack.call, concurrency=64, total_rpcs=2000)
        client.run()
        busy_windows = [r for r in collector.reports if r.rpcs_in_window > 0]
        assert busy_windows
        for report in busy_windows:
            # busy time is credited at service completion, so a service
            # spanning a window boundary can push a window slightly over
            assert 0.0 <= report.utilization <= 1.05


class TestStore:
    def test_hottest_processor(self, running_stack):
        sim, stack = running_stack
        collector = TelemetryCollector(sim)
        collector.register_stack(stack)
        store = TelemetryStore()
        collector.add_sink(store.sink)
        client = ClosedLoopClient(sim, stack.call, concurrency=32, total_rpcs=800)
        client.run()
        collector.sample()
        hottest = store.hottest()
        assert hottest is not None
        assert hottest.platform == "mrpc"

    def test_total_drop_rate(self, running_stack):
        sim, stack = running_stack
        collector = TelemetryCollector(sim)
        collector.register_stack(stack)
        store = TelemetryStore()
        collector.add_sink(store.sink)
        client = ClosedLoopClient(sim, stack.call, concurrency=8, total_rpcs=500)
        client.run()
        collector.sample()
        assert 0.0 < store.total_drop_rate() < 0.3

    def test_empty_store(self):
        store = TelemetryStore()
        assert store.hottest() is None
        assert store.total_drop_rate() == 0.0
