"""Pretty-printer tests: round-trip through parse for every stdlib
element and for randomized expressions (hypothesis)."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dsl import load_stdlib, parse
from repro.dsl.ast_nodes import BinaryOp, ColumnRef, FuncCall, Literal, UnaryOp
from repro.dsl.parser import Parser
from repro.dsl.printer import (
    print_app,
    print_element,
    print_expr,
    print_filter,
    print_program,
)
from repro.dsl.stdlib import STDLIB_SOURCES
from repro.dsl.validator import validate_program


class TestStdlibRoundTrip:
    def test_every_element_round_trips(self):
        program = parse("\n".join(STDLIB_SOURCES.values()))
        for name, element in program.elements.items():
            printed = print_element(element)
            reparsed = parse(printed).elements[name]
            assert reparsed == element, name

    def test_filters_round_trip(self):
        program = parse("\n".join(STDLIB_SOURCES.values()))
        for name, filter_def in program.filters.items():
            reparsed = parse(print_filter(filter_def)).filters[name]
            assert reparsed == filter_def, name

    def test_whole_program_round_trips(self):
        source = "\n".join(STDLIB_SOURCES.values()) + (
            """
            app Shop {
                service a;
                service b replicas 3;
                chain a -> b { Acl, Fault }
                constrain Acl outside_app;
                constrain Acl before Fault;
                guarantee reliable ordered;
            }
            """
        )
        program = parse(source)
        printed = print_program(program)
        reparsed = parse(printed)
        assert reparsed.elements == program.elements
        assert reparsed.filters == program.filters
        assert reparsed.apps == program.apps

    def test_examples_round_trip(self):
        """parse(print(parse(src))) is structurally equal for every
        checked-in .adn example — the canary for span-threading
        regressions: spans are equality-exempt metadata, so any parser
        or printer change that leaks them into structure fails here."""
        import glob

        paths = sorted(glob.glob("examples/*.adn"))
        assert paths, "no .adn examples found"
        for file_path in paths:
            program = parse(open(file_path).read())
            reparsed = parse(print_program(program))
            assert reparsed.elements == program.elements, file_path
            assert reparsed.filters == program.filters, file_path
            assert reparsed.apps == program.apps, file_path

    def test_spans_survive_but_do_not_affect_equality(self):
        """Parser-attached spans are metadata: present on the original
        parse, absent from structural comparison."""
        source = "element E { on request { SELECT * FROM input; } }"
        first = parse(source).elements["E"]
        shifted = parse("\n\n" + source).elements["E"]
        assert first.span is not None and shifted.span is not None
        assert first.span.line != shifted.span.line
        assert first == shifted  # spans are compare-exempt
        assert hash(first) == hash(shifted)

    def test_printed_source_still_validates(self):
        program = parse("\n".join(STDLIB_SOURCES.values()))
        printed = print_program(program)
        validate_program(parse(printed))

    def test_app_printing(self):
        program = parse(
            """
            app P {
                service x;
                service y replicas 2;
                chain x -> y { }
                constrain x colocate sender;
            }
            """.replace("constrain x", "constrain Nothing")
            .replace("chain x -> y { }", "chain x -> y { Nothing }")
            .replace("app P {", "element Nothing { on request { SELECT * FROM input; } }\napp P {")
        )
        printed = print_app(program.apps["P"])
        assert "service y replicas 2;" in printed
        assert "colocate sender" in printed


# -- randomized expression round-trips ---------------------------------------

names = st.sampled_from(["a", "b", "payload", "obj_id"])


@st.composite
def expressions(draw, depth=0):
    if depth >= 4 or draw(st.integers(0, 2)) == 0:
        choice = draw(st.integers(0, 3))
        if choice == 0:
            return Literal(draw(st.integers(-100, 100)))
        if choice == 1:
            return Literal(draw(st.booleans()))
        if choice == 2:
            return ColumnRef("input", draw(names))
        return ColumnRef(None, draw(names))
    shape = draw(st.sampled_from(["binary", "unary", "call"]))
    if shape == "binary":
        op = draw(
            st.sampled_from(
                ["+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=",
                 "and", "or"]
            )
        )
        return BinaryOp(
            op,
            draw(expressions(depth=depth + 1)),
            draw(expressions(depth=depth + 1)),
        )
    if shape == "unary":
        op = draw(st.sampled_from(["-", "not"]))
        operand = draw(expressions(depth=depth + 1))
        if (
            op == "-"
            and isinstance(operand, Literal)
            and isinstance(operand.value, (int, float))
            and not isinstance(operand.value, bool)
        ):
            # the parser folds numeric negation into the literal
            return Literal(-operand.value)
        return UnaryOp(op, operand)
    return FuncCall(
        draw(st.sampled_from(["hash", "len", "abs"])),
        (draw(expressions(depth=depth + 1)),),
    )


class TestExpressionRoundTrip:
    @given(expr=expressions())
    @settings(max_examples=200, deadline=None)
    def test_parse_print_identity(self, expr):
        printed = print_expr(expr)
        reparsed = Parser(printed).parse_expr()
        assert reparsed == expr, printed

    @given(expr=expressions())
    @settings(max_examples=100, deadline=None)
    def test_printing_is_deterministic(self, expr):
        assert print_expr(expr) == print_expr(expr)
