"""ADN processors: placed element groups executing on simulated resources.

A :class:`PlacementSegment` is the controller's decision that a run of
chain elements executes on one platform at one location (paper §5.3: "an
ADN processor might only manage a portion of a processing graph"). The
:class:`ProcessorRuntime` executes that run — *functionally* (real
element logic via the compiled Python modules, so drops, rewrites and
state updates actually happen) while charging the platform's costs to
the right simulation resource.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from ..compiler.compiler import CompiledChain
from ..dsl.functions import FunctionRegistry
from ..errors import PlacementError
from ..overload import DEADLINE_EXPIRED, QUEUE_FULL
from ..overload.admission import AdmissionController, admission_from_meta
from ..platforms import Platform
from ..sim.cluster import Cluster, Machine
from ..sim.costmodel import CostModel
from ..sim.engine import US, Event, Simulator
from ..sim.resources import Resource
from .message import Row

#: machine name used for on-switch segments
SWITCH_LOCATION = "switch"


@dataclass
class PlacementSegment:
    """A contiguous run of chain elements on one platform/location."""

    platform: Platform
    machine: str  # machine name, or SWITCH_LOCATION
    elements: Tuple[str, ...]
    #: parallel stages local to this segment (subset of the chain's)
    stages: Tuple[Tuple[str, ...], ...] = ()
    #: number of replicated processor instances (Figure 2 config 4)
    replicas: int = 1
    #: bound on the processor's wait queue (repro.overload): RPCs
    #: arriving past it are rejected explicitly (``QueueFull``) instead
    #: of waiting forever; None keeps the legacy unbounded queue
    queue_limit: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.stages:
            self.stages = tuple((name,) for name in self.elements)


@dataclass
class PlacementPlan:
    """The full realization of one chain across processors."""

    segments: List[PlacementSegment]
    #: "engine" (mRPC owns the wire) or "proxyless" (the RPC library
    #: itself talks to the kernel), per side
    client_transport: str = "engine"
    server_transport: str = "engine"
    description: str = ""
    #: configuration epoch minted by the controller that solved this
    #: plan; the data plane fences installs whose epoch is not strictly
    #: newer than what it already runs (0 = legacy unfenced plan)
    epoch: int = 0

    def segments_on(self, machine: str) -> List[PlacementSegment]:
        return [seg for seg in self.segments if seg.machine == machine]

    def element_locations(self) -> Dict[str, Tuple[Platform, str]]:
        return {
            name: (segment.platform, segment.machine)
            for segment in self.segments
            for name in segment.elements
        }


@dataclass
class SegmentResult:
    """Outcome of pushing one RPC through a segment."""

    outputs: List[Row]
    dropped_by: Optional[str] = None
    #: on a drop: did any element — or any member inside a fused
    #: element — complete before the dropper? Decides whether the abort
    #: turnaround re-traverses this processor's response handlers.
    dropped_after_entry: bool = False
    mirrored: int = 0
    cpu_us: float = 0.0
    extra_us: float = 0.0


class ProcessorRuntime:
    """One placed processor executing a segment's elements."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        segment: PlacementSegment,
        chain: CompiledChain,
        registry: FunctionRegistry,
        handcoded: bool = False,
        sanitizer=None,
        sanitizer_instance: str = "",
    ):
        self.sim = sim
        self.cluster = cluster
        self.segment = segment
        self.chain = chain
        self.registry = registry
        self.costs: CostModel = cluster.costs
        self.handcoded = handcoded
        self._pending_func_us = 0.0
        #: shadow exactly-once checker (repro.state.table.StateSanitizer);
        #: when set, element execution is bracketed with its rpc context
        #: and every instance's state is attached on creation
        self.sanitizer = sanitizer
        self._sanitizer_instance = sanitizer_instance
        self.resource = self._allocate_resource()
        self.instances: Dict[str, object] = {}
        for name in segment.elements:
            compiled = chain.elements[name]
            artifact = compiled.artifact("python")
            self.instances[name] = artifact.factory(
                on_func_call=self._on_func_call
            )
        self._attach_sanitizer()
        self.rpcs_processed = 0
        self.rpcs_dropped = 0
        #: overload-control drop taxonomy (repro.overload): sheds by the
        #: admission controller, bounded-queue rejects, and RPCs dropped
        #: because their propagated deadline had already expired
        self.rpcs_shed = 0
        self.rpcs_queue_rejected = 0
        self.rpcs_deadline_expired = 0
        #: admission controller, if installed — programmatically or by a
        #: hosted element's ``meta { admission_control: true; }``
        self.admission: Optional[AdmissionController] = None
        if segment.queue_limit is not None and self.resource is not None:
            self.resource.queue_limit = segment.queue_limit
        for name in segment.elements:
            controller = admission_from_meta(
                sim, self.resource, chain.elements[name].ir.meta
            )
            if controller is not None:
                self.admission = controller
                break
        #: fault hooks (repro.faults): a pending hang gate, and a cost
        #: multiplier for a degraded (thermal-throttled, noisy-neighbour)
        #: processor
        self.hang_event: Optional[Event] = None
        self.slowdown_factor: float = 1.0
        #: per-element counters for telemetry reports (paper §5.3)
        self.element_processed: Dict[str, int] = {
            name: 0 for name in segment.elements
        }
        self.element_dropped: Dict[str, int] = {
            name: 0 for name in segment.elements
        }

    # -- resources ----------------------------------------------------------

    def _allocate_resource(self) -> Optional[Resource]:
        platform = self.segment.platform
        if platform is Platform.SWITCH_P4:
            if not self.cluster.switch.programmable:
                raise PlacementError(
                    "switch segment placed but the ToR is not programmable"
                )
            self.cluster.switch.installed_elements.extend(self.segment.elements)
            return None
        machine: Machine = self.cluster.machine(self.segment.machine)
        if platform is Platform.SMARTNIC:
            if machine.smartnic_cores is None:
                raise PlacementError(
                    f"machine {machine.name!r} has no SmartNIC"
                )
            return machine.smartnic_cores
        names = {
            Platform.MRPC: "mrpc-engine",
            Platform.RPC_LIB: "app",
            Platform.SIDECAR: "sidecar",
            Platform.KERNEL_EBPF: "kernel",
        }
        return machine.thread(names[platform], capacity=self.segment.replicas)

    def _on_func_call(self, spec, size: int) -> None:
        self._pending_func_us += spec.cost_us + size * spec.cost_per_byte_us

    # -- liveness (repro.faults) --------------------------------------------

    @property
    def live(self) -> bool:
        """False while the hosting machine is crashed: RPCs routed here
        blackhole instead of executing."""
        return self.cluster.machine_up(self.segment.machine)

    @property
    def control_reachable(self) -> bool:
        """False while the hosting machine's control channel is severed
        (CONTROL_PARTITION): the dataplane keeps serving, but telemetry
        reports cannot reach the controller."""
        return self.cluster.control_reachable(self.segment.machine)

    def reset_instances(self) -> None:
        """Re-create every element instance with empty runtime state —
        what a machine restart means for the processors it hosted (init
        blocks re-run; everything accumulated since is gone)."""
        for name in self.segment.elements:
            compiled = self.chain.elements[name]
            artifact = compiled.artifact("python")
            self.instances[name] = artifact.factory(
                on_func_call=self._on_func_call
            )
        self._attach_sanitizer()

    def detach_sanitizer(self) -> None:
        """Unhook this processor's replicas (it was superseded by a
        re-plan; its frozen state must not feed the divergence check)."""
        if self.sanitizer is None:
            return
        for name in self.instances:
            self.sanitizer.detach(
                name,
                instance=self._sanitizer_instance,
                tag=f"{self.segment.machine}/{self.segment.platform.value}",
            )

    def _attach_sanitizer(self) -> None:
        """(Re-)hook every instance's state store into the sanitizer —
        must follow any instance re-creation, or fresh state mutates
        unobserved."""
        if self.sanitizer is None:
            return
        for name, instance in self.instances.items():
            self.sanitizer.attach(
                instance.state,
                element=name,
                instance=self._sanitizer_instance,
                tag=f"{self.segment.machine}/{self.segment.platform.value}",
                module=instance,
            )

    # -- execution -------------------------------------------------------------

    def _element_cost_us(self, name: str, kind: str, func_us: float) -> float:
        analysis = self.chain.elements[name].analysis
        # one dispatch per element — a fused element *is* one element,
        # so its members share a single dispatch by construction
        dispatch = self.costs.element_dispatch_us
        base = dispatch + analysis.handler_cost_us(kind) + func_us
        factor = self.costs.platform_element_factor[self.segment.platform]
        if self.handcoded:
            factor *= self.costs.handcoded_element_factor
        if self.segment.platform is Platform.SIDECAR:
            base += self.costs.wasm_trampoline_us
        if self.segment.platform is Platform.SMARTNIC:
            # per-packet match-action work on the NIC's own cores
            base += self.costs.nic_match_action_us
        return base * factor * self.slowdown_factor

    def _run_functionally(self, kind: str, rpc: Row) -> SegmentResult:
        """Execute the segment's elements on one tuple; returns outputs
        and the computed CPU/latency charges."""
        result = SegmentResult(outputs=[dict(rpc)])
        order = (
            self.segment.elements
            if kind == "request"
            else tuple(reversed(self.segment.elements))
        )
        stages = (
            self.segment.stages
            if kind == "request"
            else tuple(reversed(self.segment.stages))
        )
        stage_costs: List[float] = []
        current = dict(rpc)
        executed = 0
        if self.sanitizer is not None:
            # the whole segment walk below is synchronous (no yields), so
            # a single enter/exit bracket ties every mutation to this RPC
            self.sanitizer.enter(
                rpc.get("rpc_id"), scope=self._sanitizer_instance
            )
        try:
            for stage in stages:
                member_costs: List[float] = []
                for name in stage:
                    if name not in order:
                        continue
                    self._pending_func_us = 0.0
                    instance = self.instances[name]
                    outputs = instance.process(dict(current), kind)
                    member_costs.append(
                        self._element_cost_us(name, kind, self._pending_func_us)
                    )
                    executed += 1
                    self.element_processed[name] += 1
                    if not outputs:
                        if kind == "request":
                            result.dropped_by = name
                            result.dropped_after_entry = (
                                executed > 1
                                or getattr(instance, "fused_progress", 0) > 0
                            )
                            self.element_dropped[name] += 1
                            result.outputs = []
                            stage_costs.append(self._stage_cost(member_costs))
                            result.cpu_us = sum(stage_costs)
                            result.extra_us = self._extra_us(len(order))
                            return result
                        # a dropped response degenerates to forwarding; keep
                        # the current tuple (responses are not re-aborted)
                        outputs = [dict(current)]
                    forward = outputs[0]
                    for extra in outputs[1:]:
                        result.mirrored += 1
                        del extra  # mirrored copies terminate at a shadow sink
                    current = forward
                stage_costs.append(self._stage_cost(member_costs))
        finally:
            if self.sanitizer is not None:
                self.sanitizer.exit()
        result.outputs = [current]
        result.cpu_us = sum(stage_costs)
        result.extra_us = self._extra_us(len(order))
        return result

    def _parallel_capable(self) -> bool:
        return self.resource is not None and self.resource.capacity > 1

    def _stage_cost(self, member_costs: List[float]) -> float:
        """CPU charge for one stage: concurrent members overlap (pay the
        max) when the platform has spare capacity, else serialize."""
        if self._parallel_capable() and member_costs:
            return max(member_costs)
        return sum(member_costs)

    def _extra_us(self, element_count: int) -> float:
        per_element = self.costs.platform_element_extra_us[self.segment.platform]
        if self.segment.platform is Platform.SIDECAR:
            # crossing into the sidecar process costs once per traversal,
            # not per element
            return per_element
        extra = per_element * element_count
        if self.segment.platform.is_hardware:
            # a chain longer than the device pipeline recirculates: every
            # extra pass re-crosses the whole match-action pipeline
            from ..offload.device import device_profile_for

            profile = device_profile_for(self.segment.platform)
            passes = profile.recirculations(element_count) if profile else 0
            if passes:
                per_pass = (
                    self.costs.nic_recirculate_extra_us
                    if self.segment.platform is Platform.SMARTNIC
                    else self.costs.switch_recirculate_extra_us
                )
                extra += passes * per_pass
        return extra

    def install_admission(self, controller: AdmissionController) -> None:
        """Install (or replace) this processor's admission controller."""
        self.admission = controller

    def _overload_drop(self, reason: str) -> SegmentResult:
        """An RPC rejected before any element ran: no service time was
        spent (that is the whole point — shed early, shed cheap), the
        abort turnaround starts here."""
        self.rpcs_dropped += 1
        if reason == QUEUE_FULL:
            self.rpcs_queue_rejected += 1
        elif reason == DEADLINE_EXPIRED:
            self.rpcs_deadline_expired += 1
        else:
            self.rpcs_shed += 1
        return SegmentResult(
            outputs=[], dropped_by=reason, dropped_after_entry=False
        )

    def execute(
        self, kind: str, rpc: Row, deadline_at: Optional[float] = None
    ) -> Generator:
        """Simulation process: queue on the platform resource, execute,
        hold for the computed service time. Returns a SegmentResult.

        Requests pass three overload gates *before* queueing or spending
        service time: the propagated deadline (an expired RPC's caller
        has already given up — completing it is pure waste), the
        admission controller (CoDel / utilization shedding), and the
        bounded queue (explicit ``QueueFull`` reject at the limit).
        """
        while self.hang_event is not None:
            # hung: park until the injector resumes us (the loop re-checks
            # in case a second hang lands the instant the first lifts)
            yield self.hang_event
        self.rpcs_processed += 1
        if kind == "request":
            if deadline_at is not None and self.sim.now > deadline_at:
                return self._overload_drop(DEADLINE_EXPIRED)
            if self.admission is not None and self.resource is not None:
                reason = self.admission.admit(rpc)
                if reason is not None:
                    return self._overload_drop(reason)
            if self.resource is not None and not self.resource.can_enqueue:
                self.resource.reject()
                return self._overload_drop(QUEUE_FULL)
        if self.resource is None:
            # switch pipeline: line rate, latency only
            result = self._run_functionally(kind, rpc)
            total_extra = result.extra_us + result.cpu_us  # pipeline delay
            if total_extra > 0:
                yield self.sim.timeout(total_extra * US)
            result.cpu_us = 0.0
            if result.dropped_by:
                self.rpcs_dropped += 1
            return result
        yield self.resource.request()
        try:
            result = self._run_functionally(kind, rpc)
            if result.cpu_us > 0:
                yield self.sim.timeout(result.cpu_us * US)
            self.resource.busy_time += result.cpu_us * US
            self.resource.served += 1
        finally:
            self.resource.release()
        if result.extra_us > 0:
            yield self.sim.timeout(result.extra_us * US)
        if result.dropped_by:
            self.rpcs_dropped += 1
        return result

    # -- state access for the controller ------------------------------------------

    def element_state(self, name: str):
        """The StateStore of one element instance (controller-facing)."""
        return self.instances[name].state

    def seed_endpoints(self, element: str, replicas: List[str]) -> None:
        """Install the replica set into a load balancer's endpoints table
        (what the controller does when Deployments change)."""
        table = self.element_state(element).table("endpoints")
        table.clear()
        for index, replica in enumerate(replicas):
            table.insert_values([index, replica])
