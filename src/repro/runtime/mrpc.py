"""The ADN data-plane path over mRPC (the paper's prototype processor).

``AdnMrpcStack`` wires a compiled chain + placement plan into a runnable
RPC path on the simulated cluster:

.. code-block:: text

    client app ──shm──▶ [client-side segments] ──wire──▶ [switch segment]
        ──wire──▶ [server-side segments] ──shm──▶ server app
    (response traverses the same segments in reverse)

Key fidelity points:

* messages are *really* encoded with the hop's minimal header layout
  (:class:`~repro.net.wire.AdnWireCodec`) — wire sizes are measured, not
  assumed;
* elements *really* execute (drops, rewrites, state);
* transport CPU is charged to whoever owns the wire on each side: the
  mRPC engine (default) or the RPC library itself ("proxyless", Figure 2
  config 1);
* an RPC aborted by an element turns around at that processor and pays
  only the return hops it actually crossed.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Generator, List, Optional, Sequence, Tuple

from ..compiler.compiler import CompiledChain
from ..compiler.headers import plan_hop_headers
from ..dsl.functions import FunctionRegistry
from ..dsl.schema import RpcSchema
from ..errors import StaleEpochError
from ..net.tcp import wire_bytes_for_message
from ..net.wire import AdnWireCodec
from ..overload import DEADLINE_EXPIRED, DEADLINE_FIELD, OVERLOAD_ABORTS
from ..overload.admission import AdmissionConfig, AdmissionController
from ..overload.budget import (
    CircuitBreaker,
    CircuitBreakerPolicy,
    RetryBudget,
    RetryBudgetConfig,
)
from ..platforms import Platform
from ..sim.cluster import Cluster
from ..sim.engine import US, Simulator
from ..sim.resources import Resource
from .message import (
    Row,
    RpcOutcome,
    make_abort,
    make_request,
    make_response,
    payload_bytes,
)
from .processor import (
    SWITCH_LOCATION,
    PlacementPlan,
    PlacementSegment,
    ProcessorRuntime,
)

#: key a server handler may put in its overrides dict to abort the RPC
#: at the server boundary instead of answering it (the value becomes the
#: ``aborted_by`` reason) — how a graph service fails upward when a
#: required downstream call failed
ABORT_KEY = "__abort__"


def _handler_arity(handler) -> int:
    """Positional parameters a server handler accepts (1 = legacy
    request-only, 2 = request + propagated absolute deadline)."""
    import inspect

    try:
        parameters = inspect.signature(handler).parameters.values()
    except (TypeError, ValueError):  # builtins, odd callables
        return 1
    count = 0
    for parameter in parameters:
        if parameter.kind in (
            inspect.Parameter.POSITIONAL_ONLY,
            inspect.Parameter.POSITIONAL_OR_KEYWORD,
        ):
            count += 1
        elif parameter.kind is inspect.Parameter.VAR_POSITIONAL:
            return 2
    return count


def default_plan(
    chain: CompiledChain, machine: str = "client-host"
) -> PlacementPlan:
    """The prototype's placement: every element in the client-side mRPC
    engine (the paper's §6 setup compiles the chain into engine modules
    on the sender)."""
    segment = PlacementSegment(
        platform=Platform.MRPC,
        machine=machine,
        elements=chain.element_order,
        stages=chain.ir.stages,
    )
    return PlacementPlan(
        segments=[segment],
        description="all elements in the client-side mRPC engine",
    )


class AdnMrpcStack:
    """A runnable ADN RPC path. Use ``stack.call(**fields)`` as the
    workload generator's call function."""

    def __init__(
        self,
        sim: Simulator,
        cluster: Cluster,
        chain: CompiledChain,
        schema: RpcSchema,
        registry: FunctionRegistry,
        plan: Optional[PlacementPlan] = None,
        handcoded: bool = False,
        client_service: str = "A",
        server_service: str = "B",
        server_replicas: int = 1,
        filters: Optional[Sequence] = None,
        filter_order: Optional[Sequence[str]] = None,
        guarantees=None,
        server_handler=None,
        tracing: bool = False,
        retry_policy=None,
        queue_limit: Optional[int] = None,
        admission: Optional[AdmissionConfig] = None,
        retry_budget: Optional[RetryBudgetConfig] = None,
        circuit_breaker: Optional[CircuitBreakerPolicy] = None,
        client_machine: str = "client-host",
        server_machine: str = "server-host",
        client_thread: str = "client-app",
        server_thread: str = "server-app",
        l2_tag: str = "",
        propagate_deadline: bool = False,
        app_reads: Optional[FrozenSet[str]] = None,
        sanitizer=None,
    ):
        self.sim = sim
        self.cluster = cluster
        self.chain = chain
        self.schema = schema
        self.registry = registry
        #: which hosts this hop's two endpoints live on. The historical
        #: single-hop stack always spanned client-host -> server-host;
        #: a service graph instantiates one stack per RPC edge, each on
        #: the machines its placement assigned (repro.graph).
        self.client_machine = client_machine
        self.server_machine = server_machine
        self.client_thread = client_thread
        self.server_thread = server_thread
        #: distinguishes this stack's L2 endpoints when several stacks
        #: share a service name on one cluster (fan-out edges out of one
        #: service each need their own inbox)
        self.l2_tag = l2_tag
        self.plan = plan or default_plan(chain, machine=client_machine)
        #: epoch fence (repro.control.resilience): the newest
        #: configuration epoch this stack has accepted. ``apply_plan``
        #: rejects epoch-carrying plans that are not strictly newer —
        #: the defense against a deposed controller double-applying a
        #: superseded placement. Legacy epoch-0 plans stay unfenced.
        self.config_epoch = self.plan.epoch
        self.fence_epochs = True
        self.stale_plans_rejected = 0
        #: only ever nonzero with ``fence_epochs`` off (the split-brain
        #: baseline the resilience benchmark compares against)
        self.stale_plans_applied = 0
        self.costs = cluster.costs
        self.handcoded = handcoded
        self.client_service = client_service
        self.server_service = server_service
        self.server_replicas = server_replicas
        #: requested delivery guarantees (GuaranteeDecl or None): ordered
        #: adds a seq field to every hop header, reliable an ack field
        self.guarantees = guarantees
        #: optional application logic at the destination: a generator
        #: function(request_row) that may itself call other stacks (a
        #: microservice calling downstream services) and returns a dict
        #: of application-field overrides for the response
        self.server_handler = server_handler
        #: when set, every outcome carries notes["trace"]: a list of
        #: (span_name, enter_s, exit_s) covering processors and hops
        #: (§5.3: processors report tracing information)
        self.tracing = tracing
        self._next_seq = 0
        self._last_seq_seen = -1
        self.out_of_order_detected = 0
        registry.bind_clock(lambda: sim.now)
        #: does the handler want the propagated absolute deadline too?
        #: (graph service handlers derive child-RPC budgets from it)
        self._handler_takes_deadline = (
            server_handler is not None
            and _handler_arity(server_handler) >= 2
        )

        self.client_app: Resource = cluster.machine(client_machine).thread(
            self.client_thread
        )
        self.server_app: Resource = cluster.machine(server_machine).thread(
            self.server_thread, capacity=max(1, server_replicas)
        )
        #: shadow exactly-once/divergence checker (repro.state), shared
        #: across the path's processors; replicas of this stack's element
        #: instances group under the stack identity (its l2 tag, else the
        #: service pair) so independent per-edge instances never compare
        self.sanitizer = sanitizer
        self._sanitizer_instance = (
            l2_tag or f"{client_service}->{server_service}"
        )
        self.processors: List[ProcessorRuntime] = [
            ProcessorRuntime(
                sim, cluster, segment, chain, registry, handcoded,
                sanitizer=sanitizer,
                sanitizer_instance=self._sanitizer_instance,
            )
            for segment in self.plan.segments
        ]
        #: overload-control configuration (repro.overload): bounded
        #: queues + admission control on every processor, and deadline
        #: propagation on the wire whenever the retry policy carries a
        #: deadline budget (the budget IS the deadline being propagated).
        self._queue_limit = queue_limit
        self._admission_config = admission
        self._propagate_deadline = propagate_deadline or (
            retry_policy is not None
            and getattr(retry_policy, "deadline_budget_ms", None) is not None
        )
        #: mesh-proven application reads at the destination (None:
        #: assume every schema field) — narrows the request hop header
        #: exactly like repro.analysis.graph computed it
        self._app_reads = app_reads
        self._nic_rx_processor = self._find_nic_rx(self.processors)
        self._configure_overload(self.processors)
        self._transport: Dict[str, Resource] = {}
        for side, machine_name, mode in (
            ("client", client_machine, self.plan.client_transport),
            ("server", server_machine, self.plan.server_transport),
        ):
            machine = cluster.machine(machine_name)
            if mode == "engine":
                self._transport[side] = machine.thread("mrpc-engine")
            else:  # proxyless: the app thread owns the wire
                self._transport[side] = (
                    self.client_app if side == "client" else self.server_app
                )
        #: execution order along the path (the plan may have reordered
        #: elements relative to the chain, e.g. for switch offload)
        self._traversal_order = [
            name
            for segment in self.plan.segments
            for name in segment.elements
        ]
        self._seed_load_balancers()
        self._codec = self._build_codec()
        self.wire_bytes_total = 0
        self.mirrored_total = 0
        #: fault observability (repro.faults): attempts that vanished
        #: into a crashed machine / dropped frame, by where they died,
        #: and server-side logic runs beyond the first per logical RPC
        self.rpcs_lost = 0
        self.lost_by: Dict[str, int] = {}
        #: requests whose propagated deadline expired in flight, caught
        #: at the server boundary before application service time
        self.deadline_expired_at_server = 0
        self.duplicate_server_executions = 0
        self._server_executions: Dict[object, int] = {}
        self._attach_l2()
        # stream-shaping filters (retries, timeouts, ...) wrap the path;
        # ``call`` is what workload generators should drive. The retry
        # policy sits innermost (closest to the raw path) so declared
        # filters shape already-reliable calls.
        base = self.call_raw
        self.retry_stats = None
        self.retry_budget: Optional[RetryBudget] = (
            RetryBudget(retry_budget) if retry_budget is not None else None
        )
        self.breaker: Optional[CircuitBreaker] = (
            CircuitBreaker(sim, circuit_breaker)
            if circuit_breaker is not None
            else None
        )
        if retry_policy is not None:
            from .filters import RetryStats, wrap_retry_policy

            self.retry_stats = RetryStats()
            base = wrap_retry_policy(
                self.sim,
                base,
                retry_policy,
                stats=self.retry_stats,
                budget=self.retry_budget,
                breaker=self.breaker,
                propagate_deadline=self._propagate_deadline,
                sanitizer=sanitizer,
            )
        if filters:
            from .filters import apply_filters

            self.call = apply_filters(
                self.sim, base, list(filters), order=filter_order
            )
        else:
            self.call = base

    # -- setup -----------------------------------------------------------

    def _configure_overload(
        self, processors: List[ProcessorRuntime]
    ) -> None:
        """Apply stack-level overload controls to a processor set (also
        re-applied after a failover re-plan): bound every processor's
        queue and install an admission controller per processor. Meta-
        driven installs (the stdlib ``AdmissionControl`` element) happen
        inside ProcessorRuntime and win only when the stack itself does
        not configure admission."""
        for processor in processors:
            if processor.resource is None:
                continue  # switch pipeline: line rate, nothing queues
            if self._queue_limit is not None:
                processor.resource.queue_limit = self._queue_limit
                if processor.segment.queue_limit is None:
                    processor.segment.queue_limit = self._queue_limit
            if self._admission_config is not None:
                monitor = processor.resource
                if (
                    processor.segment.platform is Platform.SMARTNIC
                    and processor.segment.machine == self.server_machine
                ):
                    # receive-side dispatching: the NIC sits in front of
                    # the host and sheds on the *host engine's*
                    # backpressure, not its own (its match-action cores
                    # are never the bottleneck) — that is what makes a
                    # NIC shed nearly free for the host
                    monitor = self.cluster.machine(
                        self.server_machine
                    ).thread("mrpc-engine")
                processor.install_admission(
                    AdmissionController(
                        self.sim, monitor, self._admission_config
                    )
                )

    def _find_nic_rx(
        self, processors: List[ProcessorRuntime]
    ) -> Optional[ProcessorRuntime]:
        """The server-side SmartNIC processor, if the plan placed one —
        it owns receive-side dispatch for this hop."""
        for processor in processors:
            segment = processor.segment
            if (
                segment.platform is Platform.SMARTNIC
                and segment.machine == self.server_machine
            ):
                return processor
        return None

    def _seed_load_balancers(self) -> None:
        replicas = [
            f"{self.server_service}.{index + 1}"
            for index in range(self.server_replicas)
        ]
        for processor in self.processors:
            for name in processor.segment.elements:
                if "endpoints" in {
                    decl.name for decl in self.chain.elements[name].ir.states
                }:
                    processor.seed_endpoints(name, replicas)

    def _build_codec(self) -> AdnWireCodec:
        """Codecs for the client→server wire hop, from the minimal
        header plans (per direction) at the last client-side chain
        position."""
        boundary = -1
        for index, name in enumerate(self.chain.element_order):
            location = self.plan.element_locations().get(name)
            if location and location[1] == self.client_machine:
                boundary = index
        plans = plan_hop_headers(
            self.chain.ir, self.schema, [boundary],
            guarantees=self.guarantees,
            deadline=self._propagate_deadline,
            app_reads=self._app_reads,
        )
        self.hop_plan = plans[0]
        response_plans = plan_hop_headers(
            self.chain.ir, self.schema, [boundary], kind="response",
            guarantees=self.guarantees,
        )
        self.response_hop_plan = response_plans[0]
        self._response_codec = AdnWireCodec(self.response_hop_plan.layout)
        return AdnWireCodec(self.hop_plan.layout)

    def _attach_l2(self) -> None:
        """Attach both hosts' engines to the cluster's flat-identifier
        virtual link layer (the only network service ADN assumes, §3).
        Frames delivered to an endpoint land in its inbox; the path
        runner consumes them after paying the wire latency."""
        self._l2_inbox: Dict[str, List[bytes]] = {"client": [], "server": []}
        l2 = self.cluster.l2
        tag = f"#{self.l2_tag}" if self.l2_tag else ""
        self._l2_names = {
            "client": f"{self.client_service}.0/engine{tag}",
            "server": f"{self.server_service}/engine{tag}",
        }
        for side, name in self._l2_names.items():
            if l2.resolve(name) is None:
                l2.attach(
                    name,
                    lambda frame, side=side: self._l2_inbox[side].append(
                        frame.payload
                    ),
                )

    def _l2_transmit(
        self, from_side: str, payload: bytes
    ) -> Optional[bytes]:
        """Push one encoded message over the virtual L2 to the other
        side; returns the bytes as delivered there, or None when the
        frame died en route (partition, loss, or a crashed far host)."""
        to_side = "server" if from_side == "client" else "client"
        to_machine = (
            self.server_machine if to_side == "server" else self.client_machine
        )
        if not self.cluster.machine_up(to_machine):
            return None  # blackholed: nothing is listening
        frame = self.cluster.l2.send(
            self._l2_names[from_side], self._l2_names[to_side], payload
        )
        if frame is None:
            return None
        return self._l2_inbox[to_side].pop()

    def _codec_for(self, message: Row) -> AdnWireCodec:
        if message.get("kind") == "response":
            return self._response_codec
        return self._codec

    # -- helpers ------------------------------------------------------------

    def _transport_cost(
        self, side: str, message: Row
    ) -> Tuple[float, float, int]:
        """(cpu_us, extra_us, wire_bytes) for putting one message on the
        wire from ``side`` (receive costs are symmetric)."""
        codec = self._codec_for(message)
        encoded = codec.encode(message)
        wire = wire_bytes_for_message(len(encoded))
        cpu = (
            self.costs.mrpc_tcp_batched_us
            + self.costs.header_codec_us(len(codec.layout.fields))
        )
        extra = self.costs.mrpc_tcp_unbatched_extra_us
        return cpu, extra, wire

    def _cross_wire(
        self, message: Row, deadline_at: Optional[float] = None
    ) -> Optional[Row]:
        """What the far side of the hop actually receives: the tuple
        encoded with the hop's minimal header layout and decoded again.
        Fields the compiler proved unnecessary downstream really do not
        cross — a layout bug shows up as behavioural divergence, not
        just a wrong byte count.

        With deadline propagation on, the *remaining* budget (ms) rides
        the request header (gRPC-style — relative budgets survive clock
        skew that absolute timestamps would not); the receiver rebuilds
        an absolute deadline via :meth:`_deadline_after_wire`. -1 is the
        "no deadline" sentinel, distinct from 0 = already expired.
        """
        codec = self._codec_for(message)
        outbound = dict(message)
        if self.guarantees is not None and getattr(
            self.guarantees, "ordered", False
        ):
            if outbound.get("kind") != "response":
                self._next_seq += 1
                outbound["seq"] = self._next_seq
        if self._propagate_deadline and outbound.get("kind") != "response":
            outbound[DEADLINE_FIELD] = (
                max(0.0, (deadline_at - self.sim.now) * 1e3)
                if deadline_at is not None
                else -1.0
            )
        from_side = (
            "client" if outbound.get("kind") != "response" else "server"
        )
        delivered = self._l2_transmit(from_side, codec.encode(outbound))
        if delivered is None:
            return None
        received = codec.decode(delivered)
        if "seq" in received and received.get("kind") != "response":
            if received["seq"] <= self._last_seq_seen:
                self.out_of_order_detected += 1
            self._last_seq_seen = received["seq"]
        # transport-external context (e.g. `method`, if no downstream
        # element reads it) is intentionally absent; readers get the
        # layout's defaults
        return received

    def _deadline_after_wire(self, received: Row) -> Optional[float]:
        """Absolute deadline as the *receiver* computes it — strictly
        from the wire field, so the layout really carries the budget."""
        if not self._propagate_deadline:
            return None
        remaining_ms = received.get(DEADLINE_FIELD)
        if remaining_ms is None or float(remaining_ms) < 0.0:
            return None
        return self.sim.now + float(remaining_ms) * 1e-3

    def _use(self, resource: Resource, cpu_us: float) -> Generator:
        yield from resource.use(cpu_us * US)

    def _wire_hop(self, size_bytes: int, hops: int = 1) -> Generator:
        self.wire_bytes_total += size_bytes
        # a latency-spike fault stretches every hop while it is active
        extra_us = self.cluster.l2.conditions.extra_latency_us
        yield self.sim.timeout(
            (self.costs.wire_us(size_bytes, hops) + extra_us) * US
        )

    def _lost(self, where: str) -> Generator:
        """This attempt just vanished (crashed host or dropped frame):
        park its process forever, like a real blackholed packet. Only a
        caller-side per-attempt timeout (:class:`RetryPolicy`) turns the
        silence into a visible, retryable abort — which is exactly the
        "no silent loss requires retries" property the fault tests pin.

        Never call this while holding a Resource — lost attempts must
        not wedge a thread pool.
        """
        self.rpcs_lost += 1
        self.lost_by[where] = self.lost_by.get(where, 0) + 1
        yield self.sim.event()  # never fires

    # -- the path -----------------------------------------------------------------

    def call_raw(self, **fields: object) -> Generator:
        """Issue one RPC through the raw path (no stream-shaping
        filters); returns an :class:`RpcOutcome`."""
        issued_at = self.sim.now
        # the caller's absolute deadline (wrap_retry_policy injects it
        # when the policy has a deadline budget); it crosses the wire as
        # a remaining-ms header field, never as an application field
        raw_deadline = fields.pop("deadline_at", None)
        deadline_at: Optional[float] = (
            float(raw_deadline) if raw_deadline is not None else None  # type: ignore[arg-type]
        )
        request = make_request(
            self.schema,
            src=f"{self.client_service}.0",
            dst=self.server_service,
            **fields,
        )
        if self.sanitizer is not None:
            # attempts of one logical RPC share an rpc_id (the retry
            # wrapper pins it), so the counter makes attempt 2+ visible
            # to the sanitizer as duplicate executions; scoped by stack
            # because each stack's wrapper numbers ids independently
            self.sanitizer.note_attempt(
                request.get("rpc_id"), scope=self._sanitizer_instance
            )
        mirrored = 0
        # client app issues into shared memory
        yield from self._use(
            self.client_app,
            self.costs.client_issue_us + self.costs.mrpc_shm_post_us,
        )
        # engine picks it up
        yield from self._use(
            self._transport["client"], self.costs.mrpc_dispatch_us
        )

        trace: List[Tuple[str, float, float]] = []
        current: Row = request
        crossed_wire = False
        dropped_by: Optional[str] = None
        dropping_processor: Optional[ProcessorRuntime] = None
        dropped_after_entry = False
        for processor in self.processors:
            if processor.segment.machine != self.client_machine and (
                not crossed_wire
            ):
                # leave the client host
                cpu, extra, wire = self._transport_cost("client", current)
                yield from self._use(self._transport["client"], cpu)
                if extra:
                    yield self.sim.timeout(extra * US)
                hop_started = self.sim.now
                yield from self._wire_hop(wire, hops=1)
                current = self._cross_wire(current, deadline_at=deadline_at)
                if current is None:
                    yield from self._lost("wire:forward")
                deadline_at = self._deadline_after_wire(current)
                crossed_wire = True
                if self.tracing:
                    trace.append(("wire:forward", hop_started, self.sim.now))
            if not processor.live:
                yield from self._lost(f"crash:{processor.segment.machine}")
            span_started = self.sim.now
            result = yield self.sim.process(
                processor.execute("request", current, deadline_at=deadline_at)
            )
            if self.tracing:
                trace.append(
                    (
                        f"request:{processor.segment.platform.value}"
                        f"@{processor.segment.machine}",
                        span_started,
                        self.sim.now,
                    )
                )
            mirrored += result.mirrored
            if result.dropped_by:
                dropped_by = result.dropped_by
                dropping_processor = processor
                dropped_after_entry = result.dropped_after_entry
                break
            current = result.outputs[0]

        if dropped_by is None:
            if not crossed_wire:
                cpu, extra, wire = self._transport_cost("client", current)
                yield from self._use(self._transport["client"], cpu)
                if extra:
                    yield self.sim.timeout(extra * US)
                hop_started = self.sim.now
                yield from self._wire_hop(wire, hops=1)
                current = self._cross_wire(current, deadline_at=deadline_at)
                if current is None:
                    yield from self._lost("wire:forward")
                deadline_at = self._deadline_after_wire(current)
                crossed_wire = True
                if self.tracing:
                    trace.append(("wire:forward", hop_started, self.sim.now))
            if not self.cluster.machine_up(self.server_machine):
                yield from self._lost(f"crash:{self.server_machine}")
            # server engine receives and hands to the app; a server-side
            # NIC segment has already parsed the header and steers the
            # message to its core (receive-side dispatching): the host
            # wakeup shrinks and the dispatch CPU lands on the NIC
            nic = self._nic_rx_processor
            if nic is not None and nic.resource is not None:
                yield from self._use(
                    nic.resource, self.costs.nic_rx_dispatch_us
                )
                yield self.sim.timeout(
                    self.costs.nic_rx_wakeup_extra_us * US
                )
            else:
                yield self.sim.timeout(
                    self.costs.mrpc_rx_wakeup_extra_us * US
                )
            cpu, extra, _wire = self._transport_cost("server", current)
            yield from self._use(self._transport["server"], cpu)
            if deadline_at is not None and self.sim.now > deadline_at:
                # the propagated deadline expired in flight: the caller
                # has already given up, so answer with a cheap abort
                # instead of spending application service time
                self.deadline_expired_at_server += 1
                dropped_by = DEADLINE_EXPIRED
                response = make_abort(current, dropped_by)
            else:
                yield from self._use(
                    self._transport["server"], self.costs.mrpc_shm_post_us
                )
                # decode exactly what the wire carried (fidelity check
                # lives in tests: the server sees only header-plan fields)
                yield from self._use(self.server_app, self.costs.app_logic_us)
                # at-least-once bookkeeping: with a retry policy, attempts
                # of one logical RPC share an rpc_id — a retry after the
                # server already ran (response lost coming back) shows here
                executions = (
                    self._server_executions.get(request["rpc_id"], 0) + 1
                )
                self._server_executions[request["rpc_id"]] = executions
                if executions > 1:
                    self.duplicate_server_executions += 1
                if self.server_handler is not None:
                    if self._handler_takes_deadline:
                        overrides = yield from self.server_handler(
                            current, deadline_at
                        )
                    else:
                        overrides = yield from self.server_handler(current)
                    overrides = dict(overrides or {})
                    # a service handler may fail the whole RPC (e.g. a
                    # required downstream call aborted): it turns into
                    # an abort at the server boundary, so the caller's
                    # retry/breaker machinery sees a real failure
                    abort_reason = overrides.pop(ABORT_KEY, None)
                    if abort_reason is not None:
                        dropped_by = str(abort_reason)
                        response = make_abort(current, dropped_by)
                    else:
                        response = make_response(current, **overrides)
                else:
                    response = make_response(current)
        else:
            response = make_abort(current, dropped_by)

        # response path: reverse traversal from where we turned around.
        # The dropping processor itself re-runs iff anything inside it
        # (an earlier element, or an earlier member of a fused element)
        # already executed — its response handlers must see the abort.
        reverse_processors = [
            processor
            for processor in reversed(self.processors)
            if dropped_by is None
            or (
                dropped_after_entry
                if processor is dropping_processor
                else self._before_drop(
                    processor, dropped_by, dropping_processor
                )
            )
        ]
        returned_wire = crossed_wire
        for processor in reverse_processors:
            if (
                returned_wire
                and processor.segment.machine == self.client_machine
            ):
                cpu, extra, wire = self._transport_cost("server", response)
                sender = self._return_wire_resource(
                    dropped_by, dropping_processor
                )
                if sender is not None:
                    yield from self._use(sender, cpu)
                if extra:
                    yield self.sim.timeout(extra * US)
                hop_started = self.sim.now
                yield from self._wire_hop(wire, hops=1)
                response = self._cross_wire(response)
                if response is None:
                    yield from self._lost("wire:return")
                returned_wire = False
                if self.tracing:
                    trace.append(("wire:return", hop_started, self.sim.now))
            if not processor.live:
                yield from self._lost(f"crash:{processor.segment.machine}")
            span_started = self.sim.now
            result = yield self.sim.process(
                processor.execute("response", response)
            )
            if self.tracing:
                trace.append(
                    (
                        f"response:{processor.segment.platform.value}"
                        f"@{processor.segment.machine}",
                        span_started,
                        self.sim.now,
                    )
                )
            if result.outputs:
                response = result.outputs[0]
        if returned_wire:
            cpu, extra, wire = self._transport_cost("server", response)
            sender = self._return_wire_resource(
                dropped_by, dropping_processor
            )
            if sender is not None:
                yield from self._use(sender, cpu)
            if extra:
                yield self.sim.timeout(extra * US)
            hop_started = self.sim.now
            yield from self._wire_hop(wire, hops=1)
            response = self._cross_wire(response)
            if response is None:
                yield from self._lost("wire:return")
            if self.tracing:
                trace.append(("wire:return", hop_started, self.sim.now))
        if crossed_wire:
            # client engine receives the response off the wire
            yield self.sim.timeout(self.costs.mrpc_rx_wakeup_extra_us * US)
            cpu, _extra, _wire = self._transport_cost("client", response)
            yield from self._use(self._transport["client"], cpu)
        # client engine delivers to the app
        yield from self._use(
            self._transport["client"], self.costs.mrpc_dispatch_us
        )
        yield from self._use(
            self.client_app,
            self.costs.client_complete_us + self.costs.mrpc_shm_post_us,
        )
        self.mirrored_total += mirrored
        outcome = RpcOutcome(
            request=request,
            response=response,
            issued_at=issued_at,
            completed_at=self.sim.now,
            aborted_by=dropped_by or "",
            mirrored=mirrored,
        )
        if self.tracing:
            outcome.notes["trace"] = trace
        return outcome

    def _return_wire_resource(
        self,
        dropped_by: Optional[str],
        dropping_processor: Optional[ProcessorRuntime],
    ) -> Optional[Resource]:
        """Who pays CPU to put the return message on the wire from the
        server side: normally the host engine; an RPC aborted at a
        server-side hardware processor never reached the host — the
        device itself answers, so its cores (NIC) or nobody (switch,
        line rate) pay for the abort turnaround. This is the entire
        economics of shedding in the network instead of on the server.
        """
        if dropped_by and dropping_processor is not None:
            segment = dropping_processor.segment
            if (
                segment.platform.is_hardware
                and segment.machine != self.client_machine
            ):
                return dropping_processor.resource  # None on the switch
        return self._transport["server"]

    def _before_drop(
        self,
        processor: ProcessorRuntime,
        dropped_by: str,
        dropping_processor: Optional[ProcessorRuntime] = None,
    ) -> bool:
        """True when ``processor`` was traversed before the dropper (its
        elements see the response on the way back).

        ``dropped_by`` is usually an element name, but overload-control
        drops carry a synthetic reason (``Shed``/``QueueFull``/
        ``DeadlineExpired``) that names no element — those gate at
        processor entry, so position is decided by the dropping
        processor itself (or the server boundary when it is None: every
        processor was traversed)."""
        order = self._traversal_order
        if dropped_by in OVERLOAD_ABORTS or dropped_by not in order:
            if dropping_processor is None:
                return True  # dropped at the server: everyone saw it
            return self.processors.index(processor) < self.processors.index(
                dropping_processor
            )
        drop_index = order.index(dropped_by)
        indices = [order.index(n) for n in processor.segment.elements if n in order]
        if not indices:
            return False
        return min(indices) < drop_index

    # -- reconfiguration (repro.faults) ---------------------------------------

    def apply_plan(self, new_plan: PlacementPlan) -> List[ProcessorRuntime]:
        """Swap in a re-solved placement (the recovery orchestrator's
        failover step). Returns the replaced processors so the caller
        can deregister them and, for survivors, migrate state out.

        In-flight attempts keep walking the *old* processors; ones
        routed at a crashed machine die at their next liveness
        checkpoint and come back through the new plan via retries —
        exactly how a real data plane drains a superseded config.

        Epoch fence: a plan carrying an epoch must be strictly newer
        than ``config_epoch`` or it is refused with
        :class:`~repro.errors.StaleEpochError` (counted in
        ``stale_plans_rejected``). Plans with epoch 0 against an
        epoch-0 stack are legacy installs and bypass the fence.
        """
        if new_plan.epoch or self.config_epoch:
            if new_plan.epoch <= self.config_epoch:
                if self.fence_epochs:
                    self.stale_plans_rejected += 1
                    raise StaleEpochError(
                        f"stale plan epoch {new_plan.epoch} <= installed "
                        f"epoch {self.config_epoch}: refusing to apply "
                        "a superseded configuration"
                    )
                self.stale_plans_applied += 1
            self.config_epoch = max(self.config_epoch, new_plan.epoch)
        old = self.processors
        for processor in old:
            processor.detach_sanitizer()
        self.plan = new_plan
        self.processors = [
            ProcessorRuntime(
                self.sim,
                self.cluster,
                segment,
                self.chain,
                self.registry,
                self.handcoded,
                sanitizer=self.sanitizer,
                sanitizer_instance=self._sanitizer_instance,
            )
            for segment in new_plan.segments
        ]
        for side, machine_name, mode in (
            ("client", self.client_machine, new_plan.client_transport),
            ("server", self.server_machine, new_plan.server_transport),
        ):
            machine = self.cluster.machine(machine_name)
            if mode == "engine":
                self._transport[side] = machine.thread("mrpc-engine")
            else:
                self._transport[side] = (
                    self.client_app if side == "client" else self.server_app
                )
        self._traversal_order = [
            name
            for segment in new_plan.segments
            for name in segment.elements
        ]
        self._nic_rx_processor = self._find_nic_rx(self.processors)
        self._configure_overload(self.processors)
        self._seed_load_balancers()
        self._codec = self._build_codec()
        return old

    # -- accounting -----------------------------------------------------------

    def cpu_busy_by_machine(self) -> Dict[str, float]:
        return self.cluster.cpu_busy_by_machine()
