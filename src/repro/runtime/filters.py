"""Stream-shaping filter operators (paper §5.1).

"Another class of complex processing involves 'shaping' the RPC stream
via mechanisms such as timeouts, retries, and congestion control. We can
introduce special elements of type *filters* to express their
operation." Filters are declared in the DSL (``filter Retry { use
operator retry; }``) and bound to the platform-specific operators
implemented here. Each operator wraps the RPC call path:

* ``timeout`` — abort the caller's wait after a deadline (the in-flight
  work continues to consume resources, as in real systems);
* ``retry`` — re-issue on retryable aborts (injected faults, timeouts),
  up to a budget;
* ``rate_limit_shaper`` — pace issues to a target rate (leaky bucket);
* ``congestion_control`` — an AIMD window on in-flight RPCs.

Operators compose: ``apply_filters`` wraps the base call in declaration
order, so ``Retry`` outside ``Timeout`` retries timed-out attempts.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass
from typing import Callable, Generator, List, Optional, Sequence, Tuple

from ..dsl.ast_nodes import FilterDef
from ..errors import RuntimeFault
from ..overload.budget import (
    CIRCUIT_OPEN,
    CircuitBreaker,
    CircuitBreakerPolicy,
    RetryBudget,
)
from ..sim.engine import Simulator
from .message import RpcOutcome

CallFn = Callable[..., Generator]

#: aborts considered transient (safe/useful to retry) by default.
#: Overload rejects (Shed, QueueFull, ...) are deliberately absent:
#: reflexively retrying an explicit shed is how retry storms start
DEFAULT_RETRYABLE = ("Fault", "Timeout")

#: outcomes a circuit breaker counts as downstream failure — silence
#: and explicit overload rejects, but not application-level aborts
#: (an ACL denial is the server working, not the server failing)
BREAKER_FAILURES = frozenset(
    {"Timeout", "DeadlineExceeded", "Shed", "QueueFull", "DeadlineExpired"}
)


class _TimeoutSentinel:
    """Marks the timer winning the race against the in-flight RPC."""


_TIMED_OUT = _TimeoutSentinel()


def wrap_timeout(sim: Simulator, call: CallFn, timeout_ms: float) -> CallFn:
    """Abort the caller's wait after ``timeout_ms``. The late response,
    if it ever arrives, is discarded (its resource usage still counts —
    timeouts do not refund work)."""
    timeout_s = timeout_ms * 1e-3

    def shaped(**fields) -> Generator:
        issued_at = sim.now
        in_flight = sim.process(call(**fields))
        timer = sim.timeout(timeout_s, value=_TIMED_OUT)
        winner = yield sim.any_of([in_flight, timer])
        if isinstance(winner, _TimeoutSentinel):
            return RpcOutcome(
                request=dict(fields),
                response={"status": "aborted:Timeout", "kind": "response"},
                issued_at=issued_at,
                completed_at=sim.now,
                aborted_by="Timeout",
            )
        return winner

    return shaped


def wrap_retry(
    sim: Simulator,
    call: CallFn,
    max_retries: int,
    retry_on: Sequence[str] = DEFAULT_RETRYABLE,
    backoff_ms: float = 0.0,
    deadline_budget_ms: Optional[float] = None,
) -> CallFn:
    """Re-issue RPCs aborted by a retryable element, up to
    ``max_retries`` additional attempts with optional fixed backoff.
    With ``deadline_budget_ms`` the whole logical call (attempts and
    backoffs) is bounded: once the budget is spent, the outcome is
    returned as ``DeadlineExceeded`` instead of retrying further —
    without it, a blackholed downstream means unbounded retrying
    (lint ADN404 flags exactly this configuration)."""
    retryable = frozenset(retry_on)

    def shaped(**fields) -> Generator:
        attempts = 0
        deadline = (
            sim.now + deadline_budget_ms * 1e-3
            if deadline_budget_ms is not None
            else None
        )
        while True:
            outcome: RpcOutcome = yield sim.process(call(**fields))
            outcome.notes["attempts"] = attempts + 1
            if outcome.ok or attempts >= max_retries:
                return outcome
            if outcome.aborted_by not in retryable:
                return outcome
            if deadline is not None and (
                sim.now + backoff_ms * 1e-3 >= deadline
            ):
                outcome.aborted_by = "DeadlineExceeded"
                outcome.response = {
                    "status": "aborted:DeadlineExceeded",
                    "kind": "response",
                }
                return outcome
            attempts += 1
            if backoff_ms > 0:
                yield sim.timeout(backoff_ms * 1e-3)

    return shaped


@dataclass(frozen=True)
class RetryPolicy:
    """A production-shaped retry budget (repro.faults): per-attempt
    timeout, capped exponential backoff with deterministic jitter, and
    an overall deadline budget per *logical* call.

    The per-attempt timeout is what makes fault injection survivable: an
    RPC blackholed by a crashed machine or a dropped frame never
    completes on its own — the timeout converts that silence into a
    retryable ``Timeout`` abort.
    """

    max_attempts: int = 4
    per_attempt_timeout_ms: float = 30.0
    base_backoff_ms: float = 1.0
    backoff_multiplier: float = 2.0
    max_backoff_ms: float = 50.0
    #: fraction of the backoff randomized (0 = none, 1 = ±50%); drawn
    #: from a policy-seeded RNG so runs replay exactly
    jitter: float = 0.5
    #: overall wall-clock budget for one logical call, all attempts and
    #: backoffs included; None = unbounded
    deadline_budget_ms: Optional[float] = None
    retry_on: Tuple[str, ...] = DEFAULT_RETRYABLE
    seed: int = 0

    def backoff_s(self, attempt: int, rng: random.Random) -> float:
        """Backoff after ``attempt`` (1-based) failed attempts.

        The cap applies *after* jitter: the documented contract is that
        no sleep ever exceeds ``max_backoff_ms`` (jitter used to push it
        up to 25% past the cap).
        """
        raw = self.base_backoff_ms * (
            self.backoff_multiplier ** (attempt - 1)
        )
        capped = min(raw, self.max_backoff_ms)
        jittered = capped * (1.0 + self.jitter * (rng.random() - 0.5))
        bounded = min(max(0.0, jittered), self.max_backoff_ms)
        return bounded * 1e-3


@dataclass
class RetryStats:
    """Observability for one wrapped call path."""

    logical_calls: int = 0
    attempts: int = 0
    retries: int = 0
    timeouts: int = 0
    deadline_exceeded: int = 0
    backoff_s_total: float = 0.0
    #: retries forgone because the token-bucket retry budget was empty
    budget_exhausted: int = 0
    #: logical calls answered locally by an open circuit breaker
    short_circuited: int = 0

    def amplification(self) -> float:
        """Load amplification: attempts per logical call (1.0 = no
        retries; a retry storm shows up here before anywhere else)."""
        if self.logical_calls == 0:
            return 0.0
        return self.attempts / self.logical_calls


def wrap_retry_policy(
    sim: Simulator,
    call: CallFn,
    policy: RetryPolicy,
    stats: Optional[RetryStats] = None,
    stable_rpc_id: bool = True,
    budget: Optional[RetryBudget] = None,
    breaker: Optional[CircuitBreaker] = None,
    propagate_deadline: bool = False,
    sanitizer=None,
) -> CallFn:
    """Wrap ``call`` with a :class:`RetryPolicy`.

    With ``stable_rpc_id`` (for callables that accept an ``rpc_id``
    field, like ``AdnMrpcStack.call_raw``) every attempt of one logical
    call reuses the same id, which is how the server side can count
    duplicate executions.

    Overload protection (repro.overload) layers on top:

    * ``budget`` — a :class:`~repro.overload.RetryBudget`; every retry
      must buy a token, and when the bucket runs dry the last failed
      outcome is returned as-is instead of amplifying the storm;
    * ``breaker`` — a :class:`~repro.overload.CircuitBreaker`; while it
      is open, logical calls are answered locally with ``CircuitOpen``
      at zero downstream cost, and half-open probes decide re-closing;
    * ``propagate_deadline`` — stamp the absolute deadline into the
      call's ``deadline_at`` field so a deadline-aware path (the ADN
      stack) can carry the remaining budget on the wire and drop
      expired RPCs before spending service time.
    """
    retryable = frozenset(policy.retry_on)
    rng = random.Random(policy.seed)
    ids = itertools.count(1_000_001)  # clear of make_request's sequence
    if stats is None:
        stats = RetryStats()

    def shaped(**fields) -> Generator:
        issued_at = sim.now
        stats.logical_calls += 1
        if budget is not None:
            budget.on_call()
        if breaker is not None and not breaker.allow():
            stats.short_circuited += 1
            return RpcOutcome(
                request=dict(fields),
                response={
                    "status": f"aborted:{CIRCUIT_OPEN}",
                    "kind": "response",
                },
                issued_at=issued_at,
                completed_at=sim.now,
                aborted_by=CIRCUIT_OPEN,
            )
        if stable_rpc_id:
            fields.setdefault("rpc_id", next(ids))
        deadline = (
            issued_at + policy.deadline_budget_ms * 1e-3
            if policy.deadline_budget_ms is not None
            else None
        )
        # a caller-supplied absolute deadline (a graph parent's remaining
        # budget, see repro.graph) strictly bounds this hop: the child's
        # own budget can only tighten it, never extend it
        inherited = fields.get("deadline_at")
        if inherited is not None:
            deadline = (
                float(inherited)
                if deadline is None
                else min(deadline, float(inherited))
            )
        if propagate_deadline and deadline is not None:
            fields["deadline_at"] = deadline
        attempt = 0
        while True:
            attempt += 1
            stats.attempts += 1
            attempt_timeout = policy.per_attempt_timeout_ms * 1e-3
            if deadline is not None:
                attempt_timeout = min(attempt_timeout, deadline - sim.now)
            in_flight = sim.process(call(**fields))
            timer = sim.timeout(max(0.0, attempt_timeout), value=_TIMED_OUT)
            winner = yield sim.any_of([in_flight, timer])
            if isinstance(winner, _TimeoutSentinel):
                # the attempt is still parked somewhere (blackholed, or
                # just slow); the caller moves on — work is not refunded
                stats.timeouts += 1
                outcome = RpcOutcome(
                    request=dict(fields),
                    response={"status": "aborted:Timeout", "kind": "response"},
                    issued_at=issued_at,
                    completed_at=sim.now,
                    aborted_by="Timeout",
                )
            else:
                outcome = winner
            outcome.notes["attempts"] = attempt
            if outcome.ok or attempt >= policy.max_attempts:
                return _finish(outcome)
            if outcome.aborted_by not in retryable:
                return _finish(outcome)
            backoff = policy.backoff_s(attempt, rng)
            if deadline is not None and sim.now + backoff >= deadline:
                stats.deadline_exceeded += 1
                outcome.aborted_by = "DeadlineExceeded"
                outcome.response = {
                    "status": "aborted:DeadlineExceeded",
                    "kind": "response",
                }
                return _finish(outcome)
            if budget is not None and not budget.try_spend():
                # budget exhausted: give up with the failure we have
                # rather than amplify offered load past the configured
                # retries-to-calls ratio
                stats.budget_exhausted += 1
                return _finish(outcome)
            stats.retries += 1
            if sanitizer is not None:
                # cross-check channel for the shadow state sanitizer: it
                # learns this rpc_id is about to re-execute (its attempt
                # counter at call_raw sees the duplicate independently)
                sanitizer.note_retry(fields.get("rpc_id"))
            if backoff > 0:
                stats.backoff_s_total += backoff
                yield sim.timeout(backoff)

    def _finish(outcome: RpcOutcome) -> RpcOutcome:
        if breaker is not None:
            failed = (not outcome.ok) and outcome.aborted_by in BREAKER_FAILURES
            breaker.record(not failed)
        return outcome

    shaped.policy = policy  # type: ignore[attr-defined]
    shaped.stats = stats  # type: ignore[attr-defined]
    shaped.budget = budget  # type: ignore[attr-defined]
    shaped.breaker = breaker  # type: ignore[attr-defined]
    return shaped


def wrap_rate_shaper(sim: Simulator, call: CallFn, rate_rps: float) -> CallFn:
    """Pace issues to at most ``rate_rps``: each issue reserves the next
    slot on a virtual clock (a leaky bucket with no burst)."""
    if rate_rps <= 0:
        raise RuntimeFault("rate_limit_shaper needs a positive rate")
    interval = 1.0 / rate_rps
    state = {"next_slot": 0.0}

    def shaped(**fields) -> Generator:
        slot = max(state["next_slot"], sim.now)
        state["next_slot"] = slot + interval
        if slot > sim.now:
            yield sim.timeout(slot - sim.now)
        outcome = yield sim.process(call(**fields))
        return outcome

    return shaped


class _AimdWindow:
    """Additive-increase / multiplicative-decrease in-flight window."""

    def __init__(self, sim: Simulator, initial: float = 4.0, floor: float = 1.0):
        self.sim = sim
        self.cwnd = initial
        self.floor = floor
        self.in_flight = 0
        self._waiters: List = []

    def acquire(self):
        event = self.sim.event()
        if self.in_flight < self.cwnd:
            self.in_flight += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self, ok: bool) -> None:
        if ok:
            self.cwnd += 1.0 / max(self.cwnd, 1.0)
        else:
            self.cwnd = max(self.floor, self.cwnd / 2.0)
        self.in_flight -= 1
        while self._waiters and self.in_flight < self.cwnd:
            self.in_flight += 1
            self._waiters.pop(0).succeed()


def wrap_congestion_control(
    sim: Simulator, call: CallFn, initial_window: float = 4.0
) -> CallFn:
    """Gate issues on an AIMD window: grow on success, halve on abort.
    Exposes the window object as ``shaped.window`` for observability."""
    window = _AimdWindow(sim, initial=initial_window)

    def shaped(**fields) -> Generator:
        yield window.acquire()
        try:
            outcome: RpcOutcome = yield sim.process(call(**fields))
        except BaseException:
            window.release(ok=False)
            raise
        window.release(ok=outcome.ok)
        outcome.notes["cwnd"] = window.cwnd
        return outcome

    shaped.window = window  # type: ignore[attr-defined]
    return shaped


class _CircuitBreaker:
    """Trip open after ``failure_threshold`` consecutive failures;
    half-open after ``reset_ms`` lets one probe through."""

    def __init__(
        self,
        sim: Simulator,
        failure_threshold: int = 5,
        reset_ms: float = 50.0,
    ):
        self.sim = sim
        self.failure_threshold = failure_threshold
        self.reset_s = reset_ms * 1e-3
        self.consecutive_failures = 0
        self.opened_at: Optional[float] = None
        self.short_circuited = 0

    @property
    def state(self) -> str:
        if self.opened_at is None:
            return "closed"
        if self.sim.now - self.opened_at >= self.reset_s:
            return "half-open"
        return "open"

    def allow(self) -> bool:
        state = self.state
        if state == "closed":
            return True
        if state == "half-open":
            return True  # one probe; outcome decides
        self.short_circuited += 1
        return False

    def record(self, ok: bool) -> None:
        if ok:
            self.consecutive_failures = 0
            self.opened_at = None
            return
        self.consecutive_failures += 1
        if self.consecutive_failures >= self.failure_threshold:
            self.opened_at = self.sim.now


def wrap_circuit_breaker(
    sim: Simulator,
    call: CallFn,
    failure_threshold: int = 5,
    reset_ms: float = 50.0,
) -> CallFn:
    """Short-circuit calls while the downstream is failing; probe after
    a cool-down. Exposes the breaker as ``shaped.breaker``."""
    breaker = _CircuitBreaker(sim, failure_threshold, reset_ms)

    def shaped(**fields) -> Generator:
        if not breaker.allow():
            return RpcOutcome(
                request=dict(fields),
                response={
                    "status": "aborted:CircuitBreaker",
                    "kind": "response",
                },
                issued_at=sim.now,
                completed_at=sim.now,
                aborted_by="CircuitBreaker",
            )
        outcome: RpcOutcome = yield sim.process(call(**fields))
        breaker.record(outcome.ok)
        outcome.notes["breaker_state"] = breaker.state
        return outcome

    shaped.breaker = breaker  # type: ignore[attr-defined]
    return shaped


def apply_filter(sim: Simulator, call: CallFn, filter_def: FilterDef) -> CallFn:
    """Wrap ``call`` with one declared filter."""
    meta = filter_def.meta
    operator = filter_def.operator
    if operator == "timeout":
        return wrap_timeout(sim, call, float(meta.get("timeout_ms", 25.0)))
    if operator == "retry":
        shaped = call
        timeout_ms = meta.get("timeout_ms")
        if timeout_ms is not None:
            # per-attempt deadline: the timeout sits inside the retry
            shaped = wrap_timeout(sim, shaped, float(timeout_ms))
        retry_on = meta.get("retry_on")
        retryable = (
            tuple(part.strip() for part in str(retry_on).split(","))
            if retry_on
            else DEFAULT_RETRYABLE
        )
        deadline_budget = meta.get("deadline_budget_ms")
        return wrap_retry(
            sim,
            shaped,
            max_retries=int(meta.get("max_retries", 3)),
            retry_on=retryable,
            backoff_ms=float(meta.get("backoff_ms", 0.0)),
            deadline_budget_ms=(
                float(deadline_budget) if deadline_budget is not None else None
            ),
        )
    if operator == "rate_limit_shaper":
        return wrap_rate_shaper(sim, call, float(meta.get("rate", 1000.0)))
    if operator == "congestion_control":
        return wrap_congestion_control(
            sim, call, float(meta.get("window", 4.0))
        )
    if operator == "circuit_breaker":
        return wrap_circuit_breaker(
            sim,
            call,
            failure_threshold=int(meta.get("failure_threshold", 5)),
            reset_ms=float(meta.get("reset_ms", 50.0)),
        )
    raise RuntimeFault(f"no runtime for filter operator {operator!r}")


def apply_filters(
    sim: Simulator,
    call: CallFn,
    filter_defs: Sequence[FilterDef],
    order: Optional[Sequence[str]] = None,
) -> CallFn:
    """Wrap ``call`` with every declared filter.

    Wrapping honours chain order: the *first* filter in the chain is the
    outermost wrapper (it sees the retries/timeouts of inner ones).
    """
    by_name = {f.name: f for f in filter_defs}
    names = list(order) if order is not None else list(by_name)
    shaped = call
    for name in reversed(names):
        if name in by_name:
            shaped = apply_filter(sim, shaped, by_name[name])
    return shaped
