"""Data-plane telemetry (paper §5.3).

"Each processor acquires the compiled version of the RPC processing
logic from the control plane and periodically sends reports of logging,
tracing, and runtime statistical information back to the controller."

:class:`TelemetryCollector` is a simulation process that samples every
registered processor on an interval, computes per-window deltas
(throughput, drop rate, utilization), and delivers
:class:`ProcessorReport` objects to sinks — typically the controller,
whose autoscaling and placement decisions they inform.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Generator, List, Optional

from ..sim.engine import Simulator
from .processor import ProcessorRuntime


@dataclass(frozen=True)
class ProcessorReport:
    """One telemetry sample from one processor."""

    at_s: float
    platform: str
    machine: str
    elements: tuple
    window_s: float
    rpcs_in_window: int
    drops_in_window: int
    utilization: float  # of the processor's resource over the window
    element_processed: Dict[str, int] = field(default_factory=dict)
    element_dropped: Dict[str, int] = field(default_factory=dict)
    #: overload signals (repro.overload): instantaneous queue depth,
    #: mean queueing delay of grants in the window, and the window's
    #: overload drops by class — what the autoscaler and admission
    #: controllers act on before throughput collapses
    queue_depth: int = 0
    queue_delay_ms: float = 0.0
    sheds_in_window: int = 0
    queue_rejects_in_window: int = 0
    deadline_drops_in_window: int = 0
    #: mean CPU service time per RPC over the window (ms) — the latency
    #: telemetry the gray-failure score runs on: a machine that is alive
    #: but 10-50x slow keeps heartbeating on schedule, and only this
    #: signal gives it away (repro.faults GRAY_DEGRADE)
    service_ms_per_rpc: float = 0.0

    @property
    def rate_rps(self) -> float:
        if self.window_s <= 0:
            return 0.0
        return self.rpcs_in_window / self.window_s

    @property
    def drop_rate(self) -> float:
        if self.rpcs_in_window == 0:
            return 0.0
        return self.drops_in_window / self.rpcs_in_window

    @property
    def overload_drops_in_window(self) -> int:
        return (
            self.sheds_in_window
            + self.queue_rejects_in_window
            + self.deadline_drops_in_window
        )


ReportSink = Callable[[ProcessorReport], None]


class TelemetryCollector:
    """Samples processors on an interval and feeds report sinks."""

    def __init__(self, sim: Simulator, interval_s: float = 0.05):
        self.sim = sim
        self.interval_s = interval_s
        self._processors: List[ProcessorRuntime] = []
        self._sinks: List[ReportSink] = []
        # keyed by the processor object, not id(): a deregistered
        # processor's id can be reused by a brand-new one (CPython
        # recycles addresses), which would silently inherit the dead
        # processor's counters as its baseline
        self._last: Dict[ProcessorRuntime, Dict[str, float]] = {}
        self.reports: List[ProcessorReport] = []
        self.skipped_down = 0
        self.skipped_partitioned = 0

    def register(self, processor: ProcessorRuntime) -> None:
        if processor in self._last:
            return  # idempotent: re-registering must not reset baselines
        self._processors.append(processor)
        self._last[processor] = {
            "processed": 0.0,
            "dropped": 0.0,
            "busy": 0.0,
            "wait": 0.0,
            "grants": 0.0,
            "shed": 0.0,
            "qrej": 0.0,
            "dexp": 0.0,
            "at": self.sim.now,
        }

    def register_stack(self, stack) -> None:
        """Register every processor of an :class:`AdnMrpcStack`."""
        for processor in stack.processors:
            self.register(processor)

    def deregister(self, processor: ProcessorRuntime) -> None:
        """Forget a processor (torn down by migration or recovery).
        Unknown processors are ignored — callers may race a crash."""
        if processor in self._last:
            del self._last[processor]
            self._processors.remove(processor)

    def deregister_stack(self, stack) -> None:
        for processor in list(stack.processors):
            self.deregister(processor)

    def add_sink(self, sink: ReportSink) -> None:
        self._sinks.append(sink)

    def sample(self) -> List[ProcessorReport]:
        """Take one sample of every processor right now."""
        samples: List[ProcessorReport] = []
        # iterate a snapshot: a sink may deregister processors (the
        # recovery orchestrator does, reacting to a suspect report)
        for processor in list(self._processors):
            last = self._last.get(processor)
            if last is None:
                continue  # deregistered by an earlier sink this window
            if not getattr(processor, "live", True):
                # a crashed host sends no heartbeats; skipping (rather
                # than emitting a zero-rate report) is what lets the
                # failure detector see silence
                self.skipped_down += 1
                continue
            if not getattr(processor, "control_reachable", True):
                # CONTROL_PARTITION: the machine is alive and serving,
                # but its reports cannot reach us — the detector sees
                # the same silence a crash produces, which is exactly
                # the ambiguity partition tolerance has to live with
                self.skipped_partitioned += 1
                continue
            window = self.sim.now - last["at"]
            busy = (
                processor.resource.busy_time
                if processor.resource is not None
                else 0.0
            )
            capacity = (
                processor.resource.capacity
                if processor.resource is not None
                else 1
            )
            utilization = (
                (busy - last["busy"]) / (window * capacity)
                if window > 0
                else 0.0
            )
            resource = processor.resource
            wait = resource.queue_wait_s_total if resource is not None else 0.0
            grants = resource.grants if resource is not None else 0
            grants_in_window = grants - last["grants"]
            queue_delay_ms = (
                (wait - last["wait"]) / grants_in_window * 1e3
                if grants_in_window > 0
                else 0.0
            )
            rpcs_in_window = int(processor.rpcs_processed - last["processed"])
            service_ms_per_rpc = (
                (busy - last["busy"]) / rpcs_in_window * 1e3
                if rpcs_in_window > 0
                else 0.0
            )
            report = ProcessorReport(
                at_s=self.sim.now,
                platform=processor.segment.platform.value,
                machine=processor.segment.machine,
                elements=processor.segment.elements,
                window_s=window,
                rpcs_in_window=rpcs_in_window,
                drops_in_window=int(processor.rpcs_dropped - last["dropped"]),
                utilization=utilization,
                element_processed=dict(processor.element_processed),
                element_dropped=dict(processor.element_dropped),
                queue_depth=(
                    resource.queue_length if resource is not None else 0
                ),
                queue_delay_ms=queue_delay_ms,
                sheds_in_window=int(processor.rpcs_shed - last["shed"]),
                queue_rejects_in_window=int(
                    processor.rpcs_queue_rejected - last["qrej"]
                ),
                deadline_drops_in_window=int(
                    processor.rpcs_deadline_expired - last["dexp"]
                ),
                service_ms_per_rpc=service_ms_per_rpc,
            )
            last.update(
                processed=float(processor.rpcs_processed),
                dropped=float(processor.rpcs_dropped),
                busy=busy,
                wait=wait,
                grants=float(grants),
                shed=float(processor.rpcs_shed),
                qrej=float(processor.rpcs_queue_rejected),
                dexp=float(processor.rpcs_deadline_expired),
                at=self.sim.now,
            )
            samples.append(report)
            self.reports.append(report)
            for sink in self._sinks:
                sink(report)
        return samples

    def run(self, duration_s: float) -> Generator:
        """Simulation process: sample on the configured interval."""
        deadline = self.sim.now + duration_s
        while self.sim.now < deadline:
            yield self.sim.timeout(self.interval_s)
            self.sample()


class TelemetryStore:
    """Controller-side aggregation of processor reports."""

    def __init__(self) -> None:
        self.by_processor: Dict[tuple, List[ProcessorReport]] = {}

    def sink(self, report: ProcessorReport) -> None:
        key = (report.machine, report.platform, report.elements)
        self.by_processor.setdefault(key, []).append(report)

    def latest(self) -> List[ProcessorReport]:
        return [series[-1] for series in self.by_processor.values() if series]

    def hottest(self) -> Optional[ProcessorReport]:
        """The most utilized processor in the latest window — the
        controller's scale-out candidate."""
        latest = self.latest()
        if not latest:
            return None
        return max(latest, key=lambda report: report.utilization)

    def total_drop_rate(self) -> float:
        latest = self.latest()
        rpcs = sum(report.rpcs_in_window for report in latest)
        drops = sum(report.drops_in_window for report in latest)
        return drops / rpcs if rpcs else 0.0
