"""External communication: ingress/egress gateways and application
peering (paper §7).

"As with service meshes, such communication can happen via designated
ingress and egress locations for an application. The ingress locations
translate incoming IP packets into the ADN format, and the egress
locations do the reverse translation."

"When two ADN-based applications communicate, instead of translating
the sender ADN's messages to a standard format and then translating the
standard format to the receiver ADN's format, we can directly translate
information between the two ADNs."

* :class:`IngressGateway` — parses a conventional gRPC-over-HTTP/2
  message (real bytes) into an ADN tuple.
* :class:`EgressGateway` — the reverse: wraps an ADN tuple back into
  gRPC framing for an external consumer.
* :func:`peer_translate` — ADN→ADN header translation between two apps'
  wire formats, skipping the down-shift entirely.
* :func:`peering_savings` — bytes/CPU comparison between peering and
  down-shifting, used by the peering benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..compiler.headers import HeaderLayout
from ..dsl.schema import RpcSchema
from ..errors import RuntimeFault
from ..net.http2 import decode_grpc_message, default_grpc_headers, encode_grpc_message
from ..net.serialization import ProtoCodec
from ..net.wire import AdnWireCodec
from ..sim.costmodel import CostModel, DEFAULT_COST_MODEL
from .message import Row

#: meta-fields the gateways map between HTTP headers and tuple fields
_HEADER_FIELDS = ("rpc_id", "kind", "status", "username", "obj_id")


class IngressGateway:
    """Translates external gRPC messages into ADN tuples.

    The external side speaks the conventional wrapped stack; the
    internal side is the app's own wire format. This is where the two
    worlds meet — once, at the edge, instead of on every hop.
    """

    def __init__(self, schema: RpcSchema, service: str = "ingress"):
        self.schema = schema
        self.service = service
        self.codec = ProtoCodec(schema)
        self.translated = 0

    def translate_in(self, grpc_bytes: bytes) -> Row:
        """External gRPC message → ADN tuple."""
        headers, payload = decode_grpc_message(grpc_bytes)
        fields = self.codec.decode(payload)
        path = headers.get(":path", "/adn.App/call")
        method = path.rsplit("/", 1)[-1]
        tuple_row: Row = {
            "src": headers.get("x-src", "external"),
            "dst": headers.get(":authority", "unknown"),
            "rpc_id": int(headers.get("x-rpc-id", "0")),
            "method": method,
            "kind": headers.get("x-kind", "request"),
            "status": headers.get("x-status", "ok"),
        }
        for name in self.schema.application_field_names():
            tuple_row[name] = fields.get(name)
        self.translated += 1
        return tuple_row

    def cost_us(self, costs: Optional[CostModel] = None) -> float:
        """CPU cost of one inbound translation: full wrapped-stack parse
        plus tuple construction."""
        costs = costs or DEFAULT_COST_MODEL
        return (
            costs.envoy_http2_parse_us
            + costs.envoy_header_decode_us
            + costs.protobuf_deserialize_us
        )


class EgressGateway:
    """Translates ADN tuples back into external gRPC messages."""

    def __init__(self, schema: RpcSchema, authority: str = "external"):
        self.schema = schema
        self.authority = authority
        self.codec = ProtoCodec(schema)
        self.translated = 0

    def translate_out(self, tuple_row: Row) -> bytes:
        app_fields = {
            name: tuple_row.get(name)
            for name in self.schema.application_field_names()
        }
        payload = self.codec.encode(app_fields)
        headers = default_grpc_headers(
            str(tuple_row.get("method", "call")), self.authority
        )
        headers["x-rpc-id"] = str(tuple_row.get("rpc_id", 0))
        headers["x-kind"] = str(tuple_row.get("kind", "request"))
        headers["x-status"] = str(tuple_row.get("status", "ok"))
        headers["x-src"] = str(tuple_row.get("src", ""))
        self.translated += 1
        return encode_grpc_message(headers, payload)

    def cost_us(self, costs: Optional[CostModel] = None) -> float:
        costs = costs or DEFAULT_COST_MODEL
        return (
            costs.protobuf_serialize_us
            + costs.http2_framing_us
        )


# -- application peering ------------------------------------------------------


@dataclass
class PeeringReport:
    """What one peered (or down-shifted) transfer cost."""

    wire_bytes: int
    cpu_us: float
    fields_dropped: Tuple[str, ...] = ()


def peer_translate(
    sender_codec: AdnWireCodec,
    receiver_codec: AdnWireCodec,
    message: Row,
) -> Tuple[bytes, PeeringReport]:
    """Directly translate a tuple from one ADN's wire format to
    another's (paper §7: removes a translation step and the IP
    down-shift). Fields the receiver does not carry are dropped —
    reported, never silently lost."""
    sender_fields = set(sender_codec.layout.field_names)
    receiver_fields = set(receiver_codec.layout.field_names)
    dropped = tuple(
        sorted(
            name
            for name in sender_fields & set(message)
            if name not in receiver_fields
        )
    )
    carried = {
        name: value
        for name, value in message.items()
        if name in receiver_fields
    }
    encoded = receiver_codec.encode(carried)
    costs = DEFAULT_COST_MODEL
    cpu = costs.header_codec_us(len(sender_codec.layout.fields)) + (
        costs.header_codec_us(len(receiver_codec.layout.fields))
    )
    return encoded, PeeringReport(
        wire_bytes=len(encoded), cpu_us=cpu, fields_dropped=dropped
    )


def downshift_transfer(
    sender_codec: AdnWireCodec,
    receiver_codec: AdnWireCodec,
    schema: RpcSchema,
    message: Row,
) -> Tuple[bytes, PeeringReport]:
    """The alternative the paper criticizes: sender egress → standard
    gRPC format → receiver ingress. Costs both gateway translations and
    puts the full wrapped message on the wire."""
    egress = EgressGateway(schema)
    ingress = IngressGateway(schema)
    grpc_bytes = egress.translate_out(message)
    reparsed = ingress.translate_in(grpc_bytes)
    carried = {
        name: value
        for name, value in reparsed.items()
        if name in receiver_codec.layout.field_names
    }
    encoded = receiver_codec.encode(carried)
    cpu = (
        egress.cost_us()
        + ingress.cost_us()
        + DEFAULT_COST_MODEL.header_codec_us(
            len(receiver_codec.layout.fields)
        )
    )
    return encoded, PeeringReport(
        wire_bytes=len(grpc_bytes),  # what actually crossed between apps
        cpu_us=cpu,
    )


def peering_savings(
    sender_layout: HeaderLayout,
    receiver_layout: HeaderLayout,
    schema: RpcSchema,
    message: Row,
) -> Dict[str, float]:
    """Bytes/CPU of peering vs down-shifting for one message."""
    sender_codec = AdnWireCodec(sender_layout)
    receiver_codec = AdnWireCodec(receiver_layout)
    _peered_bytes, peered = peer_translate(
        sender_codec, receiver_codec, message
    )
    _shifted_bytes, shifted = downshift_transfer(
        sender_codec, receiver_codec, schema, message
    )
    if peered.wire_bytes <= 0:
        raise RuntimeFault("peered transfer produced no bytes")
    return {
        "peered_bytes": float(peered.wire_bytes),
        "downshift_bytes": float(shifted.wire_bytes),
        "peered_cpu_us": peered.cpu_us,
        "downshift_cpu_us": shifted.cpu_us,
        "byte_ratio": shifted.wire_bytes / peered.wire_bytes,
        "cpu_ratio": shifted.cpu_us / max(peered.cpu_us, 1e-9),
    }
