"""Data-plane runtime: RPC messages, placed processors, and the
ADN-over-mRPC path."""

from .message import (
    RpcOutcome,
    Row,
    is_aborted,
    make_abort,
    make_request,
    make_response,
    payload_bytes,
    reset_rpc_ids,
)
from .filters import (
    RetryPolicy,
    RetryStats,
    apply_filter,
    apply_filters,
    wrap_retry_policy,
    wrap_circuit_breaker,
    wrap_congestion_control,
    wrap_rate_shaper,
    wrap_retry,
    wrap_timeout,
)
from .gateway import (
    EgressGateway,
    IngressGateway,
    PeeringReport,
    downshift_transfer,
    peer_translate,
    peering_savings,
)
from .mrpc import AdnMrpcStack, default_plan
from .telemetry import ProcessorReport, TelemetryCollector, TelemetryStore
from .processor import (
    SWITCH_LOCATION,
    PlacementPlan,
    PlacementSegment,
    ProcessorRuntime,
    SegmentResult,
)

__all__ = [
    "AdnMrpcStack",
    "PlacementPlan",
    "PlacementSegment",
    "ProcessorRuntime",
    "RpcOutcome",
    "Row",
    "SWITCH_LOCATION",
    "SegmentResult",
    "apply_filter",
    "apply_filters",
    "default_plan",
    "downshift_transfer",
    "EgressGateway",
    "IngressGateway",
    "PeeringReport",
    "peer_translate",
    "peering_savings",
    "ProcessorReport",
    "RetryPolicy",
    "RetryStats",
    "TelemetryCollector",
    "TelemetryStore",
    "wrap_circuit_breaker",
    "wrap_congestion_control",
    "wrap_rate_shaper",
    "wrap_retry",
    "wrap_retry_policy",
    "wrap_timeout",
    "is_aborted",
    "make_abort",
    "make_request",
    "make_response",
    "payload_bytes",
    "reset_rpc_ids",
]
