"""RPC message model.

An RPC is a tuple of named fields (paper §5.1). At runtime we represent
it as a plain dict (what elements process) plus helpers to construct
requests/responses and compute sizes. Meta-fields (src, dst, rpc_id,
method, kind, status) are always present; application fields come from
the app's :class:`~repro.dsl.schema.RpcSchema`.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Iterator, Optional

from ..dsl.schema import RpcSchema

Row = Dict[str, object]

_rpc_ids: Iterator[int] = itertools.count(1)


def reset_rpc_ids() -> None:
    """Restart the id sequence (call between independent experiments so
    runs are reproducible)."""
    global _rpc_ids
    _rpc_ids = itertools.count(1)


def make_request(
    schema: RpcSchema,
    src: str,
    dst: str,
    method: str = "call",
    rpc_id: Optional[int] = None,
    **app_fields: object,
) -> Row:
    """Build a request tuple, validating application fields."""
    schema.validate_message_fields(app_fields.items())
    request: Row = {
        "src": src,
        "dst": dst,
        "rpc_id": next(_rpc_ids) if rpc_id is None else rpc_id,
        "method": method,
        "kind": "request",
        "status": "ok",
    }
    for name in schema.application_field_names():
        request[name] = app_fields.get(name)
    return request


def make_response(request: Row, **app_fields: object) -> Row:
    """Build the success response to ``request`` (src/dst swapped)."""
    response: Row = dict(request)
    response.update(app_fields)
    response["src"] = request["dst"]
    response["dst"] = request["src"]
    response["kind"] = "response"
    response["status"] = "ok"
    return response


def make_abort(request: Row, element: str) -> Row:
    """The error response generated when ``element`` dropped the request."""
    response: Row = dict(request)
    response["src"] = request["dst"]
    response["dst"] = request["src"]
    response["kind"] = "response"
    response["status"] = f"aborted:{element}"
    response["payload"] = b"" if "payload" in response else response.get("payload")
    return response


def is_aborted(message: Row) -> bool:
    return str(message.get("status", "")).startswith("aborted")


def payload_bytes(message: Row) -> int:
    """Size of the payload field, if any."""
    payload = message.get("payload")
    if isinstance(payload, (bytes, str)):
        return len(payload)
    return 0


@dataclass
class RpcOutcome:
    """What the client observes for one RPC."""

    request: Row
    response: Row
    issued_at: float
    completed_at: float
    aborted_by: str = ""
    mirrored: int = 0
    notes: Dict[str, object] = field(default_factory=dict)

    @property
    def latency_s(self) -> float:
        return self.completed_at - self.issued_at

    @property
    def ok(self) -> bool:
        return not self.aborted_by
