"""Semantic analyses over ElementIR (paper §5.2's correctness backstop).

Two consumers share the abstract machinery in :mod:`domains`:

* :mod:`typecheck` — an abstract interpreter that infers the type
  environment flowing through every handler statement and reports
  guaranteed-fault sites (the ``ADN5xx`` lint family);
* :mod:`validate` — a translation validator that checks each optimizer
  pass's output chain against its input chain, abstractly (type
  environments must agree) and concretely (differential execution on
  schema-derived exemplar messages via the reference interpreter).
"""

from .domains import TOP, AbstractValue, UNKNOWN, join
from .effects import (
    ElementEffects,
    MutationSite,
    OutputStateRead,
    element_effects,
    refine_replication,
    refined_safety,
    summarize_elements,
)
from .typecheck import (
    ChainTypeReport,
    TypeFinding,
    check_chain,
    check_element,
    env_from_schema,
)
from .validate import ValidationVerdict, validate_rewrite

__all__ = [
    "TOP",
    "UNKNOWN",
    "AbstractValue",
    "join",
    "ElementEffects",
    "MutationSite",
    "OutputStateRead",
    "element_effects",
    "refine_replication",
    "refined_safety",
    "summarize_elements",
    "TypeFinding",
    "ChainTypeReport",
    "check_chain",
    "check_element",
    "env_from_schema",
    "ValidationVerdict",
    "validate_rewrite",
    # interprocedural (service-graph) layer — imported from .graph by
    # consumers directly to keep this package importable without the
    # graph/compiler layers:
    #   analyze_graph, GraphAnalysis, GraphAnalysisOptions,
    #   eliminate_dead_fields_graph, GraphFieldPlan, compute_mesh_liveness,
    #   retry_amplification
]
