"""Abstract interpretation type & effect checker over ElementIR.

Walks every handler statement pipeline the way the reference interpreter
does — Scan binds the input environment, JoinState adds ``(table,
column)`` bindings, Project computes the output environment, EmitRows
records it — but over :class:`~repro.analysis.domains.AbstractValue`
instead of concrete rows. Sites where evaluation is *guaranteed* (or,
for warnings, *possible*) to raise :class:`~repro.errors.RuntimeFault`
become findings:

* ``ADN501`` — reading an input field that cannot be present (error) or
  that only some upstream emit path produces (warning);
* ``ADN502`` — type-mismatched comparison or arithmetic, including
  arithmetic on a guaranteed-NULL operand;
* ``ADN503`` — division/modulo by a divisor that must be zero;
* ``ADN504`` — writing a state column, schema field, or element variable
  with a value of a conflicting type;
* ``ADN505`` — possible faults: divisor that may be zero, arithmetic on
  a possibly-NULL operand.

Chain checking threads each element's abstract output environment into
the next element's input (requests forward, responses reversed), which
is what makes "element B reads a field element A stopped emitting" a
*static* error rather than a 3 a.m. page.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ..dsl.ast_nodes import (
    BinaryOp,
    CaseExpr,
    ColumnRef,
    Expr,
    FuncCall,
    Literal,
    UnaryOp,
    VarRef,
)
from ..dsl.functions import DEFAULT_REGISTRY, FunctionRegistry
from ..dsl.schema import (
    META_FIELDS,
    FieldType,
    RpcSchema,
    WRITABLE_META_FIELDS,
)
from ..dsl.span import Span
from ..ir.expr_utils import TABLE_ARG_FUNCS
from ..ir.nodes import (
    AdvanceInput,
    AssignVar,
    DeleteRows,
    ElementIR,
    EmitRows,
    FilterRows,
    InsertLiterals,
    InsertRows,
    JoinState,
    Project,
    Scan,
    StatementIR,
    UpdateRows,
)
from .domains import (
    NUMERIC,
    TOP,
    AbstractValue,
    _iv_neg,
    arith_result,
    comparable,
    join,
)

#: Environment key: input field name, or (table, column) for joined rows.
EnvKey = Union[str, Tuple[str, str]]
Env = Dict[EnvKey, AbstractValue]

_ORDERED_OPS = ("<", "<=", ">", ">=")
_ARITH_OPS = ("+", "-", "*", "/", "%")

#: builtins whose result is never NULL (given the runtime's semantics;
#: ``len(None)`` is 0, ``concat`` stringifies, payload UDFs coerce).
_NON_NULL_FUNCS = frozenset(
    {
        "now", "rand", "hash", "len", "count", "contains", "floor",
        "concat", "upper", "lower", "compress", "decompress", "encrypt",
        "decrypt",
    }
)


@dataclass(frozen=True)
class TypeFinding:
    """One guaranteed/possible fault site found by the checker.

    ``severity`` is a plain string ("error" | "warning") so the analysis
    layer stays independent of the lint framework that renders it.
    """

    code: str
    severity: str
    message: str
    span: Optional[Span]
    element: str
    handler: str = ""
    fix: str = ""

    def key(self) -> Tuple[str, str, str, Optional[Tuple[int, int]]]:
        position = (self.span.line, self.span.column) if self.span else None
        return (self.code, self.element, self.message, position)


@dataclass
class HandlerTypeReport:
    """Abstract result of one handler direction."""

    findings: List[TypeFinding]
    #: abstract tuple leaving the handler; None = handler cannot emit
    env_out: Optional[Dict[str, AbstractValue]]
    #: fields present on some but not all emit paths
    maybe_absent: FrozenSet[str] = frozenset()


@dataclass
class ElementTypeReport:
    element: str
    findings: List[TypeFinding]
    handlers: Dict[str, HandlerTypeReport]


@dataclass
class ChainTypeReport:
    """Chain-wide findings plus the final abstract environments."""

    findings: List[TypeFinding]
    request_env: Optional[Dict[str, AbstractValue]]
    response_env: Optional[Dict[str, AbstractValue]]


def env_from_schema(schema: Optional[RpcSchema]) -> Env:
    """The abstract input tuple a chain's first element sees. Application
    schema fields and meta-fields are present and non-NULL (filling the
    schema is the application's side of the contract)."""
    env: Env = {}
    if schema is not None:
        for name, spec in schema.fields.items():
            env[name] = AbstractValue.typed(spec.type)
    for name, field_type in META_FIELDS.items():
        env[name] = AbstractValue.typed(field_type)
    return env


# -- per-handler abstract interpreter ------------------------------------


class _HandlerChecker:
    def __init__(
        self,
        ir: ElementIR,
        kind: str,
        registry: FunctionRegistry,
        schema: Optional[RpcSchema],
        env_in: Env,
        maybe_absent: FrozenSet[str],
    ):
        self.ir = ir
        self.kind = kind
        self.registry = registry
        self.schema = schema
        self.closed = schema is not None
        self.env_in = env_in
        self.maybe_absent = set(maybe_absent)
        self.findings: List[TypeFinding] = []
        self.stmt_span: Optional[Span] = None
        self.columns = _column_envs(ir)
        self.vars = {
            decl.name: AbstractValue.typed(decl.type) for decl in ir.vars
        }

    # -- findings --------------------------------------------------------

    def report(
        self,
        code: str,
        severity: str,
        message: str,
        span: Optional[Span],
        fix: str = "",
    ) -> None:
        self.findings.append(
            TypeFinding(
                code=code,
                severity=severity,
                message=message,
                span=span or self.stmt_span,
                element=self.ir.name,
                handler=self.kind,
                fix=fix,
            )
        )

    # -- driving a handler ----------------------------------------------

    def run(self) -> HandlerTypeReport:
        handler = self.ir.handler(self.kind)
        if handler is None:
            # passthrough: tuple forwarded unchanged
            return HandlerTypeReport(
                findings=[],
                env_out=_strip(self.env_in),
                maybe_absent=frozenset(self.maybe_absent),
            )
        base: Env = dict(self.env_in)
        emits: List[Dict[str, AbstractValue]] = []
        for stmt in handler.statements:
            if len(stmt.ops) == 1 and isinstance(stmt.ops[0], AdvanceInput):
                if not emits:
                    # the fused member before the seam always drops
                    return HandlerTypeReport(
                        findings=self.findings, env_out=None
                    )
                merged, absent = _join_envs(emits)
                base = dict(merged)
                self.maybe_absent |= absent
                emits = []
                continue
            self.stmt_span = stmt.span
            out = self._run_statement(stmt, base)
            if out is not None:
                emits.append(out)
        if not emits:
            return HandlerTypeReport(findings=self.findings, env_out=None)
        env_out, absent = _join_envs(emits)
        return HandlerTypeReport(
            findings=self.findings,
            env_out=env_out,
            maybe_absent=frozenset(absent | self.maybe_absent),
        )

    def check_init(self) -> None:
        for stmt in self.ir.init:
            self.stmt_span = stmt.span
            for op in stmt.ops:
                if isinstance(op, InsertLiterals):
                    self._check_insert_literals(op)

    # -- one statement pipeline ------------------------------------------

    def _run_statement(
        self, stmt: StatementIR, base: Env
    ) -> Optional[Dict[str, AbstractValue]]:
        """Abstractly execute one pipeline; returns the emitted tuple's
        environment when the statement ends in EmitRows."""
        rows: Env = dict(base)
        for op in stmt.ops:
            if isinstance(op, Scan):
                rows = dict(base)
            elif isinstance(op, JoinState):
                for column, value in self.columns.get(op.table, {}).items():
                    rows[(op.table, column)] = value
                self.eval(op.on, rows)
            elif isinstance(op, FilterRows):
                self.eval(op.predicate, rows)
            elif isinstance(op, Project):
                rows = self._project(rows, op)
            elif isinstance(op, EmitRows):
                return _strip(rows)
            elif isinstance(op, InsertRows):
                self._check_insert(rows, op)
            elif isinstance(op, InsertLiterals):
                self._check_insert_literals(op)
            elif isinstance(op, (UpdateRows, DeleteRows, AssignVar)):
                self._run_state_op(op, base)
        return None

    def _run_state_op(self, op, base: Env) -> None:
        env: Env = dict(base)
        table = getattr(op, "table", None)
        if table is not None:
            for column, value in self.columns.get(table, {}).items():
                env[(table, column)] = value
        where = getattr(op, "where", None)
        if where is not None:
            self.eval(where, env)
        if isinstance(op, UpdateRows):
            columns = self.columns.get(op.table, {})
            declared = self.ir.state_decl(op.table)
            for column, expr in op.assignments:
                value = self.eval(expr, env)
                expected = columns.get(column)
                if expected is not None and _definitely_conflicts(
                    value, expected
                ):
                    self.report(
                        "ADN504",
                        "error",
                        f"column {op.table}.{column} expects "
                        f"{_type_names(expected)}, assigned "
                        f"{_type_names(value)}",
                        expr.span,
                        fix="change the assignment or the column type",
                    )
                if declared is not None and expected is None:
                    self.report(
                        "ADN504",
                        "error",
                        f"table {op.table!r} has no column {column!r}",
                        expr.span,
                    )
        elif isinstance(op, AssignVar):
            value = self.eval(op.expr, env)
            expected = self.vars.get(op.var)
            if expected is not None and _definitely_conflicts(value, expected):
                self.report(
                    "ADN504",
                    "error",
                    f"var {op.var!r} expects {_type_names(expected)}, "
                    f"assigned {_type_names(value)}",
                    op.expr.span,
                    fix="change the expression or the var's declared type",
                )

    def _project(self, rows: Env, op: Project) -> Env:
        output: Env = {}
        if op.keep_input:
            output.update(_strip(rows))
        for table in op.star_tables:
            for key, value in rows.items():
                if isinstance(key, tuple) and key[0] == table:
                    output[key[1]] = value
        for name, expr in op.items:
            value = self.eval(expr, rows)
            output[name] = value
            self._check_field_write(name, value, expr)
        for key, value in rows.items():
            if isinstance(key, tuple) and key not in output:
                output[key] = value
        return output

    def _check_field_write(
        self, name: str, value: AbstractValue, expr: Expr
    ) -> None:
        """Writing a schema field or writable meta-field with the wrong
        type corrupts the wire tuple for everyone downstream."""
        expected_type: Optional[FieldType] = None
        if self.schema is not None and name in self.schema.fields:
            expected_type = self.schema.fields[name].type
        elif name in WRITABLE_META_FIELDS:
            expected_type = META_FIELDS[name]
        if expected_type is None:
            return
        expected = AbstractValue.typed(expected_type, nullable=True)
        if _definitely_conflicts(value, expected):
            self.report(
                "ADN504",
                "error",
                f"field {name!r} carries {expected_type.value} on the "
                f"wire, assigned {_type_names(value)}",
                expr.span,
                fix="rename the output or convert the value",
            )

    def _check_insert(self, rows: Env, op: InsertRows) -> None:
        declared = self.ir.state_decl(op.table)
        if declared is None:
            return
        columns = {col.name: col for col in declared.columns}
        projected = _strip(rows)
        for name in projected:
            if name not in columns:
                self.report(
                    "ADN504",
                    "error",
                    f"INSERT into {op.table!r} produces field {name!r} "
                    "which is not a column",
                    None,
                )
        for name, col in columns.items():
            if name not in projected:
                self.report(
                    "ADN504",
                    "error",
                    f"INSERT into {op.table!r} misses column {name!r}",
                    None,
                )
                continue
            value = projected[name]
            expected = AbstractValue.typed(col.type, nullable=True)
            if _definitely_conflicts(value, expected):
                self.report(
                    "ADN504",
                    "error",
                    f"column {op.table}.{name} expects {col.type.value}, "
                    f"inserted {_type_names(value)}",
                    None,
                )

    def _check_insert_literals(self, op: InsertLiterals) -> None:
        declared = self.ir.state_decl(op.table)
        if declared is None:
            return
        for values in op.rows:
            if len(values) != len(declared.columns):
                self.report(
                    "ADN504",
                    "error",
                    f"INSERT INTO {op.table} VALUES: {len(values)} values "
                    f"for {len(declared.columns)} columns",
                    None,
                )
                continue
            for col, value in zip(declared.columns, values):
                if value is not None and not col.type.accepts(value):
                    self.report(
                        "ADN504",
                        "error",
                        f"column {op.table}.{col.name} expects "
                        f"{col.type.value}, got literal {value!r}",
                        None,
                    )

    # -- abstract expression evaluation ----------------------------------

    def eval(self, expr: Expr, env: Env) -> AbstractValue:
        if isinstance(expr, Literal):
            return AbstractValue.of_const(expr.value)
        if isinstance(expr, VarRef):
            return self.vars.get(expr.name, TOP)
        if isinstance(expr, ColumnRef):
            return self._eval_column(expr, env)
        if isinstance(expr, FuncCall):
            return self._eval_func(expr, env)
        if isinstance(expr, UnaryOp):
            return self._eval_unary(expr, env)
        if isinstance(expr, BinaryOp):
            return self._eval_binary(expr, env)
        if isinstance(expr, CaseExpr):
            branches: List[AbstractValue] = []
            for condition, value in expr.whens:
                self.eval(condition, env)
                branches.append(self.eval(value, env))
            if expr.default is not None:
                branches.append(self.eval(expr.default, env))
            else:
                branches.append(AbstractValue.of_const(None))
            result = branches[0]
            for branch in branches[1:]:
                result = join(result, branch)
            return result
        return TOP

    def _eval_column(self, ref: ColumnRef, env: Env) -> AbstractValue:
        if ref.table in (None, "input"):
            if ref.name in env:
                if ref.name in self.maybe_absent:
                    self.report(
                        "ADN501",
                        "warning",
                        f"field {ref.name!r} is only emitted on some "
                        "upstream paths; reading it here can fault",
                        ref.span,
                        fix="emit the field on every path or guard the read",
                    )
                return env[ref.name]
            if self.closed:
                self.report(
                    "ADN501",
                    "error",
                    f"input has no field {ref.name!r} here — this read is "
                    "guaranteed to fault",
                    ref.span,
                    fix="add the field to the schema or emit it upstream",
                )
            return TOP
        key = (ref.table, ref.name)
        if key in env:
            return env[key]
        return self.columns.get(ref.table, {}).get(ref.name, TOP)

    def _eval_unary(self, expr: UnaryOp, env: Env) -> AbstractValue:
        value = self.eval(expr.operand, env)
        if expr.op == "not":
            return AbstractValue.typed(FieldType.BOOL)
        if expr.op == "-":
            if value.definitely_not_numeric():
                self.report(
                    "ADN502",
                    "error",
                    f"cannot negate {_type_names(value)}",
                    expr.span,
                )
                return TOP
            lo, hi = _iv_neg(value)
            types = (
                (value.types & NUMERIC) if value.types is not None else None
            )
            return AbstractValue(
                types=types or NUMERIC,
                nullable=value.nullable,
                lo=lo,
                hi=hi,
            )
        return TOP

    def _eval_binary(self, expr: BinaryOp, env: Env) -> AbstractValue:
        if expr.op in ("and", "or"):
            self.eval(expr.left, env)
            self.eval(expr.right, env)
            return AbstractValue.typed(FieldType.BOOL)
        left = self.eval(expr.left, env)
        right = self.eval(expr.right, env)
        if expr.op in ("==", "!=") + _ORDERED_OPS:
            if not comparable(left, right):
                if expr.op in _ORDERED_OPS:
                    severity = (
                        "error"
                        if not (left.nullable or right.nullable)
                        else "warning"
                    )
                    self.report(
                        "ADN502",
                        severity,
                        f"ordered comparison of {_type_names(left)} with "
                        f"{_type_names(right)} is guaranteed to fault",
                        expr.span,
                        fix="compare values of the same type",
                    )
                else:
                    self.report(
                        "ADN502",
                        "warning",
                        f"equality between {_type_names(left)} and "
                        f"{_type_names(right)} is always false",
                        expr.span,
                    )
            return AbstractValue.typed(FieldType.BOOL)
        if expr.op in _ARITH_OPS:
            return self._eval_arith(expr, left, right)
        return TOP

    def _eval_arith(
        self, expr: BinaryOp, left: AbstractValue, right: AbstractValue
    ) -> AbstractValue:
        if left.is_null or right.is_null:
            self.report(
                "ADN502",
                "error",
                f"arithmetic {expr.op!r} on NULL is guaranteed to fault",
                expr.span,
            )
            return TOP
        if left.nullable or right.nullable:
            self.report(
                "ADN505",
                "warning",
                f"arithmetic {expr.op!r} faults if its operand is NULL "
                "here (operand is nullable)",
                expr.span,
                fix="wrap the nullable operand in coalesce(...)",
            )
        if _arith_guaranteed_fault(expr.op, left, right):
            self.report(
                "ADN502",
                "error",
                f"operator {expr.op!r} on {_type_names(left)} and "
                f"{_type_names(right)} is guaranteed to fault",
                expr.span,
            )
            return TOP
        if expr.op in ("/", "%"):
            if right.must_be_zero():
                self.report(
                    "ADN503",
                    "error",
                    f"division by zero: the divisor of {expr.op!r} is "
                    "always 0",
                    expr.span,
                    fix="guard the division or fix the divisor",
                )
                return TOP
            if right.may_be_zero() and right.may_be_numeric():
                self.report(
                    "ADN505",
                    "warning",
                    f"the divisor of {expr.op!r} may be zero",
                    expr.span,
                    fix="guard with a WHERE/CASE on the divisor",
                )
        return arith_result(expr.op, left, right)

    def _eval_func(self, call: FuncCall, env: Env) -> AbstractValue:
        name = call.name
        if name == "count":
            return AbstractValue(
                types=frozenset({FieldType.INT}), nullable=False, lo=0.0
            )
        if name == "contains":
            if len(call.args) > 1:
                self.eval(call.args[1], env)
            return AbstractValue.typed(FieldType.BOOL)
        if name in TABLE_ARG_FUNCS:  # sum_of / min_of / max_of / avg_of
            column_type = self._aggregate_column_type(call)
            if name == "avg_of":
                column_type = FieldType.FLOAT
            nullable = name != "sum_of"  # empty table: sum is 0, rest NULL
            types = (
                frozenset({column_type}) if column_type is not None else None
            )
            return AbstractValue(types=types, nullable=nullable)
        values = [self.eval(arg, env) for arg in call.args]
        try:
            spec = self.registry.get(name)
        except Exception:
            return TOP
        if name == "rand":
            return AbstractValue(
                types=frozenset({FieldType.FLOAT}),
                nullable=False,
                lo=0.0,
                hi=1.0,
            )
        if name == "len":
            return AbstractValue(
                types=frozenset({FieldType.INT}), nullable=False, lo=0.0
            )
        if name == "coalesce" and len(values) == 2:
            merged = join(values[0], values[1])
            nullable = values[0].nullable and values[1].nullable
            return AbstractValue(
                types=merged.types,
                nullable=nullable,
                lo=merged.lo,
                hi=merged.hi,
            )
        if name in ("min", "max") and len(values) == 2:
            merged = join(values[0], values[1])
            return merged
        if name == "abs" and values:
            return AbstractValue(
                types=values[0].types, nullable=values[0].nullable, lo=0.0
            )
        if spec.result_type is not None:
            types: Optional[FrozenSet[FieldType]] = frozenset(
                {spec.result_type}
            )
        elif values:
            types = values[0].types  # result_type None = first argument's
        else:
            types = None
        nullable = (
            False
            if name in _NON_NULL_FUNCS
            else any(value.nullable for value in values)
        )
        return AbstractValue(types=types, nullable=nullable)

    def _aggregate_column_type(self, call: FuncCall) -> Optional[FieldType]:
        if len(call.args) < 2:
            return None
        table_ref, column_ref = call.args[0], call.args[1]
        if not isinstance(table_ref, ColumnRef) or not isinstance(
            column_ref, ColumnRef
        ):
            return None
        declared = self.ir.state_decl(table_ref.name)
        if declared is None:
            return None
        for col in declared.columns:
            if col.name == column_ref.name:
                return col.type
        return None


# -- helpers -------------------------------------------------------------


def _strip(env: Env) -> Dict[str, AbstractValue]:
    """Drop joined-column keys, mirroring EmitRows semantics."""
    return {key: value for key, value in env.items() if isinstance(key, str)}


def _join_envs(
    envs: Sequence[Dict[str, AbstractValue]]
) -> Tuple[Dict[str, AbstractValue], FrozenSet[str]]:
    """Join emit environments; fields missing from some are maybe-absent."""
    merged: Dict[str, AbstractValue] = {}
    seen_in_all: Optional[set] = None
    for env in envs:
        for name, value in env.items():
            merged[name] = (
                join(merged[name], value) if name in merged else value
            )
        keys = set(env)
        seen_in_all = keys if seen_in_all is None else (seen_in_all & keys)
    absent = frozenset(set(merged) - (seen_in_all or set()))
    return merged, absent


def _column_envs(ir: ElementIR) -> Dict[str, Dict[str, AbstractValue]]:
    """Abstract value of every state column: declared type, nullable when
    some write can store NULL into it (syntactic approximation)."""
    nullable_cols = _nullable_columns(ir)
    return {
        decl.name: {
            col.name: AbstractValue.typed(
                col.type, nullable=(decl.name, col.name) in nullable_cols
            )
            for col in decl.columns
        }
        for decl in ir.states
    }


def _nullable_columns(ir: ElementIR) -> set:
    out: set = set()
    statements = list(ir.init)
    for handler in ir.handlers.values():
        statements.extend(handler.statements)
    for stmt in statements:
        target: Optional[str] = None
        items: List[Tuple[str, Expr]] = []
        for op in stmt.ops:
            if isinstance(op, Project):
                items = list(op.items)
            elif isinstance(op, InsertRows):
                target = op.table
            elif isinstance(op, InsertLiterals):
                declared = ir.state_decl(op.table)
                if declared is None:
                    continue
                for values in op.rows:
                    for col, value in zip(declared.columns, values):
                        if value is None:
                            out.add((op.table, col.name))
            elif isinstance(op, UpdateRows):
                for column, expr in op.assignments:
                    if _expr_maybe_null(expr):
                        out.add((op.table, column))
        if target is not None:
            declared = ir.state_decl(target)
            names = (
                {col.name for col in declared.columns} if declared else set()
            )
            for name, expr in items:
                if name in names and _expr_maybe_null(expr):
                    out.add((target, name))
    return out


def _expr_maybe_null(expr: Expr) -> bool:
    if isinstance(expr, Literal):
        return expr.value is None
    if isinstance(expr, FuncCall):
        if expr.name in ("min_of", "max_of", "avg_of"):
            return True
        if expr.name == "coalesce":
            return all(_expr_maybe_null(arg) for arg in expr.args)
        return False
    if isinstance(expr, CaseExpr):
        if expr.default is None:
            return True
        return _expr_maybe_null(expr.default) or any(
            _expr_maybe_null(value) for _, value in expr.whens
        )
    return False


def _definitely_conflicts(
    value: AbstractValue, expected: AbstractValue
) -> bool:
    """The write faults (or corrupts the wire layout) for *every* possible
    runtime value: both sides' types are known and share no member, with
    INT accepted where FLOAT is expected (schema coercion rules)."""
    if value.types is None or expected.types is None:
        return False
    if value.is_null:
        return False  # NULL is storable in any column
    for have in value.types:
        for want in expected.types:
            if have is want:
                return False
            if want is FieldType.FLOAT and have is FieldType.INT:
                return False
    return True


def _type_names(value: AbstractValue) -> str:
    if value.is_null:
        return "NULL"
    if value.types is None:
        return "unknown"
    return "/".join(sorted(t.value for t in value.types))


def _arith_guaranteed_fault(
    op: str, left: AbstractValue, right: AbstractValue
) -> bool:
    """True only when *every* (type, type) combination raises at runtime.
    Mirrors Python operator semantics, since that is what the reference
    interpreter executes: ``str + str`` concatenates, ``str * int``
    repeats, ``str % x`` formats, bools act as ints."""
    if left.types is None or right.types is None:
        return False
    for a in left.types:
        for b in right.types:
            if not _pair_faults(op, a, b):
                return False
    return True


def _pair_faults(op: str, a: FieldType, b: FieldType) -> bool:
    numericish = NUMERIC | {FieldType.BOOL}
    if a in numericish and b in numericish:
        return False
    if op == "+" and a is b and a in (FieldType.STR, FieldType.BYTES):
        return False
    if op == "*" and (
        (a in (FieldType.STR, FieldType.BYTES) and b in numericish)
        or (b in (FieldType.STR, FieldType.BYTES) and a in numericish)
    ):
        return False
    if op == "%" and a is FieldType.STR:
        return False
    return True


# -- public entry points -------------------------------------------------


def check_element(
    ir: ElementIR,
    schema: Optional[RpcSchema],
    registry: Optional[FunctionRegistry] = None,
    env_in: Optional[Env] = None,
    maybe_absent: FrozenSet[str] = frozenset(),
) -> ElementTypeReport:
    """Check one element standalone. With a schema the input environment
    is closed (unknown field reads are errors); without one it is open."""
    registry = registry or DEFAULT_REGISTRY
    base_env = dict(env_in) if env_in is not None else env_from_schema(schema)
    findings: List[TypeFinding] = []
    handlers: Dict[str, HandlerTypeReport] = {}
    init_checker = _HandlerChecker(
        ir, "init", registry, schema, base_env, frozenset()
    )
    init_checker.check_init()
    findings.extend(init_checker.findings)
    for kind in ("request", "response"):
        checker = _HandlerChecker(
            ir, kind, registry, schema, base_env, maybe_absent
        )
        report = checker.run()
        findings.extend(report.findings)
        handlers[kind] = report
    return ElementTypeReport(
        element=ir.name, findings=findings, handlers=handlers
    )


def check_chain(
    elements: Sequence[ElementIR],
    schema: Optional[RpcSchema],
    registry: Optional[FunctionRegistry] = None,
    env_in: Optional[Env] = None,
    absent_in: FrozenSet[str] = frozenset(),
) -> ChainTypeReport:
    """Thread abstract environments through a whole chain, requests
    forward and responses in reverse, checking each element against what
    actually reaches it.

    ``env_in``/``absent_in`` seed the request direction with an
    interprocedural entry environment (what an upstream service graph
    edge actually delivers) instead of the schema's pristine one — the
    hook :mod:`repro.analysis.graph` uses to typecheck each edge against
    what crosses the wire, not what the schema promises."""
    registry = registry or DEFAULT_REGISTRY
    findings: List[TypeFinding] = []
    env: Optional[Env] = (
        dict(env_in) if env_in is not None else env_from_schema(schema)
    )
    absent: FrozenSet[str] = frozenset(absent_in)
    for ir in elements:
        init_checker = _HandlerChecker(
            ir, "init", registry, schema, env or {}, frozenset()
        )
        init_checker.check_init()
        findings.extend(init_checker.findings)
        if env is None:
            break  # nothing ever reaches this far
        checker = _HandlerChecker(ir, "request", registry, schema, env, absent)
        report = checker.run()
        findings.extend(report.findings)
        env = report.env_out
        absent = report.maybe_absent
    request_env = dict(env) if env is not None else None
    # Responses echo the tuple the server received (the final request
    # env), traversing the chain reversed.
    response: Optional[Env] = (
        dict(request_env) if request_env is not None else None
    )
    for ir in reversed(list(elements)):
        if response is None:
            break
        checker = _HandlerChecker(
            ir, "response", registry, schema, response, absent
        )
        report = checker.run()
        findings.extend(report.findings)
        response = report.env_out
        absent = report.maybe_absent
    return ChainTypeReport(
        findings=findings,
        request_env=request_env,
        response_env=dict(response) if response is not None else None,
    )
