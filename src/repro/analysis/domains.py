"""Abstract domains for the ElementIR type checker.

One abstract value describes everything the checker knows about a field,
variable, or expression result — a product of four small domains:

* **type set** — which :class:`~repro.dsl.schema.FieldType`\\ s the value
  may inhabit (``None`` means unconstrained / TOP);
* **nullability** — whether the value may be SQL NULL (Python ``None``);
* **constancy** — the exact value, when statically known;
* **interval** — numeric bounds ``[lo, hi]`` (``None`` = unbounded),
  used to decide "divisor can/cannot be zero".

Handlers are straight-line (no loops), so plain forward propagation with
joins at CASE/emit merge points reaches a fixed point in one pass and no
widening is needed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import FrozenSet, Optional, Tuple

from ..dsl.schema import FieldType

#: Distinct sentinel for "constant not statically known" — ``None`` is a
#: legitimate constant (SQL NULL), so it cannot double as the marker.
UNKNOWN = type("_Unknown", (), {"__repr__": lambda self: "UNKNOWN"})()

NUMERIC: FrozenSet[FieldType] = frozenset({FieldType.INT, FieldType.FLOAT})


@dataclass(frozen=True)
class AbstractValue:
    """Product-domain abstraction of one runtime value."""

    types: Optional[FrozenSet[FieldType]] = None  # None = any type (TOP)
    nullable: bool = True
    const: object = field(default=UNKNOWN)
    lo: Optional[float] = None
    hi: Optional[float] = None

    # -- constructors ----------------------------------------------------

    @staticmethod
    def typed(
        field_type: FieldType, nullable: bool = False
    ) -> "AbstractValue":
        return AbstractValue(
            types=frozenset({field_type}), nullable=nullable
        )

    @staticmethod
    def of_const(value: object) -> "AbstractValue":
        if value is None:
            return AbstractValue(types=None, nullable=True, const=None)
        field_type = _python_field_type(value)
        lo = hi = None
        if field_type in NUMERIC:
            lo = hi = float(value)  # type: ignore[arg-type]
        return AbstractValue(
            types=frozenset({field_type}) if field_type else None,
            nullable=False,
            const=value,
            lo=lo,
            hi=hi,
        )

    # -- predicates ------------------------------------------------------

    @property
    def is_null(self) -> bool:
        """Statically known to be SQL NULL."""
        return self.const is None and self.const is not UNKNOWN

    @property
    def known(self) -> bool:
        return self.const is not UNKNOWN

    def must_be(self, field_type: FieldType) -> bool:
        return self.types is not None and self.types == {field_type}

    def may_be_numeric(self) -> bool:
        return self.types is None or bool(self.types & NUMERIC)

    def definitely_not_numeric(self) -> bool:
        return self.types is not None and not (self.types & NUMERIC)

    def must_be_zero(self) -> bool:
        if self.known and not self.is_null:
            return self.const == 0
        return self.lo == 0.0 and self.hi == 0.0

    def may_be_zero(self) -> bool:
        """Whether the (numeric) value could be exactly zero."""
        if self.known:
            return self.is_null or self.const == 0
        if self.lo is not None and self.lo > 0:
            return False
        if self.hi is not None and self.hi < 0:
            return False
        return True

    def interval(self) -> Tuple[Optional[float], Optional[float]]:
        return (self.lo, self.hi)

    def widened(self) -> "AbstractValue":
        """Same types, nothing else known — how a variable of this shape
        looks at the start of an arbitrary handler invocation."""
        return AbstractValue(types=self.types, nullable=self.nullable)


TOP = AbstractValue()
NULL = AbstractValue.of_const(None)
BOOL = AbstractValue.typed(FieldType.BOOL)


def _python_field_type(value: object) -> Optional[FieldType]:
    # bool before int: Python bools are ints, DSL bools are not.
    if isinstance(value, bool):
        return FieldType.BOOL
    if isinstance(value, int):
        return FieldType.INT
    if isinstance(value, float):
        return FieldType.FLOAT
    if isinstance(value, str):
        return FieldType.STR
    if isinstance(value, bytes):
        return FieldType.BYTES
    return None


def join(a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Least upper bound: what is known when control merges."""
    if a is b:
        return a
    if a.types is None or b.types is None:
        types = None
    else:
        types = a.types | b.types
    const = a.const if (a.known and b.known and a.const == b.const) else UNKNOWN
    lo = None if (a.lo is None or b.lo is None) else min(a.lo, b.lo)
    hi = None if (a.hi is None or b.hi is None) else max(a.hi, b.hi)
    return AbstractValue(
        types=types,
        nullable=a.nullable or b.nullable,
        const=const,
        lo=lo,
        hi=hi,
    )


def comparable(a: AbstractValue, b: AbstractValue) -> bool:
    """Whether *some* inhabitant of ``a`` can be ordered/equated with some
    inhabitant of ``b`` without a runtime type fault. INT and FLOAT are
    mutually comparable; every other type only with itself."""
    if a.types is None or b.types is None:
        return True
    for left in a.types:
        for right in b.types:
            if left is right:
                return True
            if left in NUMERIC and right in NUMERIC:
                return True
    return False


def compatible(a: AbstractValue, b: AbstractValue) -> bool:
    """Whether two abstract values could describe the same runtime value
    (used when comparing pre/post-rewrite environments)."""
    if a.types is None or b.types is None:
        return True
    if a.is_null or b.is_null:
        return a.nullable and b.nullable
    return bool(a.types & b.types) or comparable(a, b)


# -- interval arithmetic (conservative) ---------------------------------


def _iv_neg(value: AbstractValue) -> Tuple[Optional[float], Optional[float]]:
    lo = None if value.hi is None else -value.hi
    hi = None if value.lo is None else -value.lo
    return lo, hi


def _iv_add(a, b):
    lo = None if (a.lo is None or b.lo is None) else a.lo + b.lo
    hi = None if (a.hi is None or b.hi is None) else a.hi + b.hi
    return lo, hi


def _iv_sub(a, b):
    lo = None if (a.lo is None or b.hi is None) else a.lo - b.hi
    hi = None if (a.hi is None or b.lo is None) else a.hi - b.lo
    return lo, hi


def _iv_mul(a, b):
    bounds = (a.lo, a.hi, b.lo, b.hi)
    if any(bound is None for bound in bounds):
        return None, None
    products = [a.lo * b.lo, a.lo * b.hi, a.hi * b.lo, a.hi * b.hi]
    return min(products), max(products)


def arith_result(op: str, a: AbstractValue, b: AbstractValue) -> AbstractValue:
    """Abstract result of ``a <op> b`` for numeric operands."""
    if a.must_be(FieldType.INT) and b.must_be(FieldType.INT) and op != "/":
        types = frozenset({FieldType.INT})
    elif op == "/":
        types = frozenset({FieldType.FLOAT})  # Python true division
    else:
        types = NUMERIC
    lo: Optional[float]
    hi: Optional[float]
    if op == "+":
        lo, hi = _iv_add(a, b)
    elif op == "-":
        lo, hi = _iv_sub(a, b)
    elif op == "*":
        lo, hi = _iv_mul(a, b)
    elif op == "%":
        # sign follows the divisor in Python; magnitude below |divisor|
        lo, hi = None, None
        if b.lo is not None and b.lo > 0 and b.hi is not None:
            lo, hi = 0.0, b.hi
    else:
        lo, hi = None, None
    return AbstractValue(
        types=types, nullable=a.nullable or b.nullable, lo=lo, hi=hi
    )
