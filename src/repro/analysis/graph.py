"""Interprocedural analysis over a :class:`~repro.graph.model.ServiceGraph`.

Every analysis before this module stops at a single chain: the ADN5xx
abstract interpreter types one edge's elements against the pristine
schema environment, liveness-driven header planning keeps a field off
one wire when nothing *on that edge* reads it, and the runtime
discovers retry storms and starved deadlines empirically. The paper's
pitch — the compiler knows the whole application — only becomes real
when those analyses see the whole graph. This module lifts them:

* **Interprocedural environments.** Walking services in topological
  order, each edge's chain is abstractly interpreted starting from what
  its *caller actually delivers* (the caller's post-chain environment
  restricted to the fields its wire header carries), not from the
  schema's promise. Findings that appear only under the delivered
  environment are cross-service dataflow breaks (``ADN606``), as are
  schema fields a service consumes that no incoming edge still carries.

* **Mesh-wide liveness.** A field is live at a service if the service's
  declared reads (``ServiceSpec.reads``; undeclared = all), any
  outgoing edge's chain, or any downstream service needs it. A field
  alive on one edge but dead everywhere below feeds
  :func:`eliminate_dead_fields_graph`, which re-plans every edge's wire
  header with the proven live set (and strips the dead *computation*
  via the per-chain pass), validating each rewritten edge with the
  translation validator against the projected schema.

* **Static reliability bounds (ADN601–605).** The same traversal
  computes, per root→leaf path, the worst-case retry amplification
  (product of ``max_attempts`` — the static counterpart of the
  runtime's ``RetryStats.amplification()``), deadline-budget
  feasibility, breaker/timeout coverage on deep retrying edges,
  fate-coherence of sibling ``hash_fields``, and RMW state reachable
  from multiple edges.

* **State-effect semantics (ADN700–703).** Per-element effect
  summaries (:mod:`repro.analysis.effects`) composed over the same
  walk: non-idempotent mutations reachable under a retrying edge
  without rpc_id-keyed dedup (``ADN700``), mutations that do not
  commute with themselves across fan-out sibling interleavings
  (``ADN701``), replica-divergent mutations on elements the coarse
  replication classifier would still scale out (``ADN702`` — the
  refined verdicts also gate the ``Autoscaler``), and retry-visible
  reads: response fields a duplicate attempt observes differently
  (``ADN703``). The runtime ``StateSanitizer`` shadows exactly these
  findings.

``ADN600`` (owned by :mod:`repro.graph.lint`) covers spec loading and
name resolution so every failure mode of ``repro graph --check`` is a
diagnostic, never a traceback.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    Dict,
    FrozenSet,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..compiler.headers import HopHeaderPlan, plan_hop_headers
from ..dsl.ast_nodes import Program
from ..dsl.functions import DEFAULT_REGISTRY, FunctionRegistry
from ..dsl.schema import RpcSchema
from ..graph.model import EdgeKey, EdgeSpec, ServiceGraph
from ..ir.analysis import analyze_element
from ..ir.builder import build_element_ir
from ..ir.nodes import ChainIR, ElementIR
from ..ir.passes.dead_fields import Removal, eliminate_dead_fields
from ..ir.replication import AccessMode, ReplicationSafety
from ..lint.diagnostics import Diagnostic, Severity, dedupe_diagnostics
from .domains import join
from .effects import ElementEffects, element_effects, refine_replication
from .typecheck import Env, TypeFinding, check_chain, env_from_schema
from .validate import ValidationVerdict, validate_rewrite


@dataclass(frozen=True)
class GraphAnalysisOptions:
    """Thresholds for the ADN6xx rules."""

    #: worst-case retry amplification (product of ``max_attempts`` along
    #: a root→leaf path) above which ADN601 fires as an error
    amplification_threshold: float = 8.0
    #: floor per remaining downstream hop when judging whether an
    #: effective deadline budget can cover its descendant fan-out
    min_hop_ms: float = 1.0


@dataclass
class EdgeAnalysis:
    """What the interprocedural walk learned about one edge."""

    edge: EdgeSpec
    #: abstract environment entering the edge's chain (the caller's
    #: delivery, not the schema's promise); ``None``: caller unreachable
    entry_env: Optional[Env]
    #: post-chain request environment
    exit_env: Optional[Env]
    #: application fields the edge's wire header delivers to the callee
    delivered: FrozenSet[str]
    #: worst-case retry amplification of any root path through this edge
    amplification_bound: float
    #: type findings present only under the delivered environment
    boundary_findings: Tuple[TypeFinding, ...] = ()


@dataclass
class GraphAnalysis:
    """The whole-graph analysis result ``analyze_graph`` returns."""

    graph: ServiceGraph
    schema: RpcSchema
    edges: Dict[EdgeKey, EdgeAnalysis]
    #: abstract environment at each service's ingress (joined over its
    #: incoming edges' deliveries); entry services get the schema env
    service_env: Dict[str, Optional[Env]]
    #: mesh-live application fields at each service
    live: Dict[str, FrozenSet[str]]
    #: application fields each edge's wire must carry
    edge_live: Dict[EdgeKey, FrozenSet[str]]
    diagnostics: List[Diagnostic]
    #: worst root→leaf retry amplification and a witness path
    worst_amplification: float = 1.0
    worst_path: Tuple[str, ...] = ()
    analysis_ms: float = 0.0
    #: per-element effect summaries (every distinct element in the
    #: graph's chains) and their effect-refined replication verdicts —
    #: the latter is what gates ``Autoscaler`` scale-out (ADN702)
    effects: Dict[str, ElementEffects] = field(default_factory=dict)
    refined_safety: Dict[str, ReplicationSafety] = field(
        default_factory=dict
    )

    def amplification_bound(self, src: str, dst: str) -> float:
        return self.edges[(src, dst)].amplification_bound


# -- lowering -------------------------------------------------------------


def lower_edge_chains(
    graph: ServiceGraph,
    program: Program,
    registry: FunctionRegistry,
) -> Dict[EdgeKey, List[ElementIR]]:
    """Element IRs (analyzed) per edge, skipping filters and unresolved
    names (those are ADN600's to report). One IR per distinct element
    name — analysis is read-only, so edges can share."""
    cache: Dict[str, ElementIR] = {}
    chains: Dict[EdgeKey, List[ElementIR]] = {}
    for edge in graph.edges:
        elements: List[ElementIR] = []
        for name in edge.elements:
            if name in program.filters or name not in program.elements:
                continue
            ir = cache.get(name)
            if ir is None:
                ir = build_element_ir(program.elements[name])
                analyze_element(ir, registry)
                cache[name] = ir
            elements.append(ir)
        chains[edge.key] = elements
    return chains


def _chain_ir(
    graph: ServiceGraph, edge: EdgeSpec, elements: Sequence[ElementIR]
) -> ChainIR:
    return ChainIR(
        app=graph.name,
        src=edge.src,
        dst=edge.dst,
        elements=tuple(elements),
    )


def _diag(
    code: str,
    severity: Severity,
    message: str,
    path: str,
    element: str = "",
    fix: str = "",
) -> Diagnostic:
    return Diagnostic(
        code=code,
        severity=severity,
        message=message,
        path=path,
        element=element,
        fix=fix,
    )


# -- mesh-wide liveness ---------------------------------------------------


def _chain_field_reads(elements: Sequence[ElementIR]) -> Set[str]:
    reads: Set[str] = set()
    for element in elements:
        analysis = element.analysis
        if analysis is None:
            continue
        for handler in analysis.handlers.values():
            reads |= set(handler.fields_read)
    return reads


def _implied_runtime_reads(edge: EdgeSpec) -> Set[str]:
    """Fields the *runtime machinery* on an edge reads from the decoded
    request, invisible to the chain's IR: the admission controller's
    priority bypass and its fate-coherence hash."""
    if not edge.admission:
        return set()
    return {"priority"} | set(edge.hash_fields)


def compute_mesh_liveness(
    graph: ServiceGraph,
    chains: Dict[EdgeKey, List[ElementIR]],
    schema: RpcSchema,
) -> Tuple[Dict[str, FrozenSet[str]], Dict[EdgeKey, FrozenSet[str]]]:
    """Application-field liveness per service (at ingress) and per edge
    (what its wire must carry), walking services leaves-first.

    A service's live set is its own consumption (declared
    ``ServiceSpec.reads``, or every schema field when undeclared) plus,
    per outgoing edge: the edge chain's reads, the runtime-implied reads
    (admission priority/hash), and everything live at the callee.
    """
    app_fields = set(schema.application_field_names())
    live: Dict[str, FrozenSet[str]] = {}
    for service in reversed(graph.topological_order()):
        spec = graph.services[service]
        if spec.reads is None:
            needs = set(app_fields)
        else:
            needs = set(spec.reads) & app_fields
        for edge in graph.outgoing(service):
            needs |= _chain_field_reads(chains[edge.key]) & app_fields
            needs |= _implied_runtime_reads(edge) & app_fields
            needs |= set(live[edge.dst])
        live[service] = frozenset(needs)
    edge_live = {
        edge.key: frozenset(
            set(live[edge.dst]) | (_implied_runtime_reads(edge) & app_fields)
        )
        for edge in graph.edges
    }
    return live, edge_live


# -- static retry amplification (ADN601) ----------------------------------


def retry_amplification(
    graph: ServiceGraph,
) -> Tuple[Dict[EdgeKey, float], float, Tuple[str, ...]]:
    """Worst-case retry amplification per edge: the maximum, over root
    paths reaching the edge, of the product of ``max_attempts`` along
    the path (the edge's own attempts included). Returns the per-edge
    bounds, the global worst, and a witness service path for it.

    This is the static counterpart of the runtime's
    ``RetryStats.amplification()`` — the measured attempts-per-logical-
    call on any edge can never exceed the edge's bound, because every
    ancestor retry multiplies re-offers of the whole subtree.
    """
    worst_in: Dict[str, float] = {name: 1.0 for name in graph.services}
    pred: Dict[str, EdgeSpec] = {}
    bounds: Dict[EdgeKey, float] = {}
    for service in graph.topological_order():
        for edge in graph.outgoing(service):
            bound = worst_in[service] * edge.max_attempts
            bounds[edge.key] = bound
            if bound > worst_in[edge.dst]:
                worst_in[edge.dst] = bound
                pred[edge.dst] = edge
    if not bounds:
        return bounds, 1.0, ()
    worst_key = max(bounds, key=lambda key: (bounds[key], key))
    path = [worst_key[1]]
    cursor = worst_key[0]
    path.insert(0, cursor)
    while cursor in pred:
        cursor = pred[cursor].src
        path.insert(0, cursor)
    return bounds, bounds[worst_key], tuple(path)


def _check_amplification(
    graph: ServiceGraph,
    bounds: Dict[EdgeKey, float],
    options: GraphAnalysisOptions,
    path: str,
) -> List[Diagnostic]:
    """ADN601: fire once per threshold *crossing* — the first edge whose
    path product exceeds the bound — so one bad path reports one
    finding, not one per descendant edge."""
    worst_in: Dict[str, float] = {name: 1.0 for name in graph.services}
    for edge in graph.edges:
        worst_in[edge.dst] = max(worst_in[edge.dst], bounds[edge.key])
    out: List[Diagnostic] = []
    threshold = options.amplification_threshold
    for edge in graph.edges:
        bound = bounds[edge.key]
        if bound <= threshold or worst_in[edge.src] > threshold:
            continue
        out.append(
            _diag(
                "ADN601",
                Severity.ERROR,
                f"worst-case retry amplification through edge "
                f"{edge.name} is {bound:g}x (product of max_attempts "
                f"along the call path), above the bound of "
                f"{threshold:g}x — a retry storm waiting for its "
                "first slow dependency",
                path,
                element=edge.name,
                fix="reduce max_attempts along the path (retries "
                "multiply across hops; retry near the root OR near "
                "the leaf, not both)",
            )
        )
    return out


# -- deadline-budget feasibility (ADN602) ---------------------------------


def _downstream_hops(graph: ServiceGraph) -> Dict[str, int]:
    hops: Dict[str, int] = {}
    for service in reversed(graph.topological_order()):
        children = graph.outgoing(service)
        hops[service] = (
            1 + max(hops[edge.dst] for edge in children) if children else 0
        )
    return hops


def _check_budgets(
    graph: ServiceGraph,
    options: GraphAnalysisOptions,
    path: str,
) -> List[Diagnostic]:
    """ADN602: a budget that cannot do what it promises — larger than
    what any parent can pass down, smaller than a per-attempt timeout,
    or too thin to cover the descendant fan-out's hop floor."""
    infinity = float("inf")
    eff: Dict[EdgeKey, float] = {}
    hops = _downstream_hops(graph)
    out: List[Diagnostic] = []
    for service in graph.topological_order():
        incoming = graph.incoming(service)
        inherited = (
            max(eff[parent.key] for parent in incoming)
            if incoming
            else infinity
        )
        for edge in graph.outgoing(service):
            own = (
                edge.deadline_budget_ms
                if edge.deadline_budget_ms is not None
                else infinity
            )
            eff[edge.key] = min(own, inherited)
            if own != infinity and own > inherited:
                out.append(
                    _diag(
                        "ADN602",
                        Severity.WARNING,
                        f"edge {edge.name} budgets "
                        f"{edge.deadline_budget_ms:g} ms but every "
                        f"caller path delivers at most {inherited:g} ms "
                        "— the surplus is headroom that can never be "
                        "used",
                        path,
                        element=edge.name,
                        fix="lower the edge budget to what its callers "
                        "actually propagate",
                    )
                )
            if (
                edge.per_attempt_timeout_ms is not None
                and eff[edge.key] != infinity
                and edge.per_attempt_timeout_ms > eff[edge.key]
            ):
                out.append(
                    _diag(
                        "ADN602",
                        Severity.WARNING,
                        f"edge {edge.name} allows "
                        f"{edge.per_attempt_timeout_ms:g} ms per attempt "
                        f"but its effective budget is {eff[edge.key]:g} "
                        "ms — a single slow attempt exhausts the whole "
                        "logical call",
                        path,
                        element=edge.name,
                        fix="set per_attempt_timeout_ms below the "
                        "effective budget (budget / max_attempts leaves "
                        "room for a retry)",
                    )
                )
            floor = options.min_hop_ms * (1 + hops[edge.dst])
            if eff[edge.key] != infinity and eff[edge.key] < floor:
                out.append(
                    _diag(
                        "ADN602",
                        Severity.WARNING,
                        f"edge {edge.name} has an effective budget of "
                        f"{eff[edge.key]:g} ms but {1 + hops[edge.dst]} "
                        "downstream hop(s) need at least "
                        f"{floor:g} ms at {options.min_hop_ms:g} ms per "
                        "hop — descendants start work they can never "
                        "finish in time",
                        path,
                        element=edge.name,
                        fix="raise the upstream budgets or flatten the "
                        "fan-out below this edge",
                    )
                )
    return out


# -- breaker/timeout coverage on deep edges (ADN603) ----------------------


def _check_deep_coverage(graph: ServiceGraph, path: str) -> List[Diagnostic]:
    """ADN603: a retrying edge below the entry tier without a breaker or
    per-attempt timeout — exactly where a dead host turns retries into
    silent amplification (the runtime counterpart is repro.faults'
    crash-timeout machinery)."""
    entries = set(graph.entry_services())
    out: List[Diagnostic] = []
    for edge in graph.edges:
        if edge.src in entries or edge.max_attempts <= 1:
            continue
        missing = []
        if not edge.breaker:
            missing.append("no circuit breaker")
        if edge.per_attempt_timeout_ms is None:
            missing.append("no per_attempt_timeout_ms")
        if missing:
            out.append(
                _diag(
                    "ADN603",
                    Severity.WARNING,
                    f"deep edge {edge.name} retries "
                    f"(max_attempts={edge.max_attempts}) with "
                    f"{' and '.join(missing)} — a crashed callee turns "
                    "each ancestor retry into a full timeout wait",
                    path,
                    element=edge.name,
                    fix="add breaker=true and a per_attempt_timeout_ms "
                    "to every deep retrying edge",
                )
            )
    return out


# -- fate-coherence of sibling sheds (ADN604) -----------------------------


def _check_fate_coherence(
    graph: ServiceGraph, schema: RpcSchema, path: str
) -> List[Diagnostic]:
    """ADN604: sibling edges shedding on different ``hash_fields`` split
    one logical request's fate — each fan-out leg draws an independent
    shed verdict for the same request, compounding loss. Also flags hash
    fields that are not schema fields at all (the hash would see a
    constant)."""
    out: List[Diagnostic] = []
    app_fields = set(schema.application_field_names())
    for edge in graph.edges:
        unknown = sorted(set(edge.hash_fields) - app_fields)
        if unknown:
            out.append(
                _diag(
                    "ADN604",
                    Severity.WARNING,
                    f"edge {edge.name} hashes shed fate on "
                    f"{', '.join(repr(f) for f in unknown)}, not "
                    "application schema field(s) — the hash is a "
                    "constant and sheds stop being fate-coherent",
                    path,
                    element=edge.name,
                    fix="hash on schema fields shared by the whole "
                    "logical request (e.g. the user or object id)",
                )
            )
    for service in graph.topological_order():
        admitted = [
            edge for edge in graph.outgoing(service) if edge.admission
        ]
        if len(admitted) < 2:
            continue
        declared = {edge.hash_fields for edge in admitted}
        if len(declared) <= 1:
            continue
        detail = "; ".join(
            f"{edge.name} hashes "
            + (", ".join(edge.hash_fields) if edge.hash_fields else
               "(runtime default)")
            for edge in admitted
        )
        out.append(
            _diag(
                "ADN604",
                Severity.WARNING,
                f"sibling edges out of {service!r} shed on different "
                f"hash_fields ({detail}) — one request's fan-out legs "
                "draw independent shed verdicts and die piecemeal",
                path,
                element=service,
                fix="declare the same hash_fields on every admission "
                "edge out of a service",
            )
        )
    return out


# -- cross-service RMW state (ADN605) -------------------------------------


def _check_state_escalation(
    graph: ServiceGraph,
    chains: Dict[EdgeKey, List[ElementIR]],
    path: str,
) -> List[Diagnostic]:
    """ADN605: an element with read-modify-write state instantiated on
    two or more edges. Each edge's processors hold their own copy, so
    the supposedly-global table (a quota, a dedupe set) silently
    partitions per edge — the graph-scale escalation of the ADN301
    single-chain race."""
    placements: Dict[str, List[EdgeSpec]] = {}
    by_name: Dict[str, ElementIR] = {}
    for edge in graph.edges:
        for element in chains[edge.key]:
            placements.setdefault(element.name, []).append(edge)
            by_name[element.name] = element
    out: List[Diagnostic] = []
    for name, edges in sorted(placements.items()):
        if len(edges) < 2:
            continue
        analysis = by_name[name].analysis
        safety = getattr(analysis, "replication", None)
        if safety is None:
            continue
        rmw = [
            access
            for access in safety.accesses
            if access.mode is AccessMode.READ_MODIFY_WRITE
        ]
        if not rmw:
            continue
        states = ", ".join(sorted({access.name for access in rmw}))
        where = ", ".join(edge.name for edge in edges)
        out.append(
            _diag(
                "ADN605",
                Severity.WARNING,
                f"element {name!r} has read-modify-write state "
                f"({states}) but is instantiated on {len(edges)} edges "
                f"({where}) — each edge races on its own divergent "
                "copy of a table the logic treats as global",
                path,
                element=name,
                fix="keep RMW elements on a single edge, or "
                "restructure the state into a commutative/partitioned "
                "class (see docs/linting.md ADN3xx)",
            )
        )
    return out


# -- effect semantics (ADN700-ADN703) --------------------------------------


def _check_effects(
    graph: ServiceGraph,
    chains: Dict[EdgeKey, List[ElementIR]],
    bounds: Dict[EdgeKey, float],
    path: str,
) -> Tuple[
    List[Diagnostic],
    Dict[str, ElementEffects],
    Dict[str, ReplicationSafety],
]:
    """The ADN700 family over per-element effect summaries.

    ADN700: a non-idempotent mutation (no rpc_id-keyed dedup) on an
    element reachable under a retrying edge — every duplicate attempt
    of one logical call re-applies it. ADN701: a non-self-commutative
    mutation on one of a parent's parallel fan-out edges — sibling
    sub-RPCs interleave nondeterministically, so the final state is
    order-dependent. ADN702: the effect-refined replication verdict
    demotes an element the coarse classifier would scale out. ADN703: a
    duplicate attempt *observes* the re-applied state — an emitted
    field derived from a non-idempotently-mutated table/var.
    """
    by_name: Dict[str, ElementIR] = {}
    for edge in graph.edges:
        for element in chains[edge.key]:
            by_name.setdefault(element.name, element)
    effects: Dict[str, ElementEffects] = {}
    refined: Dict[str, ReplicationSafety] = {}
    for name, element in sorted(by_name.items()):
        summary = element_effects(element)
        effects[name] = summary
        safety = getattr(element.analysis, "replication", None)
        if safety is not None:
            refined[name] = refine_replication(safety, summary)
    out: List[Diagnostic] = []

    seen: Set[Tuple] = set()
    for edge in graph.edges:
        if bounds.get(edge.key, 1.0) <= 1.0:
            continue
        bound = bounds[edge.key]
        for element in chains[edge.key]:
            summary = effects[element.name]
            for site in summary.non_idempotent_sites():
                key = ("ADN700", edge.key, element.name, site.target_id)
                if key in seen:
                    continue
                seen.add(key)
                out.append(
                    _diag(
                        "ADN700",
                        Severity.ERROR,
                        f"edge {edge.name}: {site.describe()} executes "
                        f"up to {bound:g}x per logical call under the "
                        "path's retries, and nothing dedups duplicate "
                        "attempts — each retry re-applies the mutation",
                        path,
                        element=element.name,
                        fix="key the mutation by input.rpc_id (duplicate "
                        "attempts then collapse), restructure it into an "
                        "idempotent set, or drop max_attempts to 1 on "
                        "every edge above this element",
                    )
                )
            for read, site in summary.retry_visible_reads():
                key = (
                    "ADN703",
                    edge.key,
                    element.name,
                    read.output_field,
                    read.target_id,
                )
                if key in seen:
                    continue
                seen.add(key)
                out.append(
                    _diag(
                        "ADN703",
                        Severity.WARNING,
                        f"edge {edge.name}: output field "
                        f"{read.output_field!r} is derived from "
                        f"{read.target_kind} {read.target!r}, which "
                        f"{site.describe()} mutates non-idempotently — "
                        "a retried attempt observes (and answers with) "
                        "a different value than the first",
                        path,
                        element=element.name,
                        fix="derive the response only from the request "
                        "and rpc_id-deduplicated state, or make the "
                        "mutation idempotent",
                    )
                )

    for service in sorted(graph.services):
        siblings = graph.outgoing(service)
        if len(siblings) < 2:
            continue
        for edge in siblings:
            for element in chains[edge.key]:
                summary = effects[element.name]
                for site in summary.non_commutative_sites():
                    key = ("ADN701", service, element.name, site.target_id)
                    if key in seen:
                        continue
                    seen.add(key)
                    out.append(
                        _diag(
                            "ADN701",
                            Severity.WARNING,
                            f"service {service!r} fans out over "
                            f"{len(siblings)} parallel edges and "
                            f"{site.describe()} does not commute with "
                            "itself — sibling sub-RPCs interleave "
                            "nondeterministically, so the final state "
                            "is order-dependent",
                            path,
                            element=element.name,
                            fix="restructure the update into a "
                            "commutative shape (pure insert, "
                            "col = col + delta), or serialize the "
                            "fan-out",
                        )
                    )

    for name in sorted(effects):
        element = by_name[name]
        coarse = getattr(element.analysis, "replication", None)
        tightened = refined.get(name)
        if coarse is None or tightened is None:
            continue
        if not coarse.shardable or tightened.shardable:
            continue
        reasons = "; ".join(tightened.reasons())
        out.append(
            _diag(
                "ADN702",
                Severity.WARNING,
                f"element {name!r} passes the coarse replication "
                "classifier but per-mutation-site analysis proves its "
                f"replicas observably diverge: {reasons} — the "
                "autoscaler must not scale it out",
                path,
                element=name,
                fix="stop deriving outputs from the diverging state, "
                "make the update deterministic, or accept single-copy "
                "placement (meta { checkpoint: true; } for recovery)",
            )
        )
    return out, effects, refined


# -- interprocedural environments (ADN606) --------------------------------

_SEVERITY = {"error": Severity.ERROR, "warning": Severity.WARNING}


def _delivered_fields(
    graph: ServiceGraph,
    edge: EdgeSpec,
    elements: Sequence[ElementIR],
    schema: RpcSchema,
) -> FrozenSet[str]:
    """Application fields the edge's final wire hop actually carries
    (conservative planning: the callee is assumed to read everything)."""
    plan: HopHeaderPlan = plan_hop_headers(
        _chain_ir(graph, edge, elements),
        schema,
        [len(elements) - 1],
        deadline=True,
    )[0]
    return frozenset(
        set(plan.needed_fields) & set(schema.application_field_names())
    )


def _service_entry_env(
    schema: RpcSchema,
    arrivals: List[Tuple[EdgeSpec, Env, FrozenSet[str]]],
) -> Tuple[Env, FrozenSet[str]]:
    """Join the deliveries of every incoming edge into one ingress
    environment: a field delivered by no edge is absent, by some edges
    maybe-absent, and its abstract value is the join over deliveries.
    Meta fields are re-stamped fresh by the runtime per hop."""
    env = env_from_schema(schema)
    maybe_absent: Set[str] = set()
    for name in schema.application_field_names():
        values = [
            arrival_env[name]
            for _, arrival_env, delivered in arrivals
            if name in delivered and name in arrival_env
        ]
        if not values:
            del env[name]
            continue
        joined = values[0]
        for value in values[1:]:
            joined = join(joined, value)
        env[name] = joined
        if len(values) < len(arrivals):
            maybe_absent.add(name)
    return env, frozenset(maybe_absent)


def _finding_to_diag(
    finding: TypeFinding, edge: EdgeSpec, path: str
) -> Diagnostic:
    return Diagnostic(
        code="ADN606",
        severity=_SEVERITY.get(finding.severity, Severity.WARNING),
        message=(
            f"edge {edge.name}: {finding.message} [under the "
            "environment the caller actually delivers; the chain is "
            f"clean against the schema alone — was {finding.code}]"
        ),
        path=path,
        span=finding.span,
        element=finding.element or edge.name,
        fix=finding.fix
        or "carry the field across the upstream edge (declare it in "
        "the callee's reads, or stop narrowing it upstream)",
    )


# -- the analyzer ---------------------------------------------------------


def analyze_graph(
    graph: ServiceGraph,
    program: Program,
    schema: RpcSchema,
    registry: Optional[FunctionRegistry] = None,
    path: str = "<graph>",
    options: Optional[GraphAnalysisOptions] = None,
) -> GraphAnalysis:
    """Run the whole interprocedural suite over a service graph.

    One topological walk propagates abstract environments across every
    boundary and collects the ADN601–606 diagnostics; liveness runs
    leaves-first on the same lowered chains. Name-resolution problems
    are skipped here (ADN600 reports them); the walk analyzes what
    resolves.
    """
    started = time.perf_counter()
    registry = registry or DEFAULT_REGISTRY
    options = options or GraphAnalysisOptions()
    chains = lower_edge_chains(graph, program, registry)
    live, edge_live = compute_mesh_liveness(graph, chains, schema)
    bounds, worst, worst_path = retry_amplification(graph)

    diagnostics: List[Diagnostic] = []
    diagnostics.extend(_check_amplification(graph, bounds, options, path))
    diagnostics.extend(_check_budgets(graph, options, path))
    diagnostics.extend(_check_deep_coverage(graph, path))
    diagnostics.extend(_check_fate_coherence(graph, schema, path))
    diagnostics.extend(_check_state_escalation(graph, chains, path))
    effect_diags, effects, refined = _check_effects(
        graph, chains, bounds, path
    )
    diagnostics.extend(effect_diags)

    edges: Dict[EdgeKey, EdgeAnalysis] = {}
    service_env: Dict[str, Optional[Env]] = {}
    service_absent: Dict[str, FrozenSet[str]] = {}
    arrivals: Dict[str, List[Tuple[EdgeSpec, Env, FrozenSet[str]]]] = {
        name: [] for name in graph.services
    }
    app_fields = set(schema.application_field_names())
    for service in graph.topological_order():
        incoming = graph.incoming(service)
        if not incoming:
            env: Optional[Env] = env_from_schema(schema)
            absent: FrozenSet[str] = frozenset()
        elif arrivals[service]:
            env, absent = _service_entry_env(schema, arrivals[service])
        else:
            # callers exist but none provably completes a request
            env, absent = None, frozenset()
        service_env[service] = env
        service_absent[service] = absent

        # boundary schema compatibility: what this service consumes must
        # actually arrive
        if incoming and env is not None:
            spec = graph.services[service]
            consumes = (
                set(spec.reads) & app_fields
                if spec.reads is not None
                else set(app_fields)
            )
            for name in sorted(consumes):
                if name in env and name not in absent:
                    continue
                sometimes = name in env
                diagnostics.append(
                    _diag(
                        "ADN606",
                        Severity.WARNING if sometimes else Severity.ERROR,
                        f"service {service!r} consumes field {name!r} "
                        + (
                            "but only some incoming edges deliver it"
                            if sometimes
                            else "but no incoming edge delivers it"
                        ),
                        path,
                        element=service,
                        fix="carry the field on every edge into the "
                        "service (or drop it from the service's reads)",
                    )
                )

        for edge in graph.outgoing(service):
            elements = chains[edge.key]
            boundary_findings: Tuple[TypeFinding, ...] = ()
            exit_env: Optional[Env] = env
            delivered: FrozenSet[str] = frozenset()
            if env is not None:
                baseline = check_chain(elements, schema, registry)
                interp = check_chain(
                    elements,
                    schema,
                    registry,
                    env_in=env,
                    absent_in=service_absent[service],
                )
                known = {finding.key() for finding in baseline.findings}
                boundary_findings = tuple(
                    finding
                    for finding in interp.findings
                    if finding.key() not in known
                )
                diagnostics.extend(
                    _finding_to_diag(finding, edge, path)
                    for finding in boundary_findings
                )
                exit_env = interp.request_env
                if exit_env is not None:
                    delivered = _delivered_fields(
                        graph, edge, elements, schema
                    )
                    arrivals[edge.dst].append((edge, exit_env, delivered))
            edges[edge.key] = EdgeAnalysis(
                edge=edge,
                entry_env=dict(env) if env is not None else None,
                exit_env=exit_env,
                delivered=delivered,
                amplification_bound=bounds.get(edge.key, 1.0),
                boundary_findings=boundary_findings,
            )

    diagnostics = dedupe_diagnostics(diagnostics)
    return GraphAnalysis(
        graph=graph,
        schema=schema,
        edges=edges,
        service_env=service_env,
        live=live,
        edge_live=edge_live,
        diagnostics=diagnostics,
        worst_amplification=worst,
        worst_path=worst_path,
        analysis_ms=(time.perf_counter() - started) * 1e3,
        effects=effects,
        refined_safety=refined,
    )


# -- mesh-wide dead-field elimination -------------------------------------


@dataclass
class EdgeFieldChange:
    """Per-edge outcome of :func:`eliminate_dead_fields_graph`."""

    edge: EdgeSpec
    #: wire fields the request hop no longer carries
    removed_wire: Tuple[str, ...]
    bytes_before: int
    bytes_after: int
    #: IR projections stripped by the per-chain pass
    removals: Tuple[Removal, ...] = ()
    #: translation-validation verdict for the IR rewrite (``None``: the
    #: chain was untouched, only the header plan changed)
    verdict: Optional[ValidationVerdict] = None

    @property
    def shrunk(self) -> bool:
        return self.bytes_after < self.bytes_before


@dataclass
class GraphFieldPlan:
    """Mesh-wide dead-field elimination result."""

    graph: ServiceGraph
    live: Dict[str, FrozenSet[str]]
    edge_live: Dict[EdgeKey, FrozenSet[str]]
    changes: Dict[EdgeKey, EdgeFieldChange]
    #: per-edge chains after the rewrite (identical objects where the
    #: pass had nothing to strip or validation refused)
    chains: Dict[EdgeKey, List[ElementIR]] = field(default_factory=dict)

    def edge_app_reads(self) -> Dict[EdgeKey, FrozenSet[str]]:
        """What ``GraphRuntime(edge_app_reads=...)`` consumes: the
        proven live set per edge."""
        return dict(self.edge_live)

    def shrunk_edges(self) -> List[EdgeKey]:
        return [
            key for key, change in self.changes.items() if change.shrunk
        ]

    def bytes_saved(self) -> int:
        return sum(
            change.bytes_before - change.bytes_after
            for change in self.changes.values()
        )


def _projected_schema(
    schema: RpcSchema,
    keep: Set[str],
    name: str,
) -> RpcSchema:
    """The schema restricted to surviving application fields — what the
    translation validator should treat as the wire contract for one
    rewritten edge (removed fields are, by liveness, unobservable)."""
    projected = RpcSchema(name=name)
    for field_name, spec in schema.fields.items():
        if field_name in keep:
            projected.add(field_name, spec.type, spec.doc)
    return projected


def eliminate_dead_fields_graph(
    graph: ServiceGraph,
    program: Program,
    schema: RpcSchema,
    registry: Optional[FunctionRegistry] = None,
    placement=None,
    verify: bool = True,
) -> GraphFieldPlan:
    """Shrink every edge's request wire header to the mesh-proven live
    set, and strip the dead computation per chain.

    With a :class:`~repro.graph.placement.GraphPlacement` the pass uses
    the placed chains and each stack's true client/server boundary (so
    reported layouts match the runtime codecs bit for bit); without one
    it lowers chains directly and treats the final position as the
    boundary. Every chain the per-chain pass actually rewrites is
    checked by the translation validator against the projected schema —
    a failed verdict rolls that edge's rewrite back (the header still
    shrinks; header minimality never depended on the rewrite).
    """
    registry = registry or DEFAULT_REGISTRY
    if placement is not None:
        chains = {
            key: list(chain.ir.elements)
            for key, chain in placement.edge_chains.items()
        }
    else:
        chains = lower_edge_chains(graph, program, registry)
    live, edge_live = compute_mesh_liveness(graph, chains, schema)
    changes: Dict[EdgeKey, EdgeFieldChange] = {}
    out_chains: Dict[EdgeKey, List[ElementIR]] = {}
    for edge in graph.edges:
        elements = chains[edge.key]
        live_fields = edge_live[edge.key]
        if placement is not None:
            plan = placement.edge_plans[edge.key]
            client_machine = placement.machine_of(edge.src)
            boundary = -1
            locations = plan.element_locations()
            for index, element in enumerate(elements):
                location = locations.get(element.name)
                if location and location[1] == client_machine:
                    boundary = index
        else:
            boundary = len(elements) - 1
        chain_ir = _chain_ir(graph, edge, elements)
        before = plan_hop_headers(
            chain_ir, schema, [boundary], deadline=True
        )[0]
        after = plan_hop_headers(
            chain_ir,
            schema,
            [boundary],
            deadline=True,
            app_reads=live_fields,
        )[0]
        rewritten, removals = eliminate_dead_fields(
            elements, schema, registry, app_fields=set(live_fields)
        )
        verdict: Optional[ValidationVerdict] = None
        if removals and verify:
            keep = (
                set(live_fields)
                | _chain_field_reads(elements)
                | _implied_runtime_reads(edge)
            )
            verdict = validate_rewrite(
                elements,
                rewritten,
                _projected_schema(schema, keep, schema.name),
                registry,
                pass_name="graph_dead_fields",
            )
            if verdict.ok is False:
                rewritten, removals = list(elements), []
        out_chains[edge.key] = rewritten
        changes[edge.key] = EdgeFieldChange(
            edge=edge,
            removed_wire=tuple(
                sorted(set(before.needed_fields) - set(after.needed_fields))
            ),
            bytes_before=before.layout.min_size_bytes(),
            bytes_after=after.layout.min_size_bytes(),
            removals=tuple(removals),
            verdict=verdict,
        )
    return GraphFieldPlan(
        graph=graph,
        live=live,
        edge_live=edge_live,
        changes=changes,
        chains=out_chains,
    )
