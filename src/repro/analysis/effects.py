"""Symbolic effect summaries: what an element *does to its state*.

The field-level analyses (`ir.analysis`, `analysis.graph`) answer "which
fields flow where"; this module answers the mesh-correctness questions
that at-least-once delivery and replication raise (paper §5.2: the
controller may re-place, replicate, and retry anything):

* per handler, every **mutation site** — which table/var it writes, the
  key expression, the update *shape* (``set`` / ``increment`` /
  ``append`` / ``cas`` / ``delete``), and the guards it runs under;
* from the shape, three semantic facts the ADN700 rule family needs:
  **idempotence** (does a duplicate attempt with identical input change
  state again?), **self-commutativity** (do two applications reorder
  freely?), and **rpc-keyed dedup** (does the mutation carry/pin
  ``input.rpc_id`` so duplicates are distinguishable and collapsible?);
* **retry-visible reads**: emitted output fields derived from state a
  duplicate attempt would observe differently;
* **replica divergence**: mutations that make independent copies of the
  element observably disagree — used by :func:`refine_replication` to
  tighten the coarse `ir.replication` verdict to per-mutation-site
  proofs (what gates `Autoscaler` scale-out).

Summaries compose along chains and across `ServiceGraph` edges on the
same topological walk as `analyze_graph` (see `analysis.graph`); the
runtime `StateSanitizer` (`repro.state.table`) is this module's shadow:
every violation it can raise dynamically corresponds to a site flagged
here.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dsl.ast_nodes import Expr
from ..dsl.functions import DEFAULT_REGISTRY, FunctionRegistry
from ..dsl.printer import print_expr
from ..dsl.span import Span
from ..ir.expr_utils import collect_refs, is_deterministic
from ..ir.nodes import (
    AssignVar,
    DeleteRows,
    ElementIR,
    FilterRows,
    InsertLiterals,
    InsertRows,
    JoinState,
    Project,
    UpdateRows,
)
from ..ir.replication import (
    AccessMode,
    ReplicationSafety,
    StateAccess,
    _conjuncts,
    _is_commutative_assignment,
    _is_self_increment,
    _pins_all_keys,
    _references_table,
)

#: update-function shapes, from most to least benign
SHAPES = ("set", "increment", "append", "cas", "delete")


@dataclass(frozen=True)
class MutationSite:
    """One static state-mutation site in one handler."""

    element: str
    handler: str  # "request" | "response"
    target_kind: str  # "table" | "var"
    target: str
    shape: str  # one of SHAPES
    key: str  # rendered key expression ("" when unkeyed)
    guards: Tuple[str, ...] = ()
    #: re-applying with the same input leaves state unchanged
    idempotent: bool = False
    #: two applications commute — order-free final state
    commutative: bool = False
    #: mutation carries/pins ``input.rpc_id``: duplicates dedupable
    rpc_keyed: bool = False
    #: update value free of now()/rand()
    deterministic: bool = True
    span: Optional[Span] = field(default=None, compare=False)

    @property
    def target_id(self) -> str:
        return f"{self.target_kind}:{self.target}"

    def describe(self) -> str:
        qualifiers = []
        if not self.idempotent:
            qualifiers.append("non-idempotent")
        if self.rpc_keyed:
            qualifiers.append("rpc_id-keyed")
        if not self.deterministic:
            qualifiers.append("nondeterministic")
        suffix = f" ({', '.join(qualifiers)})" if qualifiers else ""
        keyed = f" keyed by {self.key}" if self.key else ""
        return (
            f"{self.element}/{self.handler}: {self.shape} on "
            f"{self.target_kind} {self.target!r}{keyed}{suffix}"
        )


@dataclass(frozen=True)
class OutputStateRead:
    """An emitted output field derived from element state."""

    handler: str
    output_field: str
    target_kind: str
    target: str

    @property
    def target_id(self) -> str:
        return f"{self.target_kind}:{self.target}"


@dataclass(frozen=True)
class ElementEffects:
    """The effect summary of one element: every mutation site plus the
    state-derived outputs, with the facts the ADN700 family consumes."""

    element: str
    sites: Tuple[MutationSite, ...] = ()
    output_reads: Tuple[OutputStateRead, ...] = ()
    #: state observably read (joins, guards, emitted projections) —
    #: excludes a site's own self-reference (``col = col + 1``)
    observable_reads: Tuple[str, ...] = ()

    def non_idempotent_sites(self) -> List[MutationSite]:
        """Sites a duplicate attempt re-applies visibly: not idempotent
        and not collapsible by rpc_id-keyed dedup."""
        return [
            s for s in self.sites if not s.idempotent and not s.rpc_keyed
        ]

    def non_commutative_sites(self) -> List[MutationSite]:
        return [s for s in self.sites if not s.commutative]

    def divergent_sites(self) -> List[MutationSite]:
        """Sites that make independent copies of this element observably
        disagree (the per-mutation-site refinement behind ADN702)."""
        observable = set(self.observable_reads)
        out = []
        for site in self.sites:
            if site.shape == "cas":
                out.append(site)
            elif not site.deterministic and site.shape in (
                "set",
                "increment",
            ):
                out.append(site)
            elif (
                site.shape in ("increment", "append")
                and site.target_id in observable
            ):
                out.append(site)
        return out

    def retry_visible_reads(self) -> List[Tuple[OutputStateRead, MutationSite]]:
        """Emitted fields whose value a duplicate attempt observes
        differently: derived from state some non-idempotent,
        non-deduplicated site of this element mutates."""
        risky = {s.target_id: s for s in self.non_idempotent_sites()}
        return [
            (read, risky[read.target_id])
            for read in self.output_reads
            if read.target_id in risky
        ]


def element_effects(
    element: ElementIR, registry: Optional[FunctionRegistry] = None
) -> ElementEffects:
    """Compute the effect summary of one element's handlers.

    ``init`` blocks are deliberately excluded: they run once, before any
    replication or retry, so their writes are not duplicate-visible.
    """
    registry = registry or DEFAULT_REGISTRY
    key_columns = {
        decl.name: frozenset(
            col.name for col in decl.columns if col.is_key
        )
        for decl in element.states
    }
    append_only = {
        decl.name for decl in element.states if decl.append_only
    }
    sites: List[MutationSite] = []
    output_reads: List[OutputStateRead] = []
    observable: List[str] = []
    for kind, handler in element.handlers.items():
        for stmt in handler.statements:
            _walk_statement(
                element.name,
                kind,
                stmt,
                key_columns,
                append_only,
                registry,
                sites,
                output_reads,
                observable,
            )
    seen = set()
    unique_observable = []
    for target in observable:
        if target not in seen:
            seen.add(target)
            unique_observable.append(target)
    return ElementEffects(
        element=element.name,
        sites=tuple(sites),
        output_reads=tuple(output_reads),
        observable_reads=tuple(unique_observable),
    )


def summarize_elements(
    irs: Dict[str, ElementIR],
    registry: Optional[FunctionRegistry] = None,
) -> Dict[str, ElementEffects]:
    """Effect summaries for every element IR, keyed by name."""
    return {
        name: element_effects(ir, registry) for name, ir in irs.items()
    }


# -- statement walk ------------------------------------------------------


def _walk_statement(
    element: str,
    kind: str,
    stmt,
    key_columns: Dict[str, frozenset],
    append_only,
    registry: FunctionRegistry,
    sites: List[MutationSite],
    output_reads: List[OutputStateRead],
    observable: List[str],
) -> None:
    guards: List[str] = []
    last_project: Optional[Project] = None
    for op in stmt.ops:
        if isinstance(op, FilterRows):
            guards.extend(
                print_expr(conjunct) for conjunct in _conjuncts(op.predicate)
            )
            _note_observable(op.predicate, observable)
        elif isinstance(op, JoinState):
            observable.append(f"table:{op.table}")
            _note_observable(op.on, observable)
        elif isinstance(op, Project):
            last_project = op
            if stmt.emits:
                for name, expr in op.items:
                    refs = collect_refs(expr)
                    for table in sorted(
                        {t for t, _ in refs.table_columns}
                        | refs.tables_counted
                    ):
                        output_reads.append(
                            OutputStateRead(kind, name, "table", table)
                        )
                        observable.append(f"table:{table}")
                    for var in sorted(refs.vars):
                        output_reads.append(
                            OutputStateRead(kind, name, "var", var)
                        )
                        observable.append(f"var:{var}")
                for table in op.star_tables:
                    output_reads.append(
                        OutputStateRead(kind, f"{table}.*", "table", table)
                    )
                    observable.append(f"table:{table}")
        elif isinstance(op, InsertRows):
            sites.append(
                _insert_site(
                    element,
                    kind,
                    op,
                    last_project,
                    key_columns,
                    append_only,
                    registry,
                    tuple(guards),
                    stmt.span,
                )
            )
        elif isinstance(op, InsertLiterals):
            sites.append(
                MutationSite(
                    element=element,
                    handler=kind,
                    target_kind="table",
                    target=op.table,
                    shape="set",
                    key="literal rows",
                    guards=tuple(guards),
                    idempotent=True,
                    commutative=True,
                    rpc_keyed=False,
                    deterministic=True,
                    span=stmt.span,
                )
            )
        elif isinstance(op, UpdateRows):
            sites.append(
                _update_site(
                    element, kind, op, key_columns, registry, stmt.span
                )
            )
        elif isinstance(op, DeleteRows):
            where_refs = collect_refs(op.where)
            sites.append(
                MutationSite(
                    element=element,
                    handler=kind,
                    target_kind="table",
                    target=op.table,
                    shape="delete",
                    key=print_expr(op.where) if op.where is not None else "",
                    guards=tuple(guards),
                    idempotent=True,
                    commutative=True,
                    rpc_keyed="rpc_id" in where_refs.input_fields,
                    deterministic=(
                        op.where is None
                        or is_deterministic(op.where, registry)
                    ),
                    span=stmt.span,
                )
            )
        elif isinstance(op, AssignVar):
            sites.append(
                _var_site(element, kind, op, registry, stmt.span)
            )


def _note_observable(expr: Optional[Expr], observable: List[str]) -> None:
    if expr is None:
        return
    refs = collect_refs(expr)
    for table in sorted(
        {t for t, _ in refs.table_columns} | refs.tables_counted
    ):
        observable.append(f"table:{table}")
    for var in sorted(refs.vars):
        observable.append(f"var:{var}")


def _insert_site(
    element: str,
    kind: str,
    op: InsertRows,
    project: Optional[Project],
    key_columns: Dict[str, frozenset],
    append_only,
    registry: FunctionRegistry,
    guards: Tuple[str, ...],
    span,
) -> MutationSite:
    keys = key_columns.get(op.table, frozenset())
    items = tuple(project.items) if project is not None else ()
    deterministic = all(
        is_deterministic(expr, registry) for _, expr in items
    )
    rpc_keyed = any(
        "rpc_id" in collect_refs(expr).input_fields for _, expr in items
    )
    is_append = op.table in append_only or not keys
    if is_append:
        # append/bag semantics: every duplicate attempt adds a row. The
        # row order never matters (multiset), but the duplicate itself
        # is visible — unless the row records input.rpc_id, in which
        # case duplicates are distinguishable and collapsible.
        return MutationSite(
            element=element,
            handler=kind,
            target_kind="table",
            target=op.table,
            shape="append",
            key="",
            guards=guards,
            idempotent=False,
            commutative=True,
            rpc_keyed=rpc_keyed,
            deterministic=deterministic,
            span=span,
        )
    key_exprs = {name: expr for name, expr in items if name in keys}
    keys_input_derived = bool(keys) and all(
        name in key_exprs
        and not collect_refs(key_exprs[name]).table_columns
        and not collect_refs(key_exprs[name]).vars
        and not collect_refs(key_exprs[name]).tables_counted
        for name in keys
    )
    key_text = ", ".join(
        f"{name}={print_expr(expr)}" for name, expr in sorted(key_exprs.items())
    )
    # keyed insert = upsert: re-running with the same input rewrites the
    # same row with the same (deterministic) values — an idempotent set
    return MutationSite(
        element=element,
        handler=kind,
        target_kind="table",
        target=op.table,
        shape="set",
        key=key_text,
        guards=guards,
        idempotent=deterministic,
        commutative=keys_input_derived and deterministic,
        rpc_keyed=rpc_keyed,
        deterministic=deterministic,
        span=span,
    )


def _update_site(
    element: str,
    kind: str,
    op: UpdateRows,
    key_columns: Dict[str, frozenset],
    registry: FunctionRegistry,
    span,
) -> MutationSite:
    keys = key_columns.get(op.table, frozenset())
    where_refs = collect_refs(op.where)
    guards = (
        tuple(print_expr(c) for c in _conjuncts(op.where))
        if op.where is not None
        else ()
    )
    deterministic = all(
        is_deterministic(expr, registry) for _, expr in op.assignments
    )
    #: a WHERE that aggregates the target table (sum_of/contains) makes
    #: the update compare-and-swap-like: whether it applies depends on
    #: the full current state, so application order matters
    aggregated_guard = op.table in where_refs.tables_counted
    all_increments = bool(op.assignments) and all(
        _is_commutative_assignment(op.table, column, expr)
        for column, expr in op.assignments
    )
    reads_table_values = any(
        _references_table(expr, op.table)
        and not _is_commutative_assignment(op.table, column, expr)
        for column, expr in op.assignments
    )
    if reads_table_values or (aggregated_guard and not all_increments):
        shape = "cas"
    elif all_increments:
        shape = "cas" if aggregated_guard else "increment"
    else:
        shape = "set"
    pinned = _pins_all_keys(op.where, op.table, set(keys))
    return MutationSite(
        element=element,
        handler=kind,
        target_kind="table",
        target=op.table,
        shape=shape,
        key=print_expr(op.where) if op.where is not None else "",
        guards=guards,
        idempotent=(shape == "set" and deterministic),
        commutative=(
            (shape == "increment" and deterministic)
            or (shape == "set" and pinned and deterministic)
        ),
        rpc_keyed="rpc_id" in where_refs.input_fields and pinned,
        deterministic=deterministic,
        span=span,
    )


def _var_site(
    element: str,
    kind: str,
    op: AssignVar,
    registry: FunctionRegistry,
    span,
) -> MutationSite:
    refs = collect_refs(op.expr)
    where_refs = collect_refs(op.where)
    deterministic = is_deterministic(op.expr, registry) and (
        op.where is None or is_deterministic(op.where, registry)
    )
    guards = (
        tuple(print_expr(c) for c in _conjuncts(op.where))
        if op.where is not None
        else ()
    )
    reads_state = bool(
        refs.table_columns or refs.tables_counted or refs.vars
    )
    guard_reads_state = bool(
        where_refs.table_columns
        or where_refs.tables_counted
        or where_refs.vars
    )
    if _is_self_increment(op.var, op.expr) and not guard_reads_state:
        shape = "increment"
    elif reads_state or guard_reads_state:
        # reads itself (beyond plain self-increment) or other mutable
        # state: a guarded/derived read-modify-write scalar
        shape = "cas"
    else:
        shape = "set"
    return MutationSite(
        element=element,
        handler=kind,
        target_kind="var",
        target=op.var,
        shape=shape,
        key="",
        guards=guards,
        idempotent=(shape == "set" and deterministic),
        commutative=(shape == "increment" and deterministic),
        rpc_keyed=False,
        deterministic=deterministic,
        span=span,
    )


# -- replication refinement (ADN702) -------------------------------------


def refine_replication(
    safety: ReplicationSafety, effects: ElementEffects
) -> ReplicationSafety:
    """Tighten a coarse :class:`ReplicationSafety` verdict with
    per-mutation-site proofs.

    The coarse classifier reasons per table/var over merged evidence; a
    `COMMUTATIVE` counter whose value feeds an emitted output, or an
    increment with a nondeterministic delta, still makes replicas
    *observably* diverge. Such accesses are demoted to
    ``READ_MODIFY_WRITE`` so `ReplicationSafety.shardable` — the gate
    the `Autoscaler` consults — flips to refusal.
    """
    divergent: Dict[Tuple[str, str], MutationSite] = {}
    for site in effects.divergent_sites():
        divergent.setdefault((site.target_kind, site.target), site)
    if not divergent:
        return safety
    accesses: List[StateAccess] = []
    changed = False
    for access in safety.accesses:
        site = divergent.get((access.kind, access.name))
        if site is None or access.mode is AccessMode.READ_MODIFY_WRITE:
            accesses.append(access)
            continue
        changed = True
        accesses.append(
            StateAccess(
                name=access.name,
                kind=access.kind,
                mode=AccessMode.READ_MODIFY_WRITE,
                detail=(
                    f"replica-divergent {site.shape} in the "
                    f"{site.handler} handler ({site.describe()}); "
                    f"coarse verdict was {access.mode.value}"
                ),
                span=site.span if site.span is not None else access.span,
            )
        )
    if not changed:
        return safety
    return ReplicationSafety(element=safety.element, accesses=tuple(accesses))


def refined_safety(
    element: ElementIR, registry: Optional[FunctionRegistry] = None
) -> ReplicationSafety:
    """Coarse classification + effect refinement in one call."""
    from ..ir.replication import replication_safety

    return refine_replication(
        replication_safety(element), element_effects(element, registry)
    )
