"""Per-pass translation validation (the compiler checks its own work).

After every optimizer pass, the rewritten chain is checked against the
pre-pass chain three ways:

1. **Structural certificates** — a reorder must be reachable through
   commuting adjacent swaps (every inverted pair must commute); a
   parallelization's stages must be an order-preserving partition of the
   chain.
2. **Abstract agreement** — the type checker's final request/response
   environments must stay compatible on every schema and meta field
   (a pass may drop *derived* fields, never change the type of a wire
   field).
3. **Concolic differential execution** — both chains run on a bounded
   set of schema-derived exemplar messages (typical and edge values per
   field, extended with literals mined from the chain's own predicates)
   through the reference interpreter; emitted tuples (projected onto
   schema+meta fields), fault outcomes, and canonicalized state
   snapshots must match exactly.

Nondeterminism is pinned per message: before each message, ``rand()`` is
re-seeded and ``now()`` bound to a constant, identically for both runs,
so a legal rewrite cannot diverge through the RNG or the clock.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..dsl.ast_nodes import Literal
from ..dsl.functions import DEFAULT_REGISTRY, FunctionRegistry
from ..dsl.schema import META_FIELDS, FieldType, RpcSchema
from ..dsl.span import Span
from ..errors import AdnError
from ..ir.expr_utils import walk
from ..ir.interp import ChainExecutor
from ..ir.nodes import ElementIR, statement_exprs
from ..ir.passes.parallelize import stages_partition
from ..ir.passes.reorder import inversions
from .domains import compatible
from .typecheck import check_chain

#: exemplar messages per validation (typical + edge per field, wrapped)
DEFAULT_MESSAGE_COUNT = 5

#: cap on mined literals folded into the exemplar value pools
_LITERAL_POOL_CAP = 4


@dataclass(frozen=True)
class ValidationVerdict:
    """The translation validator's answer for one pass application.

    ``ok`` is ``None`` when validation could not run (no schema to derive
    exemplars from) — the pass is neither vindicated nor condemned.
    """

    ok: Optional[bool]
    checked_messages: int = 0
    counterexample: str = ""
    span: Optional[Span] = None
    notes: Tuple[str, ...] = ()


def validate_rewrite(
    before: Sequence[ElementIR],
    after: Sequence[ElementIR],
    schema: Optional[RpcSchema],
    registry: Optional[FunctionRegistry] = None,
    pass_name: str = "",
    stages: Sequence[Tuple[str, ...]] = (),
) -> ValidationVerdict:
    """Check that ``after`` preserves the semantics of ``before``."""
    registry = registry or DEFAULT_REGISTRY
    before = list(before)
    after = list(after)

    # structural certificates first: they need no schema
    if stages and not stages_partition(
        stages, [element.name for element in after]
    ):
        return ValidationVerdict(
            ok=False,
            counterexample=(
                f"stages {list(stages)!r} are not an order-preserving "
                "partition of the chain"
            ),
        )
    flipped = inversions(
        [element.name for element in before],
        [element.name for element in after],
    )
    if flipped:
        from ..ir.dependency import commute

        analyses = {element.name: element.analysis for element in after}
        for first, second in flipped:
            a, b = analyses.get(first), analyses.get(second)
            if a is None or b is None or not commute(a, b):
                return ValidationVerdict(
                    ok=False,
                    counterexample=(
                        f"reorder swapped {first!r} past {second!r} but the "
                        "pair does not commute"
                    ),
                )

    if _chains_equal(before, after):
        return ValidationVerdict(
            ok=True, notes=("structurally identical; nothing to replay",)
        )

    if schema is None:
        return ValidationVerdict(
            ok=None, notes=("no schema: cannot derive exemplar messages",)
        )

    # abstract agreement on the wire environment
    env_before = check_chain(before, schema, registry)
    env_after = check_chain(after, schema, registry)
    wire_fields = list(schema.fields) + list(META_FIELDS)
    for direction, a_env, b_env in (
        ("request", env_before.request_env, env_after.request_env),
        ("response", env_before.response_env, env_after.response_env),
    ):
        if a_env is None or b_env is None:
            if (a_env is None) != (b_env is None):
                return ValidationVerdict(
                    ok=False,
                    counterexample=(
                        f"{direction} direction: one chain can emit, the "
                        "other provably cannot"
                    ),
                    span=_divergence_span(before, after),
                )
            continue
        for field_name in wire_fields:
            in_a, in_b = field_name in a_env, field_name in b_env
            if in_a != in_b:
                return ValidationVerdict(
                    ok=False,
                    counterexample=(
                        f"{direction} direction: wire field {field_name!r} "
                        f"{'dropped' if in_a else 'materialized'} by "
                        f"{pass_name or 'the pass'}"
                    ),
                    span=_divergence_span(before, after),
                )
            if in_a and not compatible(a_env[field_name], b_env[field_name]):
                return ValidationVerdict(
                    ok=False,
                    counterexample=(
                        f"{direction} direction: abstract type of "
                        f"{field_name!r} diverged"
                    ),
                    span=_divergence_span(before, after),
                )

    # concolic differential execution
    messages = schema.exemplar_messages(
        count=DEFAULT_MESSAGE_COUNT,
        literal_pool=_mine_literals(before),
    )
    trace_before = _run_trace(before, messages, schema, registry)
    trace_after = _run_trace(after, messages, schema, registry)
    divergence = _first_divergence(trace_before, trace_after, messages)
    if divergence is not None:
        return ValidationVerdict(
            ok=False,
            checked_messages=len(messages),
            counterexample=divergence,
            span=_divergence_span(before, after),
        )
    return ValidationVerdict(
        ok=True,
        checked_messages=len(messages),
        notes=(f"replayed {len(messages)} exemplar message(s): identical",),
    )


# -- structural identity -------------------------------------------------


def _chains_equal(
    before: Sequence[ElementIR], after: Sequence[ElementIR]
) -> bool:
    if len(before) != len(after):
        return False
    for a, b in zip(before, after):
        if (
            a.name != b.name
            or a.states != b.states
            or a.vars != b.vars
            or a.init != b.init
            or a.handlers != b.handlers
        ):
            return False
    return True


# -- exemplar inputs -----------------------------------------------------


def _mine_literals(
    elements: Sequence[ElementIR],
) -> Dict[FieldType, Tuple[object, ...]]:
    """Literals appearing in the chain's own expressions, so predicates
    like ``permission == 'W'`` get driven down both branches."""
    pools: Dict[FieldType, List[object]] = {}
    for element in elements:
        statements = list(element.init)
        for handler in element.handlers.values():
            statements.extend(handler.statements)
        for stmt in statements:
            for expr in statement_exprs(stmt):
                for node in walk(expr):
                    if not isinstance(node, Literal) or node.value is None:
                        continue
                    value = node.value
                    if isinstance(value, bool):
                        field_type = FieldType.BOOL
                    elif isinstance(value, int):
                        field_type = FieldType.INT
                    elif isinstance(value, float):
                        field_type = FieldType.FLOAT
                    elif isinstance(value, str):
                        field_type = FieldType.STR
                    elif isinstance(value, bytes):
                        field_type = FieldType.BYTES
                    else:
                        continue
                    pool = pools.setdefault(field_type, [])
                    if value not in pool and len(pool) < _LITERAL_POOL_CAP:
                        pool.append(value)
    return {ft: tuple(values) for ft, values in pools.items()}


# -- differential execution ----------------------------------------------


def _run_trace(
    elements: Sequence[ElementIR],
    messages: Sequence[Dict[str, object]],
    schema: RpcSchema,
    registry: FunctionRegistry,
) -> List[object]:
    """Replay the exemplar messages through a chain, recording every
    observable: projected outputs, fault outcomes, response-path
    outputs, and the final canonical state."""
    wire_fields = set(schema.fields) | set(META_FIELDS)
    saved_rng, saved_clock = registry.rng, registry._clock
    trace: List[object] = []
    try:
        executor = ChainExecutor(list(elements), registry)
        for index, message in enumerate(messages):
            _pin_nondeterminism(registry, index)
            outputs, fault = _safe_process(executor, message, "request")
            trace.append(
                ("request", index, _project(outputs, wire_fields), fault)
            )
            if outputs:
                response = dict(outputs[0])
                response["kind"] = "response"
                _pin_nondeterminism(registry, index + 10_000)
                outs, fault = _safe_process(executor, response, "response")
                trace.append(
                    ("response", index, _project(outs, wire_fields), fault)
                )
        trace.append(("state", _canonical_state(executor)))
    finally:
        registry.bind_rng(saved_rng)
        registry.bind_clock(saved_clock)
    return trace


def _pin_nondeterminism(registry: FunctionRegistry, index: int) -> None:
    registry.bind_rng(random.Random(0xADD0 + index))
    timestamp = 1_000.0 + index
    registry.bind_clock(lambda: timestamp)


def _safe_process(executor, message, kind):
    try:
        return executor.process(dict(message), kind), None
    except AdnError as exc:
        return [], type(exc).__name__
    except Exception as exc:  # e.g. zlib.error on payload UDFs
        return [], type(exc).__name__


def _project(rows, wire_fields) -> Tuple[Tuple[Tuple[str, object], ...], ...]:
    return tuple(
        tuple(
            sorted(
                (key, value)
                for key, value in row.items()
                if key in wire_fields
            )
        )
        for row in rows
    )


def _canonical_state(executor: ChainExecutor):
    """Chain state keyed by canonical table/var name so fusion's
    ``{member}__{name}`` renames compare equal to the originals. Rows
    from same-named tables across elements are pooled and sorted."""
    tables: Dict[str, List[str]] = {}
    variables: Dict[str, List[str]] = {}
    for instance in executor.instances:
        members = instance.ir.meta.get("fused_from", ())
        snapshot = instance.state.snapshot()
        for name, rows in snapshot["tables"].items():
            canonical = _canonical_name(name, members)
            tables.setdefault(canonical, []).extend(
                repr(sorted(row.items(), key=repr)) for row in rows
            )
        for name, value in snapshot["vars"].items():
            canonical = _canonical_name(name, members)
            variables.setdefault(canonical, []).append(repr(value))
    return (
        tuple(
            (name, tuple(sorted(rows))) for name, rows in sorted(tables.items())
        ),
        tuple(
            (name, tuple(sorted(vals)))
            for name, vals in sorted(variables.items())
        ),
    )


def _canonical_name(name: str, members) -> str:
    for member in members or ():
        prefix = f"{member}__"
        if name.startswith(prefix):
            return name[len(prefix):]
    return name


def _first_divergence(
    trace_before: List[object],
    trace_after: List[object],
    messages: Sequence[Dict[str, object]],
) -> Optional[str]:
    if trace_before == trace_after:
        return None
    for a, b in zip(trace_before, trace_after):
        if a == b:
            continue
        if a[0] == "state" or b[0] == "state":
            return (
                "final state diverged: "
                f"{_clip(repr(a[1:]))} != {_clip(repr(b[1:]))}"
            )
        direction, message_index = a[0], a[1]
        message = messages[message_index]
        return (
            f"{direction} divergence on exemplar message "
            f"{_brief(message)}: before={a[2:]!r} after={b[2:]!r}"
        )
    return (
        f"trace lengths diverged: {len(trace_before)} != {len(trace_after)}"
    )


def _clip(text: str, limit: int = 160) -> str:
    return text if len(text) <= limit else text[: limit - 3] + "..."


def _brief(message: Dict[str, object]) -> str:
    interesting = {
        key: value
        for key, value in message.items()
        if key not in ("src", "dst", "kind", "status")
    }
    return repr(interesting)


def _divergence_span(
    before: Sequence[ElementIR], after: Sequence[ElementIR]
) -> Optional[Span]:
    """Span of the first rewritten statement that differs from its
    pre-pass counterpart — where to point the counterexample."""
    by_name = {element.name: element for element in before}
    for element in after:
        original = by_name.get(element.name)
        for handler in element.handlers.values():
            original_stmts = ()
            if original is not None:
                original_handler = original.handlers.get(handler.kind)
                if original_handler is not None:
                    original_stmts = original_handler.statements
            for index, stmt in enumerate(handler.statements):
                if index >= len(original_stmts) or stmt != original_stmts[index]:
                    if stmt.span is not None:
                        return stmt.span
    for element in after:
        for handler in element.handlers.values():
            for stmt in handler.statements:
                if stmt.span is not None:
                    return stmt.span
    return None
