"""The element catalog: every reusable ADN element, with metadata.

This is the developer-facing index over :mod:`repro.dsl.stdlib` — the
DSL sources — plus categorization, per-element documentation, and
helpers to compile elements in one call. The catalog is what an app
developer browses to avoid re-implementing common network functions
(paper Q1: "enable developers to reuse code of elements developed by
others").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..compiler.compiler import AdnCompiler, CompiledElement
from ..dsl.functions import FunctionRegistry
from ..dsl.schema import RpcSchema
from ..dsl.stdlib import STDLIB_SOURCES, load_stdlib, stdlib_loc


@dataclass(frozen=True)
class CatalogEntry:
    """Metadata for one catalog element."""

    name: str
    category: str
    summary: str
    paper_ref: str = ""
    evaluated_in_paper: bool = False


CATALOG: Dict[str, CatalogEntry] = {
    entry.name: entry
    for entry in [
        CatalogEntry(
            "Logging",
            "observability",
            "Records every request and response to an append-only sink.",
            "§6",
            evaluated_in_paper=True,
        ),
        CatalogEntry(
            "Acl",
            "security",
            "Drops requests whose user lacks write permission.",
            "Figure 4, §6",
            evaluated_in_paper=True,
        ),
        CatalogEntry(
            "Fault",
            "testing",
            "Aborts requests with a configured probability.",
            "§6",
            evaluated_in_paper=True,
        ),
        CatalogEntry(
            "LbKeyHash",
            "load-balancing",
            "Routes each request to a replica chosen by hashing an RPC "
            "field (the §2 object-id example).",
            "§2",
        ),
        CatalogEntry(
            "LbRoundRobin",
            "load-balancing",
            "Routes requests to replicas in rotation.",
            "§2",
        ),
        CatalogEntry(
            "Compression",
            "payload",
            "Compresses payloads on the sender (UDF with platform-"
            "specific implementations).",
            "§2, §5.1",
        ),
        CatalogEntry(
            "Decompression",
            "payload",
            "Decompresses payloads on the receiver.",
            "§2",
        ),
        CatalogEntry(
            "AccessControl",
            "security",
            "Allows a request only when (user, object) is whitelisted.",
            "§2",
        ),
        CatalogEntry(
            "Encryption",
            "payload",
            "Encrypts payloads on the sender (must be sender-colocated).",
            "§4 Q1",
        ),
        CatalogEntry(
            "Decryption",
            "payload",
            "Decrypts payloads on the receiver.",
            "§4 Q1",
        ),
        CatalogEntry(
            "RateLimit",
            "traffic",
            "Token-bucket limiter expressed as a simple SQL filter.",
            "§5.1",
        ),
        CatalogEntry(
            "Metrics",
            "observability",
            "Per-method request counters, reported to the controller.",
            "§5.3",
        ),
        CatalogEntry(
            "Router",
            "routing",
            "Content-based request routing to pinned instances.",
            "§2 (extensibility example)",
        ),
        CatalogEntry(
            "Admission",
            "traffic",
            "Rejects requests beyond an in-flight window.",
            "§5.1",
        ),
        CatalogEntry(
            "AdmissionControl",
            "traffic",
            "Delay-aware admission control: CoDel on queue sojourn plus "
            "utilization-triggered shedding, with priority bypass.",
            "§5.1 (overload control)",
        ),
        CatalogEntry(
            "Mirror",
            "testing",
            "Duplicates a sample of requests to a shadow service.",
            "§5.1",
        ),
        CatalogEntry(
            "Cache",
            "performance",
            "Caches responses by object id.",
            "§5.1",
        ),
        CatalogEntry(
            "SizeLimit",
            "traffic",
            "Rejects payloads above a size cap before they cross the wire.",
            "§5.1",
        ),
        CatalogEntry(
            "GlobalQuota",
            "traffic",
            "Cluster-wide request quota via a column aggregate over "
            "element state.",
            "§5.1",
        ),
    ]
}

#: Filters (complex stream shaping) live beside elements in the catalog.
FILTER_CATALOG: Dict[str, CatalogEntry] = {
    "Retry": CatalogEntry(
        "Retry", "reliability", "Re-issues timed-out requests.", "§5.1"
    ),
    "Timeout": CatalogEntry(
        "Timeout", "reliability", "Abandons requests after a deadline.", "§5.1"
    ),
    "CircuitBreaker": CatalogEntry(
        "CircuitBreaker",
        "reliability",
        "Short-circuits calls while the downstream is failing.",
        "§5.1",
    ),
    "Pacer": CatalogEntry(
        "Pacer",
        "traffic",
        "Spaces issues to a target rate (client-side shaping).",
        "§5.1",
    ),
}

#: The three elements used in the paper's evaluation (Figure 5).
PAPER_EVAL_ELEMENTS: Tuple[str, ...] = ("Logging", "Acl", "Fault")

#: The §2 example chain.
SECTION2_CHAIN: Tuple[str, ...] = (
    "LbKeyHash",
    "Compression",
    "Decompression",
    "AccessControl",
)


def names(category: Optional[str] = None) -> List[str]:
    """Catalog element names, optionally filtered by category."""
    return sorted(
        name
        for name, entry in CATALOG.items()
        if category is None or entry.category == category
    )


def categories() -> List[str]:
    return sorted({entry.category for entry in CATALOG.values()})


def source_of(name: str) -> str:
    """The DSL source of a catalog element."""
    return STDLIB_SOURCES[name]


def dsl_loc(name: str) -> int:
    """Non-comment DSL lines for an element (the LoC metric of §6)."""
    return stdlib_loc(name)


def compile_catalog(
    names_: Optional[List[str]] = None,
    schema: Optional[RpcSchema] = None,
    registry: Optional[FunctionRegistry] = None,
) -> Dict[str, CompiledElement]:
    """Parse, validate, and compile catalog elements for all platforms."""
    selected = names_ if names_ is not None else names()
    program = load_stdlib(selected, schema=schema, registry=registry)
    compiler = AdnCompiler(registry=registry)
    return {
        name: compiler.compile_element(program.elements[name], stdlib_loc(name))
        for name in selected
    }


__all__ = [
    "CATALOG",
    "CatalogEntry",
    "FILTER_CATALOG",
    "PAPER_EVAL_ELEMENTS",
    "SECTION2_CHAIN",
    "categories",
    "compile_catalog",
    "dsl_loc",
    "names",
    "source_of",
]
