"""Exception hierarchy for the ADN reproduction.

Every error raised by the library derives from :class:`AdnError` so callers
can catch one type at the API boundary. Subpackages raise the most specific
subclass that applies.
"""

from __future__ import annotations


class AdnError(Exception):
    """Base class for all errors raised by this library."""


class DslSyntaxError(AdnError):
    """The DSL source text could not be tokenized or parsed.

    Carries the source position so tooling can point at the offending text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


class DslValidationError(AdnError):
    """The DSL parsed but is semantically invalid (unknown table, type
    mismatch, write to read-only table, duplicate element name, ...).

    Like :class:`DslSyntaxError`, carries the source position (1-based;
    0 means unknown) so tooling can point at the offending text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0):
        if line > 0:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)
        self.line = line
        self.column = column


class CompileError(AdnError):
    """The compiler could not lower or optimize a program."""


class BackendError(CompileError):
    """A backend rejected an element (platform legality failure).

    ``reasons`` lists each constraint the element violates on the target
    platform, e.g. unbounded loops for eBPF or payload access for P4.
    """

    def __init__(self, message: str, reasons: list | None = None):
        super().__init__(message)
        self.reasons = list(reasons or [])


class TranslationValidationError(CompileError):
    """A compiler pass produced a chain the translation validator could
    not prove equivalent to its input.

    Carries the failing pass name, a human-readable counterexample
    (diverging message plus the first observable difference), and the
    source span of the rewritten statement nearest the divergence.
    """

    def __init__(
        self,
        message: str,
        pass_name: str = "",
        counterexample: str = "",
        span=None,
    ):
        super().__init__(message)
        self.pass_name = pass_name
        self.counterexample = counterexample
        self.span = span


class HeaderLayoutError(CompileError):
    """A wire-header layout violates a platform constraint (for example,
    a field needed by a switch element falls outside the 200-byte parse
    window of the P4 pipeline model)."""


class PlacementError(AdnError):
    """The placement solver could not satisfy all constraints with the
    available processors."""


class GraphError(AdnError):
    """A service-graph specification is invalid (unknown endpoint,
    cycle, duplicate edge, malformed topology file, ...)."""


class StateError(AdnError):
    """Invalid state-table operation (schema mismatch, bad merge/split,
    migrating a table that is not keyed, ...)."""


class SimulationError(AdnError):
    """The discrete-event simulator detected an inconsistency (event in
    the past, negative duration, resource misuse)."""


class RuntimeFault(AdnError):
    """A data-plane processor failed while executing an element.

    Carries the source span of the offending expression when known
    (``span`` is a :class:`repro.dsl.ast_nodes.Span` or None), so tooling
    can point at the exact DSL text that faulted.
    """

    def __init__(self, message: str, span=None):
        if span is not None and getattr(span, "line", 0) > 0:
            message = f"{message} (line {span.line}, column {span.column})"
        super().__init__(message)
        self.span = span


class ControlPlaneError(AdnError):
    """Cluster-manager or controller failure (unknown resource kind,
    conflicting update, reconfiguration protocol violation)."""


class StaleEpochError(ControlPlaneError):
    """A configuration push carried an epoch at or below the one the
    data plane already runs — a deposed or partitioned controller trying
    to apply a superseded plan. The fence rejects it so a waking old
    leader can never double-apply placement (split brain)."""


class RpcAborted(AdnError):
    """An RPC was aborted by the network (ACL denial, fault injection,
    admission control). Carries the element that aborted it."""

    def __init__(self, message: str, element: str = ""):
        super().__init__(message)
        self.element = element
