"""The lint engine: parse → validate → analyze → run rules.

Front-end failures become diagnostics instead of exceptions:

* a :class:`~repro.errors.DslSyntaxError` yields one ``ADN101`` and
  stops (nothing else is trustworthy after a parse failure);
* each element/filter/app is validated *individually*, so one invalid
  element yields an ``ADN102`` while the rest of the file still gets the
  full rule battery.

Deeper rules run over the lowered IR and its analyses — the same
analyses the optimizer and placement solver consume, so lint findings
and compiler behaviour can't drift apart.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..control.placement import ClusterSpec
from ..dsl.ast_nodes import ElementDef, Program
from ..dsl.functions import DEFAULT_REGISTRY, FunctionRegistry
from ..dsl.parser import parse
from ..dsl.schema import RpcSchema
from ..dsl.stdlib import load_stdlib
from ..dsl.validator import validate_app, validate_element, validate_filter
from ..errors import DslSyntaxError, DslValidationError
from ..ir.analysis import ElementAnalysis, analyze_element
from ..ir.builder import build_element_ir
from ..ir.nodes import ElementIR
from .diagnostics import Diagnostic, Severity, sort_key
from .registry import run_rules


@dataclass
class LintOptions:
    """Knobs for one lint run."""

    schema: Optional[RpcSchema] = None  # None = open schema
    registry: Optional[FunctionRegistry] = None
    include_stdlib: bool = True  # resolve chain references via stdlib
    cluster: ClusterSpec = field(default_factory=ClusterSpec)


@dataclass
class LintContext:
    """Everything a rule may consult, prepared once per file."""

    path: str
    source: str
    options: LintOptions
    registry: FunctionRegistry
    #: the parsed program (own definitions only, unvalidated)
    program: Program
    #: own definitions that passed validation, by name
    elements: Dict[str, ElementDef] = field(default_factory=dict)
    #: lowered IR for every valid element (own + chain-referenced stdlib)
    irs: Dict[str, ElementIR] = field(default_factory=dict)
    #: analyses (with ``replication`` attached) for every IR above
    analyses: Dict[str, ElementAnalysis] = field(default_factory=dict)
    #: names defined in this file (rules report only on these, but may
    #: consult stdlib analyses for cross-element checks)
    own_elements: List[str] = field(default_factory=list)
    own_apps: List[str] = field(default_factory=list)
    #: scratch space for rules that share an expensive computation (e.g.
    #: the ADN5xx family runs the abstract interpreter once, not 5 times)
    cache: Dict[str, object] = field(default_factory=dict)

    def diag(
        self,
        code: str,
        severity: Severity,
        message: str,
        span=None,
        element: str = "",
        fix: str = "",
    ) -> Diagnostic:
        return Diagnostic(
            code=code,
            severity=severity,
            message=message,
            path=self.path,
            span=span,
            element=element,
            fix=fix,
        )


@dataclass
class LintResult:
    """All findings for one file, sorted by position."""

    path: str
    diagnostics: List[Diagnostic] = field(default_factory=list)

    def count(self, severity: Severity) -> int:
        return sum(1 for d in self.diagnostics if d.severity is severity)

    def codes(self) -> List[str]:
        return sorted({d.code for d in self.diagnostics})

    def worst_rank(self) -> int:
        return max((d.severity.rank for d in self.diagnostics), default=0)

    def fails(self, threshold: Severity) -> bool:
        return self.worst_rank() >= threshold.rank


def lint_source(
    source: str,
    path: str = "<string>",
    options: Optional[LintOptions] = None,
) -> LintResult:
    """Lint one DSL source text."""
    options = options or LintOptions()
    registry = options.registry or DEFAULT_REGISTRY
    result = LintResult(path=path)
    try:
        program = parse(source)
    except DslSyntaxError as error:
        result.diagnostics.append(
            Diagnostic(
                code="ADN101",
                severity=Severity.ERROR,
                message=str(error),
                path=path,
                span=_error_span(error),
                fix="fix the syntax error; later rules need a parse tree",
            )
        )
        return result

    context = LintContext(
        path=path,
        source=source,
        options=options,
        registry=registry,
        program=program,
        own_elements=list(program.elements),
        own_apps=list(program.apps),
    )
    _validate_front_end(context, result)
    _build_analyses(context)
    result.diagnostics.extend(run_rules(context))
    result.diagnostics.sort(key=sort_key)
    return result


def lint_file(path: str, options: Optional[LintOptions] = None) -> LintResult:
    """Lint one ``.adn`` file."""
    with open(path) as handle:
        source = handle.read()
    return lint_source(source, path=path, options=options)


# -- front-end capture ----------------------------------------------------


def _error_span(error) -> Optional[object]:
    from ..dsl.span import Span

    line = getattr(error, "line", 0)
    if line > 0:
        return Span(line, getattr(error, "column", 0))
    return None


def _validate_front_end(context: LintContext, result: LintResult) -> None:
    """Validate each definition on its own; failures become ADN102."""
    options = context.options
    for name, element in context.program.elements.items():
        try:
            context.elements[name] = validate_element(
                element, options.schema, context.registry
            )
        except DslValidationError as error:
            result.diagnostics.append(
                context.diag(
                    "ADN102",
                    Severity.ERROR,
                    str(error),
                    span=_error_span(error),
                    element=name,
                    fix="resolve the validation error; deeper analyses "
                    "skip this element until it validates",
                )
            )
    filters = {}
    for name, filter_def in context.program.filters.items():
        try:
            filters[name] = validate_filter(filter_def)
        except DslValidationError as error:
            result.diagnostics.append(
                context.diag(
                    "ADN102",
                    Severity.ERROR,
                    str(error),
                    span=_error_span(error),
                    element=name,
                )
            )
    # apps are validated against the stdlib-merged namespace so chains
    # may reference stdlib elements without redefining them
    resolution = Program(
        elements=dict(context.elements), filters=filters, apps={}
    )
    if options.include_stdlib:
        resolution = load_stdlib().merged(resolution)
    for name, app in context.program.apps.items():
        try:
            validate_app(app, resolution)
        except DslValidationError as error:
            result.diagnostics.append(
                context.diag(
                    "ADN102",
                    Severity.ERROR,
                    str(error),
                    span=_error_span(error),
                    element=name,
                )
            )


def _build_analyses(context: LintContext) -> None:
    """Lower and analyze valid own elements plus any stdlib elements the
    file's chains reference (cross-element rules need both sides)."""
    stdlib = (
        load_stdlib() if context.options.include_stdlib else Program()
    )
    referenced: List[str] = []
    for app in context.program.apps.values():
        for chain in app.chains:
            referenced.extend(chain.elements)
    for name in list(context.elements) + referenced:
        if name in context.irs:
            continue
        element = context.elements.get(name)
        if element is None:
            candidate = stdlib.elements.get(name)
            if candidate is None:
                continue  # unknown name: already an ADN102 on the app
            try:
                element = validate_element(
                    candidate, context.options.schema, context.registry
                )
            except DslValidationError:
                continue
        ir = build_element_ir(element)
        context.irs[name] = ir
        context.analyses[name] = analyze_element(ir, context.registry)
