"""Rule registry: lint rules self-register via the :func:`rule` decorator.

A rule is a function ``(LintContext) -> Iterable[Diagnostic]``. The
registry keys rules by their stable code so the engine can run all of
them (or a selected subset) and docs/tests can enumerate the catalog.
"""

from __future__ import annotations

from dataclasses import dataclass
from inspect import cleandoc
from typing import Callable, Dict, Iterable, List

from .diagnostics import Diagnostic, Severity


@dataclass(frozen=True)
class Rule:
    """One registered lint rule."""

    code: str
    name: str
    severity: Severity  # default severity of findings from this rule
    doc: str
    check: Callable  # (LintContext) -> Iterable[Diagnostic]


_RULES: Dict[str, Rule] = {}


def rule(code: str, name: str, severity: Severity):
    """Register the decorated function as the implementation of ``code``."""

    def decorator(fn: Callable) -> Callable:
        if code in _RULES:
            raise ValueError(f"duplicate lint rule code {code}")
        _RULES[code] = Rule(
            code=code,
            name=name,
            severity=severity,
            doc=cleandoc(fn.__doc__ or "").strip(),
            check=fn,
        )
        return fn

    return decorator


def all_rules() -> List[Rule]:
    """Every registered rule, sorted by code."""
    _load_builtin_rules()
    return [_RULES[code] for code in sorted(_RULES)]


def run_rules(context) -> List[Diagnostic]:
    """Run every registered rule over one lint context."""
    diagnostics: List[Diagnostic] = []
    for registered in all_rules():
        diagnostics.extend(registered.check(context))
    return diagnostics


def _load_builtin_rules() -> None:
    """Import the built-in rule modules (registration is import-driven)."""
    from .rules import (  # noqa: F401
        cross_element,
        dead,
        effects,
        graph,
        graph_flow,
        overload,
        placement,
        state_race,
        typecheck,
    )
