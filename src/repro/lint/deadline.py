"""The deadline-custody traversal behind ``ADN405``.

Two front ends ask the same question — *does every deadline-sensitive
edge sit under a budget?* — over two representations: the DSL-side rule
(:mod:`repro.lint.rules.graph`) reads app chains where "sensitive" means
retry filters / admission elements and "carries a budget" means a retry
filter with ``deadline_budget_ms``; the spec-side check
(:mod:`repro.graph.lint`) reads first-class :class:`EdgeSpec` fields.
This module owns the walk itself; callers lower their edges into
:class:`CustodyEdge` and render :class:`CustodyFinding` results into
their own diagnostic flavor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class CustodyEdge:
    """One service-graph edge, reduced to the facts the walk needs.

    ``sensitive`` holds human-readable reasons the edge consumes a
    deadline (empty tuple: not sensitive). ``carries_budget`` is whether
    the edge itself establishes a deadline budget. ``payload`` is an
    opaque handle (an ``EdgeSpec``, a ``ChainDecl``) the caller gets
    back on findings for span/element extraction.
    """

    src: str
    dst: str
    name: str
    sensitive: Tuple[str, ...] = ()
    carries_budget: bool = False
    payload: object = field(default=None, compare=False)


@dataclass(frozen=True)
class CustodyFinding:
    """A break in the chain of deadline custody.

    ``parent is None`` means ``edge`` is a sensitive *entry* edge (no
    upstream) that sets no budget of its own; otherwise ``parent`` is an
    upstream edge into ``edge.src`` that propagates no budget.
    """

    edge: CustodyEdge
    parent: Optional[CustodyEdge]


def walk_deadline_custody(
    edges: Sequence[CustodyEdge],
) -> List[CustodyFinding]:
    """Find every deadline-sensitive edge not covered by a budget.

    A sensitive edge is covered when every upstream edge into its source
    establishes ``deadline_budget_ms`` (the runtime then derives the
    child budget from the parent's remainder) — or, for entry edges with
    no upstream at all, when the edge itself establishes one. One
    finding is produced per uncovered parent, so the fix hint can name
    the exact edge to annotate.
    """
    by_dst: Dict[str, List[CustodyEdge]] = {}
    for edge in edges:
        by_dst.setdefault(edge.dst, []).append(edge)
    out: List[CustodyFinding] = []
    for edge in edges:
        if not edge.sensitive:
            continue
        upstream = by_dst.get(edge.src, [])
        if not upstream:
            if not edge.carries_budget:
                out.append(CustodyFinding(edge=edge, parent=None))
            continue
        for parent in upstream:
            if not parent.carries_budget:
                out.append(CustodyFinding(edge=edge, parent=parent))
    return out
