"""Built-in lint rules, grouped by code block (see docs/linting.md)."""
