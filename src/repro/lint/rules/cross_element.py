"""``ADN310`` — why adjacent chain elements don't commute.

The optimizer silently declines to reorder/fuse/parallelize pairs that
fail the Bernstein checks in :mod:`repro.ir.dependency`. This rule turns
those refusals into findings so chain authors know which orderings are
load-bearing — and which cheap rewrite (e.g. narrowing a projection)
would unlock an optimization.
"""

from __future__ import annotations

from typing import List

from ...ir.dependency import commute
from ..diagnostics import Diagnostic, Severity
from ..registry import rule


@rule("ADN310", "non-commuting-pair", Severity.HINT)
def check_chain_pairs(context) -> List[Diagnostic]:
    """Adjacent elements in a declared chain do not commute; the
    optimizer must preserve their order. Reported once per pair with the
    dependency analysis's reasons."""
    out: List[Diagnostic] = []
    for app_name in context.own_apps:
        app = context.program.apps[app_name]
        for chain in app.chains:
            names = [
                name
                for name in chain.elements
                if name in context.analyses  # filters/invalid skipped
            ]
            for first, second in zip(names, names[1:]):
                verdict = commute(
                    context.analyses[first], context.analyses[second]
                )
                if verdict.commutes:
                    continue
                reasons = "; ".join(verdict.reasons)
                out.append(
                    context.diag(
                        "ADN310",
                        Severity.HINT,
                        f"chain {chain.src} -> {chain.dst}: {first} and "
                        f"{second} do not commute ({reasons})",
                        span=chain.span,
                        element=app_name,
                        fix="order is preserved automatically; reorder "
                        "them yourself only if the listed dependency is "
                        "intended",
                    )
                )
    return out
