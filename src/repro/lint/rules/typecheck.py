"""``ADN501``–``ADN505`` — abstract-interpretation type & effect checks.

These rules front the :mod:`repro.analysis.typecheck` abstract
interpreter: every handler is interpreted over a product domain of
type-set × nullability × constancy × interval, and sites where a fault
is *guaranteed* (or, for the 505 family, merely possible) become
diagnostics with precise spans.

All five rules share one interpreter run, cached on the lint context:
each element is checked standalone, and every declared chain is checked
end-to-end (so a field dropped by one element is a missing-field error
in the next). Findings are deduplicated by (code, element, message,
position) and only reported against definitions in the linted file —
stdlib elements pulled in by a chain reference are analyzed for flow
but never blamed here.
"""

from __future__ import annotations

from typing import Dict, List

from ..diagnostics import Diagnostic, Severity
from ..registry import rule

_CACHE_KEY = "typecheck.findings"


def _typecheck_findings(context) -> List:
    """Run the abstract interpreter once per lint context."""
    if _CACHE_KEY in context.cache:
        return context.cache[_CACHE_KEY]
    from ...analysis.typecheck import TypeFinding, check_chain, check_element

    schema = context.options.schema
    findings: List[TypeFinding] = []
    seen = set()

    def add(batch) -> None:
        for finding in batch:
            key = finding.key()
            if key in seen:
                continue
            seen.add(key)
            findings.append(finding)

    own = set(context.own_elements)
    for name in context.own_elements:
        ir = context.irs.get(name)
        if ir is None:
            continue  # failed validation: already an ADN102
        add(check_element(ir, schema, context.registry).findings)
    for app_name in context.own_apps:
        app = context.program.apps[app_name]
        for chain in app.chains:
            elements = [
                context.irs[name]
                for name in chain.elements
                if name in context.irs
            ]
            if not elements:
                continue
            report = check_chain(elements, schema, context.registry)
            # blame only this file's own definitions; stdlib members of
            # the chain are context, not lint subjects
            add(f for f in report.findings if f.element in own)
    context.cache[_CACHE_KEY] = findings
    return findings


def _emit(context, code: str) -> List[Diagnostic]:
    out: List[Diagnostic] = []
    for finding in _typecheck_findings(context):
        if finding.code != code:
            continue
        out.append(
            context.diag(
                code,
                Severity.from_name(finding.severity),
                finding.message,
                span=finding.span,
                element=finding.element,
                fix=finding.fix,
            )
        )
    return out


@rule("ADN501", "missing-field-access", Severity.ERROR)
def check_missing_field(context) -> List[Diagnostic]:
    """A handler reads a tuple field that is guaranteed absent at that
    point — never in the schema, or dropped by an earlier projection or
    upstream chain element. Reads of fields emitted on only *some* paths
    are warnings."""
    return _emit(context, "ADN501")


@rule("ADN502", "type-mismatch", Severity.ERROR)
def check_type_mismatch(context) -> List[Diagnostic]:
    """An operator is applied to operands whose inferred types guarantee
    a runtime fault: ordering incomparable types, arithmetic on a value
    that is definitely NULL, or an operand combination every inhabitant
    of which raises (e.g. ``str - int``). Equality between disjoint
    types is a warning (legal, but always false)."""
    return _emit(context, "ADN502")


@rule("ADN503", "division-by-zero", Severity.ERROR)
def check_division_by_zero(context) -> List[Diagnostic]:
    """The divisor of ``/`` or ``%`` is statically known to be zero —
    either a literal/folded constant ``0`` or an interval pinned to
    ``[0, 0]`` — so the handler faults on every invocation that reaches
    the expression."""
    return _emit(context, "ADN503")


@rule("ADN504", "state-type-conflict", Severity.ERROR)
def check_state_type_conflict(context) -> List[Diagnostic]:
    """A write's inferred type conflicts with its declared destination:
    an INSERT/UPDATE column whose value cannot inhabit the state table's
    column type, a variable assignment off its declared type, or an
    emitted field off its schema/meta-field type."""
    return _emit(context, "ADN504")


@rule("ADN505", "possible-fault", Severity.WARNING)
def check_possible_fault(context) -> List[Diagnostic]:
    """A fault the checker cannot rule out but also cannot prove: a
    divisor whose interval contains zero, or arithmetic on a nullable
    operand (NULL arithmetic raises at runtime). Guard the expression
    (CASE / coalesce) or tighten the upstream write to discharge it."""
    return _emit(context, "ADN505")
