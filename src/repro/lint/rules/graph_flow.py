"""``ADN601``/``ADN602`` — graph-flow safety, DSL side.

The full ADN6xx family lives in the interprocedural analyzer
(:mod:`repro.analysis.graph`), which runs over first-class
:class:`~repro.graph.model.ServiceGraph` specs where retries and budgets
are spec fields. These two rules surface the same failure modes where
they can already be seen in a plain ``.adn`` file: a multi-chain app
whose chains stack ``retry`` filters multiplicatively (ADN601), and a
downstream chain whose retry filter budgets more time than any upstream
chain can deliver (ADN602). Spec-side emissions reuse these codes
without re-registering — the ADN405 precedent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ...dsl.ast_nodes import ChainDecl, Program
from ..diagnostics import Diagnostic, Severity
from ..registry import rule
from .graph import _resolution

#: worst-case amplification (product of attempts along a path) above
#: which ADN601 fires — mirrors GraphAnalysisOptions.amplification_threshold
AMPLIFICATION_THRESHOLD = 8.0


def _chain_attempts(chain: ChainDecl, namespace: Program) -> int:
    """Total attempts one logical call over this chain may make: the
    product over its retry filters of ``max_retries + 1``."""
    attempts = 1
    for name in chain.elements:
        filter_def = namespace.filters.get(name)
        if filter_def is not None and filter_def.operator == "retry":
            retries = filter_def.meta.get("max_retries")
            attempts *= 1 + int(retries if retries is not None else 0)
    return attempts


def _chain_budget(chain: ChainDecl, namespace: Program) -> Optional[float]:
    for name in chain.elements:
        filter_def = namespace.filters.get(name)
        if filter_def is not None and filter_def.operator == "retry":
            budget = filter_def.meta.get("deadline_budget_ms")
            if budget is not None:
                return float(budget)
    return None


def _walk_products(
    app,
    namespace: Program,
) -> List[Tuple[ChainDecl, float, float]]:
    """Per chain: (chain, product of attempts along the worst path
    reaching it, product before it) — app chains as a service DAG."""
    by_dst: Dict[str, List[ChainDecl]] = {}
    for chain in app.chains:
        by_dst.setdefault(chain.dst, []).append(chain)
    worst_in: Dict[str, float] = {}

    def incoming_product(service: str) -> float:
        if service in worst_in:
            return worst_in[service]
        worst_in[service] = 1.0  # cycle guard; chains are acyclic in apps
        best = 1.0
        for parent in by_dst.get(service, []):
            best = max(
                best,
                incoming_product(parent.src)
                * _chain_attempts(parent, namespace),
            )
        worst_in[service] = best
        return best

    out = []
    for chain in app.chains:
        before = incoming_product(chain.src)
        out.append(
            (chain, before * _chain_attempts(chain, namespace), before)
        )
    return out


@rule("ADN601", "retry-amplification-bound", Severity.ERROR)
def check_retry_amplification(context) -> List[Diagnostic]:
    """A multi-chain app stacks retry filters along a call path such
    that the worst-case attempt count (the product of each chain's
    ``max_retries + 1``) exceeds the amplification bound — one slow leaf
    dependency then multiplies load on every service between it and the
    root, the classic retry storm. Retry near the root or near the leaf,
    not both."""
    out: List[Diagnostic] = []
    namespace: Optional[Program] = None
    for app_name, app in context.program.apps.items():
        if len(app.chains) < 2:
            continue
        if namespace is None:
            namespace = _resolution(context)
        for chain, product, before in _walk_products(app, namespace):
            if (
                product <= AMPLIFICATION_THRESHOLD
                or before > AMPLIFICATION_THRESHOLD
            ):
                continue  # report the first edge crossing the bound
            out.append(
                context.diag(
                    "ADN601",
                    Severity.ERROR,
                    f"worst-case retry amplification through edge "
                    f"{chain.src} -> {chain.dst} is {product:g}x "
                    f"(product of retry attempts along the call path), "
                    f"above the bound of {AMPLIFICATION_THRESHOLD:g}x",
                    span=chain.span or app.span,
                    element=app_name,
                    fix="lower max_retries on the stacked retry filters "
                    "(attempts multiply across chained edges)",
                )
            )
    return out


@rule("ADN602", "deadline-budget-infeasible", Severity.WARNING)
def check_deadline_budget_feasibility(context) -> List[Diagnostic]:
    """A downstream chain's retry filter budgets more milliseconds than
    any upstream chain establishes — the surplus can never be used,
    because the propagated remaining budget is already smaller when the
    call arrives. Size nested budgets monotonically downward."""
    out: List[Diagnostic] = []
    namespace: Optional[Program] = None
    for app_name, app in context.program.apps.items():
        if len(app.chains) < 2:
            continue
        if namespace is None:
            namespace = _resolution(context)
        by_dst: Dict[str, List[ChainDecl]] = {}
        for chain in app.chains:
            by_dst.setdefault(chain.dst, []).append(chain)
        for chain in app.chains:
            own = _chain_budget(chain, namespace)
            if own is None:
                continue
            parents = by_dst.get(chain.src, [])
            budgets = [_chain_budget(p, namespace) for p in parents]
            known = [b for b in budgets if b is not None]
            if not known or own <= max(known):
                continue
            out.append(
                context.diag(
                    "ADN602",
                    Severity.WARNING,
                    f"edge {chain.src} -> {chain.dst} budgets {own:g} ms "
                    f"but every upstream chain delivers at most "
                    f"{max(known):g} ms — the surplus is unusable "
                    "headroom",
                    span=chain.span or app.span,
                    element=app_name,
                    fix="lower the downstream deadline_budget_ms to what "
                    "the upstream chains actually propagate",
                )
            )
    return out
