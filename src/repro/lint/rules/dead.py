"""``ADN2xx`` — dead state and dead handlers.

State that is declared but can never influence an emitted tuple is at
best wasted memory and at worst a sign the author believes a check is
happening that isn't. These rules work on the lowered IR so they see
exactly what the backends will execute.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from ...dsl.ast_nodes import Literal
from ...ir.expr_utils import collect_refs
from ...ir.nodes import (
    AssignVar,
    DeleteRows,
    ElementIR,
    FilterRows,
    InsertLiterals,
    InsertRows,
    JoinState,
    Project,
    UpdateRows,
    op_exprs,
)
from ...ir.passes.constant_folding import fold_expr
from ..diagnostics import Diagnostic, Severity
from ..registry import rule


def _own_irs(context) -> Iterable[ElementIR]:
    for name in context.own_elements:
        ir = context.irs.get(name)
        if ir is not None:
            yield ir


def _table_consumption(ir: ElementIR) -> Set[str]:
    """Tables whose *contents* flow somewhere: joins, star projections,
    aggregates, or column references in any expression. The WHERE of an
    UPDATE/DELETE addresses rows being written, so it does not count as
    consumption on its own."""
    consumed: Set[str] = set()

    def absorb(expr) -> None:
        if expr is None:
            return
        refs = collect_refs(expr)
        consumed.update(refs.tables_counted)
        consumed.update(tbl for tbl, _ in refs.table_columns)

    for handler in ir.handlers.values():
        for stmt in handler.statements:
            for op in stmt.ops:
                if isinstance(op, JoinState):
                    consumed.add(op.table)
                    absorb(op.on)
                elif isinstance(op, Project):
                    consumed.update(op.star_tables)
                    for _name, expr in op.items:
                        absorb(expr)
                elif isinstance(op, FilterRows):
                    absorb(op.predicate)
                elif isinstance(op, AssignVar):
                    absorb(op.expr)
                    absorb(op.where)
    return consumed


def _table_writes(ir: ElementIR):
    """(table, span) of every handler write; init writes seed the table
    but don't make it live."""
    statements = []
    for handler in ir.handlers.values():
        statements.extend(handler.statements)
    for stmt in statements:
        for op in stmt.ops:
            if isinstance(
                op, (InsertRows, InsertLiterals, UpdateRows, DeleteRows)
            ):
                yield op.table, stmt.span


@rule("ADN201", "dead-state-write-only", Severity.WARNING)
def check_write_only_tables(context) -> List[Diagnostic]:
    """A state table is written by handlers but its contents never reach
    a join, aggregate, projection, or predicate — nothing the element
    emits or decides depends on it."""
    out: List[Diagnostic] = []
    for ir in _own_irs(context):
        consumed = _table_consumption(ir)
        flagged: Set[str] = set()
        append_only = {d.name for d in ir.states if d.append_only}
        for table, span in _table_writes(ir):
            if table in consumed or table in flagged or table in append_only:
                continue
            flagged.add(table)
            out.append(
                context.diag(
                    "ADN201",
                    Severity.WARNING,
                    f"state table {table!r} is written but never read",
                    span=span,
                    element=ir.name,
                    fix=f"declare it 'state APPEND {table} (...)' if it is "
                    "an audit log the controller drains, or delete it",
                )
            )
    return out


@rule("ADN202", "dead-state-unused", Severity.WARNING)
def check_unused_state(context) -> List[Diagnostic]:
    """A declared state table is never accessed by any handler or init
    statement."""
    out: List[Diagnostic] = []
    for ir in _own_irs(context):
        touched = _table_consumption(ir)
        touched.update(table for table, _ in _table_writes(ir))
        for stmt in ir.init:
            for op in stmt.ops:
                table = getattr(op, "table", None)
                if table:
                    touched.add(table)
        for decl in ir.states:
            if decl.name not in touched:
                out.append(
                    context.diag(
                        "ADN202",
                        Severity.WARNING,
                        f"state table {decl.name!r} is declared but never "
                        "used",
                        span=decl.span,
                        element=ir.name,
                        fix="delete the declaration",
                    )
                )
    return out


@rule("ADN203", "unreachable-predicate", Severity.WARNING)
def check_unreachable_predicates(context) -> List[Diagnostic]:
    """A WHERE clause folds to constant false: the statement can never
    produce rows, so the arm is unreachable."""
    out: List[Diagnostic] = []
    for ir in _own_irs(context):
        for handler in ir.handlers.values():
            for stmt in handler.statements:
                for op in stmt.ops:
                    predicate = None
                    if isinstance(op, FilterRows):
                        predicate = op.predicate
                    elif isinstance(op, (UpdateRows, DeleteRows, AssignVar)):
                        predicate = op.where
                    if predicate is None:
                        continue
                    folded = fold_expr(predicate, context.registry)
                    if isinstance(folded, Literal) and folded.value is False:
                        out.append(
                            context.diag(
                                "ADN203",
                                Severity.WARNING,
                                "predicate is constant false; this "
                                "statement never fires",
                                span=stmt.span,
                                element=ir.name,
                                fix="remove the statement or fix the "
                                "predicate",
                            )
                        )
    return out


@rule("ADN204", "handler-never-emits", Severity.WARNING)
def check_silent_handlers(context) -> List[Diagnostic]:
    """A handler has no emit statement, so every RPC in that direction is
    dropped — legal (that's how blackholes are written) but almost always
    a missing ``SELECT * FROM input``."""
    out: List[Diagnostic] = []
    for ir in _own_irs(context):
        analysis = context.analyses.get(ir.name)
        if analysis is None:
            continue
        for kind, handler in analysis.handlers.items():
            if handler.emit_statements == 0:
                span = None
                handler_ir = ir.handlers.get(kind)
                if handler_ir is not None and handler_ir.statements:
                    span = handler_ir.statements[0].span
                out.append(
                    context.diag(
                        "ADN204",
                        Severity.WARNING,
                        f"'on {kind}' never emits: every {kind} is dropped",
                        span=span,
                        element=ir.name,
                        fix="add 'SELECT * FROM input;' to forward RPCs, "
                        "or suppress if dropping is intended",
                    )
                )
    return out


@rule("ADN205", "dead-var", Severity.WARNING)
def check_write_only_vars(context) -> List[Diagnostic]:
    """An element variable is written but never read — its value can
    never influence behaviour."""
    out: List[Diagnostic] = []
    for ir in _own_irs(context):
        read: Set[str] = set()
        written: Set[str] = set()
        for handler in ir.handlers.values():
            for stmt in handler.statements:
                for op in stmt.ops:
                    if isinstance(op, AssignVar):
                        written.add(op.var)
                        read |= collect_refs(op.expr).vars - {op.var}
                        read |= collect_refs(op.where).vars
                        continue
                    for expr in op_exprs(op):
                        read |= collect_refs(expr).vars
        for decl in ir.vars:
            if decl.name in written and decl.name not in read:
                out.append(
                    context.diag(
                        "ADN205",
                        Severity.WARNING,
                        f"var {decl.name!r} is written but never read",
                        span=decl.span,
                        element=ir.name,
                        fix="delete the variable and its SET statements",
                    )
                )
    return out
