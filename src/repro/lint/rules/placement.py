"""``ADN4xx`` — placement infeasibility, detected without the solver.

The placement solver raises at deploy time when an element has no legal
processor. Both of its per-element filters are statically checkable:
backend legality (does any available platform's code generator accept
the element?) and constraint consistency (does the app pin an element to
a side its own meta forbids?).

``ADN403`` extends the family beyond feasibility into durability: an
element whose state blocks replication (read-modify-write, per
:mod:`repro.ir.replication`) has exactly one copy of that state at
runtime — if the machine hosting it crashes and the element never opted
into checkpointing (``meta { checkpoint: true; }``), recovery has no
source to restore from and the state is simply gone.

``ADN407`` closes the loop ``ADN403`` opens: the fix for
unrecoverable state is ``meta { checkpoint: true; }``, which makes the
element's recovery a *controller* responsibility — the
RecoveryOrchestrator restores the checkpoint and retargets the delta
stream after a crash. On a cluster with no standby controller
(:class:`~repro.control.placement.ClusterSpec.standby_controller`),
that controller is itself a single point of failure: a controller
crash mid-recovery orphans the mesh with the element's state in limbo.

``ADN406`` covers the capacity dimension the legality matrix cannot:
an element can be perfectly expressible in the device's instruction
subset and still not *fit* — its keyed tables, sized by the
``table_entries`` meta (default 65536 rows), exceed the SmartNIC's or
switch's table memory, or it needs more registers than the pipeline
has. The offload path handles this safely at deploy time (host
fallback with a diagnostic); this rule surfaces the same fact
statically, while the chain is being written.
"""

from __future__ import annotations

from typing import Dict, List

from ...compiler.backends import make_backends
from ...platforms import Platform
from ..diagnostics import Diagnostic, Severity
from ..registry import rule


def _platform_available(platform: Platform, cluster) -> bool:
    if platform is Platform.SMARTNIC:
        return cluster.smartnics
    if platform is Platform.SWITCH_P4:
        return cluster.programmable_switch
    if platform is Platform.KERNEL_EBPF:
        return cluster.kernel_offload
    if platform is Platform.SIDECAR:
        return cluster.sidecars_available
    if platform is Platform.MRPC:
        return cluster.engine_available
    return True  # RPC_LIB: the app binary always exists


@rule("ADN401", "no-feasible-processor", Severity.ERROR)
def check_feasible_processor(context) -> List[Diagnostic]:
    """No platform in the configured cluster can host the element: every
    available platform's backend rejects it, or the only backend that
    accepts it runs in the app binary and the element is ``mandatory``
    (must run outside the app's trust domain). The placement solver
    would raise ``PlacementError`` for any chain using it."""
    out: List[Diagnostic] = []
    backends = make_backends(context.registry)
    cluster = context.options.cluster
    reports_cache: Dict[str, Dict[str, object]] = {}
    for name in context.own_elements:
        ir = context.irs.get(name)
        if ir is None:
            continue
        reports = reports_cache.setdefault(
            name,
            {
                backend_name: backend.check(ir)
                for backend_name, backend in backends.items()
            },
        )
        legal_platforms = []
        refusals: List[str] = []
        for platform in Platform:
            if not _platform_available(platform, cluster):
                refusals.append(f"{platform.value}: not in this cluster")
                continue
            if platform.in_app_binary and ir.mandatory:
                refusals.append(
                    f"{platform.value}: element is 'mandatory' (must run "
                    "outside the app binary)"
                )
                continue
            report = reports[platform.backend_name]
            if not report.legal:
                refusals.append(
                    f"{platform.value}: {report.violations[0]}"
                )
                continue
            legal_platforms.append(platform)
        if legal_platforms:
            continue
        out.append(
            context.diag(
                "ADN401",
                Severity.ERROR,
                f"no feasible processor for element {name!r}: "
                + "; ".join(refusals),
                span=context.program.elements[name].span,
                element=name,
                fix="relax the element (drop 'mandatory', avoid "
                "payload/loop constructs) or enable a platform "
                "(engine, sidecars, kernel offload, SmartNIC, switch)",
            )
        )
    return out


@rule("ADN402", "contradictory-colocation", Severity.ERROR)
def check_colocation_contradictions(context) -> List[Diagnostic]:
    """An app constraint pins an element to one side while the element's
    own ``meta { position: ...; }`` pins it to the other — the placement
    solver can never satisfy both."""
    out: List[Diagnostic] = []
    for app_name in context.own_apps:
        app = context.program.apps[app_name]
        for constraint in app.constraints:
            if constraint.kind != "colocate":
                continue
            element_name, side = constraint.args[0], constraint.args[1]
            ir = context.irs.get(element_name)
            if ir is None:
                continue
            position = ir.position
            if position in ("sender", "receiver") and position != side:
                out.append(
                    context.diag(
                        "ADN402",
                        Severity.ERROR,
                        f"app {app_name!r} colocates {element_name!r} with "
                        f"the {side}, but the element declares "
                        f"position: {position}",
                        span=constraint.span,
                        element=app_name,
                        fix="drop the colocate constraint or change the "
                        "element's position meta",
                    )
                )
    return out


@rule("ADN403", "unrecoverable-state", Severity.WARNING)
def check_unrecoverable_state(context) -> List[Diagnostic]:
    """A chain places an element whose state cannot be replicated
    (read-modify-write tables or variables) and that never opted into
    checkpointing: its single copy of state lives on one machine, and a
    crash of that machine loses it with no recovery source. Elements
    with replicable state survive via replicas; elements with ``meta {
    checkpoint: true; }`` survive via the warm standby — this rule
    flags the gap between the two."""
    out: List[Diagnostic] = []
    reported = set()
    for app_name in context.own_apps:
        app = context.program.apps[app_name]
        for chain in app.chains:
            for name in chain.elements:
                if name in reported:
                    continue
                analysis = context.analyses.get(name)
                ir = context.irs.get(name)
                if analysis is None or ir is None:
                    continue
                safety = analysis.replication
                if safety is None or not safety.blocking:
                    continue
                if ir.meta.get("checkpoint"):
                    continue
                reported.add(name)
                element = context.program.elements.get(name)
                span = element.span if element is not None else chain.span
                reasons = "; ".join(safety.reasons())
                out.append(
                    context.diag(
                        "ADN403",
                        Severity.WARNING,
                        f"element {name!r} holds non-replicable state with "
                        f"no recovery source: {reasons} — a crash of its "
                        "host machine loses this state permanently",
                        span=span,
                        element=name,
                        fix="add 'meta { checkpoint: true; }' to stream "
                        "the state to a warm standby, or restructure the "
                        "state to be replicable (read-only, commutative, "
                        "or keyed partitioned)",
                    )
                )
    return out


#: subset-legality backend per hardware platform: capacity is checked
#: here against the device profile, so legality must come from the raw
#: instruction-subset check (the nic backend folds capacity into its own
#: legality and would mask exactly the elements this rule is about)
_SUBSET_BACKEND = {
    Platform.SMARTNIC: "ebpf",
    Platform.SWITCH_P4: "p4",
}


@rule("ADN406", "state-exceeds-device-memory", Severity.WARNING)
def check_device_capacity(context) -> List[Diagnostic]:
    """A chain element is expressible on the cluster's SmartNIC or
    programmable switch but its state does not fit the device: keyed
    tables sized by ``meta { table_entries: N; }`` (default 65536 rows)
    overflow the device's table memory, or the element declares more
    variables than the pipeline has registers. At deploy time the
    offload solver refuses the prefix and falls back to the host — this
    rule reports the same capacity arithmetic statically, so the
    fallback is a choice rather than a surprise."""
    from ...offload.device import (
        device_profile_for,
        element_registers,
        element_table_bytes,
    )

    cluster = context.options.cluster
    devices = [
        platform
        for platform in (Platform.SMARTNIC, Platform.SWITCH_P4)
        if _platform_available(platform, cluster)
    ]
    if not devices:
        return []
    out: List[Diagnostic] = []
    backends = make_backends(context.registry)
    reported = set()
    for app_name in context.own_apps:
        app = context.program.apps[app_name]
        for chain in app.chains:
            for name in chain.elements:
                ir = context.irs.get(name)
                if ir is None:
                    continue
                for platform in devices:
                    if (name, platform) in reported:
                        continue
                    subset = backends[_SUBSET_BACKEND[platform]]
                    if not subset.check(ir).legal:
                        continue  # never offloadable; capacity is moot
                    profile = device_profile_for(platform)
                    needed_bytes = element_table_bytes(ir)
                    needed_regs = element_registers(ir)
                    overflows = []
                    if needed_bytes > profile.table_bytes:
                        overflows.append(
                            f"tables need {needed_bytes} bytes, "
                            f"{profile.name} has {profile.table_bytes}"
                        )
                    if needed_regs > profile.registers:
                        overflows.append(
                            f"needs {needed_regs} registers, "
                            f"{profile.name} has {profile.registers}"
                        )
                    if not overflows:
                        continue
                    reported.add((name, platform))
                    element = context.program.elements.get(name)
                    span = element.span if element is not None else chain.span
                    out.append(
                        context.diag(
                            "ADN406",
                            Severity.WARNING,
                            f"element {name!r} fits the "
                            f"{platform.value} instruction subset but "
                            f"not its memory: " + "; ".join(overflows)
                            + " — placement will fall back to the host",
                            span=span,
                            element=name,
                            fix="lower 'meta { table_entries: N; }' to "
                            "the real working-set size, shrink the "
                            "table's row types, or keep the element on "
                            "a software platform",
                        )
                    )
    return out


@rule("ADN407", "control-plane-single-point", Severity.WARNING)
def check_control_plane_single_point(context) -> List[Diagnostic]:
    """A chain element opts into checkpointed recovery
    (``meta { checkpoint: true; }``) but the cluster deploys no standby
    controller. Checkpointing makes recovery a controller
    responsibility: after the host crashes, the controller restores the
    element's state from the delta log and retargets the stream. With a
    single controller, that recovery path is itself unprotected — a
    controller crash mid-recovery leaves the mesh orphaned, the
    element's state restored nowhere. Deploy a warm-standby controller
    pair (lease-based failover, ``repro.control.resilience``) or accept
    that the checkpoint buys durability against exactly one machine's
    failure."""
    cluster = context.options.cluster
    if cluster is None or getattr(cluster, "standby_controller", False):
        return []
    out: List[Diagnostic] = []
    reported = set()
    for app_name in context.own_apps:
        app = context.program.apps[app_name]
        for chain in app.chains:
            for name in chain.elements:
                if name in reported:
                    continue
                ir = context.irs.get(name)
                if ir is None or not ir.meta.get("checkpoint"):
                    continue
                reported.add(name)
                element = context.program.elements.get(name)
                span = element.span if element is not None else chain.span
                out.append(
                    context.diag(
                        "ADN407",
                        Severity.WARNING,
                        f"element {name!r} relies on controller-driven "
                        "checkpoint recovery, but the cluster has no "
                        "standby controller — the controller is a "
                        "single point of failure for this element's "
                        "state",
                        span=span,
                        element=name,
                        fix="deploy a warm-standby controller pair and "
                        "declare it (--standby-controller on the CLI, "
                        "'standby_controller: true' in the cluster "
                        "spec), or drop the checkpoint if the state is "
                        "expendable",
                    )
                )
    return out
