"""``ADN70x`` — exactly-once / replica-divergence hazards (DSL side).

Surfaces :mod:`repro.analysis.effects` per-mutation-site proofs as
element-level findings. The spec-side variants in
:mod:`repro.analysis.graph` prove the same hazards *against a topology*
(a site only double-charges if some edge actually retries over it, so
there ADN700 is an error); without edge context the DSL side reports
them as hazards the element carries into any retrying or fan-out
deployment.
"""

from __future__ import annotations

from typing import Dict, List

from ...analysis.effects import ElementEffects, element_effects, refine_replication
from ..diagnostics import Diagnostic, Severity
from ..registry import rule

_CACHE_KEY = "effects.summaries"


def _summaries(context) -> Dict[str, ElementEffects]:
    """One effect summary per own element, shared across the family."""
    cached = context.cache.get(_CACHE_KEY)
    if cached is None:
        cached = {}
        for name in context.own_elements:
            ir = context.irs.get(name)
            if ir is not None:
                cached[name] = element_effects(ir, context.registry)
        context.cache[_CACHE_KEY] = cached
    return cached


@rule("ADN700", "non-idempotent-under-retry", Severity.WARNING)
def check_non_idempotent(context) -> List[Diagnostic]:
    """A handler mutation is neither idempotent nor rpc_id-keyed: a
    retried attempt of one logical RPC re-applies it, so deploying the
    element under any retrying edge double-charges state."""
    out: List[Diagnostic] = []
    for name, effects in sorted(_summaries(context).items()):
        for site in effects.non_idempotent_sites():
            out.append(
                context.diag(
                    "ADN700",
                    Severity.WARNING,
                    f"{site.describe()} re-applies on every retried "
                    "attempt (at-least-once delivery duplicates it)",
                    span=site.span,
                    element=name,
                    fix="record input.rpc_id in the written row (dedup "
                    "key), or restructure the mutation into an "
                    "idempotent set of the same value",
                )
            )
    return out


@rule("ADN701", "non-commutative-mutation", Severity.HINT)
def check_non_commutative(context) -> List[Diagnostic]:
    """A mutation does not commute with itself: sibling RPCs racing
    through fan-out edges make the final state order-dependent."""
    out: List[Diagnostic] = []
    for name, effects in sorted(_summaries(context).items()):
        for site in effects.non_commutative_sites():
            out.append(
                context.diag(
                    "ADN701",
                    Severity.HINT,
                    f"{site.describe()} does not commute with itself; "
                    "parallel sibling RPCs leave order-dependent state",
                    span=site.span,
                    element=name,
                    fix="restructure to a commutative update "
                    "(col = col + delta with a state-free guard), or "
                    "serialize the element behind one instance",
                )
            )
    return out


@rule("ADN702", "replica-divergent-mutation", Severity.WARNING)
def check_replica_divergence(context) -> List[Diagnostic]:
    """The coarse replication classifier calls the element scalable, but
    a per-mutation-site proof shows a replica-divergent site: replicas
    would silently disagree, so scale-out must be refused."""
    out: List[Diagnostic] = []
    summaries = _summaries(context)
    for name in sorted(summaries):
        analysis = context.analyses.get(name)
        coarse = getattr(analysis, "replication", None)
        if coarse is None or not coarse.shardable:
            continue  # already blocked coarsely (ADN301/302 report it)
        tightened = refine_replication(coarse, summaries[name])
        if tightened.shardable:
            continue
        out.append(
            context.diag(
                "ADN702",
                Severity.WARNING,
                f"element scales by the coarse verdict but holds a "
                f"replica-divergent mutation site: "
                f"{'; '.join(tightened.reasons())}",
                element=name,
                fix="make the divergent site deterministic and "
                "idempotent, or accept single-instance scaling",
            )
        )
    return out


@rule("ADN703", "retry-visible-read", Severity.HINT)
def check_retry_visible_reads(context) -> List[Diagnostic]:
    """A response field derives from state a non-idempotent mutation
    changes: a duplicate attempt observes (and answers with) different
    state than the first, so retries are visible to the caller."""
    out: List[Diagnostic] = []
    for name, effects in sorted(_summaries(context).items()):
        for read, site in effects.retry_visible_reads():
            out.append(
                context.diag(
                    "ADN703",
                    Severity.HINT,
                    f"emitted field {read.output_field!r} ({read.handler} "
                    f"handler) reads {read.target_kind} "
                    f"{read.target!r}, which {site.describe()} changes "
                    "per attempt — a retry answers differently",
                    span=site.span,
                    element=name,
                    fix="derive the response from request fields or "
                    "rpc_id-keyed state so duplicate attempts observe "
                    "identical values",
                )
            )
    return out
