"""``ADN3xx`` — state races / replication safety.

Surfaces :mod:`repro.ir.replication`'s classification as findings: an
element whose state is read-modify-write cannot be scaled out by
replication (each replica would see a fraction of the history), which
is exactly what the controller's autoscaler and the parallelize pass
will refuse at deploy time. Better to hear it from the linter first.
"""

from __future__ import annotations

from typing import List

from ...ir.replication import AccessMode
from ..diagnostics import Diagnostic, Severity
from ..registry import rule


def _own_safety(context):
    for name in context.own_elements:
        analysis = context.analyses.get(name)
        if analysis is not None and analysis.replication is not None:
            yield name, analysis.replication


@rule("ADN301", "state-race-table", Severity.WARNING)
def check_rmw_tables(context) -> List[Diagnostic]:
    """A state table is read-modify-write: concurrent replicas would race
    on it, so the element pins scaling to a single instance."""
    out: List[Diagnostic] = []
    for name, safety in _own_safety(context):
        for access in safety.accesses:
            if access.kind != "table":
                continue
            if access.mode is not AccessMode.READ_MODIFY_WRITE:
                continue
            out.append(
                context.diag(
                    "ADN301",
                    Severity.WARNING,
                    f"state table {access.name!r} is read-modify-write "
                    f"({access.detail}); replicas would race on it",
                    span=access.span,
                    element=name,
                    fix="restructure to counter-style updates "
                    "(col = col + delta), or add a KEY column pinned by "
                    "every access so the table can shard",
                )
            )
    return out


@rule("ADN302", "state-race-var", Severity.WARNING)
def check_rmw_vars(context) -> List[Diagnostic]:
    """An element variable is written and read back: variables have no
    key to shard by, so read-modify-write variables block scale-out
    entirely."""
    out: List[Diagnostic] = []
    for name, safety in _own_safety(context):
        for access in safety.accesses:
            if access.kind != "var":
                continue
            if access.mode is not AccessMode.READ_MODIFY_WRITE:
                continue
            out.append(
                context.diag(
                    "ADN302",
                    Severity.WARNING,
                    f"var {access.name!r} is read-modify-write "
                    f"({access.detail}); it cannot be replicated or "
                    "sharded",
                    span=access.span,
                    element=name,
                    fix="move the value into a keyed state table, or "
                    "accept single-instance scaling for this element",
                )
            )
    return out


@rule("ADN303", "shard-only-state", Severity.HINT)
def check_partitioned_tables(context) -> List[Diagnostic]:
    """A keyed table is read-modify-write but every access pins the key:
    the element scales only by key-partitioning, not by plain
    replication. Informational — the runtime supports this."""
    out: List[Diagnostic] = []
    for name, safety in _own_safety(context):
        for access in safety.accesses:
            if access.mode is not AccessMode.PARTITIONED:
                continue
            out.append(
                context.diag(
                    "ADN303",
                    Severity.HINT,
                    f"state table {access.name!r} requires key-partitioned "
                    "scale-out (every access pins its KEY columns)",
                    span=access.span,
                    element=name,
                    fix="no action needed; the controller will shard by "
                    "key instead of replicating",
                )
            )
    return out
