"""``ADN404`` — overload-safety: unbounded retries.

A retry filter with no overall deadline budget retries every transient
failure until ``max_retries`` is spent — and under overload, *every*
attempt fails by timeout, so each logical call multiplies offered load
by its full attempt count exactly when the downstream can least afford
it (the metastable retry storm). A ``deadline_budget_ms`` bounds the
whole logical call, which is also what deadline propagation
(repro.overload) carries on the wire so downstream processors can drop
work whose caller has already given up.
"""

from __future__ import annotations

from typing import List

from ..diagnostics import Diagnostic, Severity
from ..registry import rule


@rule("ADN404", "retry-without-deadline", Severity.WARNING)
def check_retry_without_deadline(context) -> List[Diagnostic]:
    """A ``retry`` filter sets no ``deadline_budget_ms``: one logical
    call may spend attempts x timeout x backoff with no overall bound,
    amplifying offered load during overload and leaving nothing to
    propagate as a deadline. Give every retry policy a budget."""
    out: List[Diagnostic] = []
    for name, filter_def in context.program.filters.items():
        if filter_def.operator != "retry":
            continue
        if filter_def.meta.get("deadline_budget_ms") is not None:
            continue
        out.append(
            context.diag(
                "ADN404",
                Severity.WARNING,
                f"filter {name!r} retries without a deadline budget: "
                "under overload every attempt times out and each "
                "logical call amplifies offered load by its full "
                "attempt count",
                span=filter_def.span,
                element=name,
                fix="add 'deadline_budget_ms: <ms>;' to the filter's "
                "meta to bound the whole logical call (and enable "
                "deadline propagation downstream)",
            )
        )
    return out
