"""``ADN405`` — graph-safety: deadline-sensitive edge with no upstream
budget.

In a multi-service app, elements that act on deadlines — ``retry``
filters consuming a budget, admission control shedding expired work —
only help if a deadline actually *reaches* them. The budget is
established where an edge's chain sets ``deadline_budget_ms`` and then
propagated hop by hop (repro.overload carries the remaining budget on
the wire; repro.graph derives child budgets from the parent's
remainder). An upstream edge with no budget breaks the chain of
custody: the downstream retry retries work whose caller may have given
up, and admission cannot drop already-dead requests before service
time.
"""

from __future__ import annotations

from typing import List, Optional

from ...dsl.ast_nodes import ChainDecl, Program
from ...dsl.stdlib import load_stdlib
from ..deadline import CustodyEdge, walk_deadline_custody
from ..diagnostics import Diagnostic, Severity
from ..registry import rule


def _resolution(context) -> Program:
    """Own definitions over the stdlib (when enabled) — the same
    namespace app chains validate against."""
    own = Program(
        elements=dict(context.program.elements),
        filters=dict(context.program.filters),
        apps={},
    )
    if context.options.include_stdlib:
        return load_stdlib().merged(own)
    return own


def _deadline_sensitive(chain: ChainDecl, namespace: Program) -> List[str]:
    """Element names in the chain that *consume* a deadline: retry
    filters and admission-control elements."""
    sensitive: List[str] = []
    for name in chain.elements:
        filter_def = namespace.filters.get(name)
        if filter_def is not None and filter_def.operator == "retry":
            sensitive.append(name)
            continue
        element = namespace.elements.get(name)
        if element is not None and element.meta.get("admission_control"):
            sensitive.append(name)
    return sensitive


def _carries_budget(chain: ChainDecl, namespace: Program) -> bool:
    """Does this edge establish a deadline budget? In the DSL that is a
    retry filter with ``deadline_budget_ms`` — the value the runtime
    stamps on the call and propagates as remaining budget."""
    for name in chain.elements:
        filter_def = namespace.filters.get(name)
        if (
            filter_def is not None
            and filter_def.operator == "retry"
            and filter_def.meta.get("deadline_budget_ms") is not None
        ):
            return True
    return False


def _custody_edges(app, namespace: Program) -> List[CustodyEdge]:
    """Lower an app's chains into the shared traversal's edge shape:
    "sensitive" reasons are the deadline-consuming element names, and
    the ``ChainDecl`` rides along as payload for span extraction."""
    return [
        CustodyEdge(
            src=chain.src,
            dst=chain.dst,
            name=f"{chain.src} -> {chain.dst}",
            sensitive=tuple(_deadline_sensitive(chain, namespace)),
            carries_budget=_carries_budget(chain, namespace),
            payload=chain,
        )
        for chain in app.chains
    ]


@rule("ADN405", "edge-without-upstream-deadline", Severity.WARNING)
def check_edge_without_upstream_deadline(context) -> List[Diagnostic]:
    """A multi-chain app has an edge whose chain uses deadline-sensitive
    elements (``retry`` filters, admission control) while an upstream
    edge into its source service establishes no deadline budget — the
    downstream elements act on a deadline that never arrives. Give the
    upstream edge a retry filter with ``deadline_budget_ms`` so the
    remaining budget propagates to where it is consumed."""
    out: List[Diagnostic] = []
    namespace: Optional[Program] = None
    for app_name, app in context.program.apps.items():
        if len(app.chains) < 2:
            continue  # single-hop apps have no upstream edges
        if namespace is None:
            namespace = _resolution(context)
        for finding in walk_deadline_custody(_custody_edges(app, namespace)):
            if finding.parent is None:
                # entry-edge custody is the runtime caller's job in the
                # DSL view; only broken *propagation* is a finding here
                continue
            chain = finding.edge.payload
            upstream: ChainDecl = finding.parent.payload
            out.append(
                context.diag(
                    "ADN405",
                    Severity.WARNING,
                    f"edge {finding.edge.name} uses "
                    f"deadline-sensitive element(s) "
                    f"{', '.join(repr(n) for n in finding.edge.sensitive)}"
                    f" but upstream edge {finding.parent.name} "
                    "propagates no deadline budget",
                    span=upstream.span or chain.span or app.span,
                    element=app_name,
                    fix="add a retry filter with "
                    "'deadline_budget_ms: <ms>;' to the upstream "
                    "chain so the remaining budget reaches the "
                    "downstream elements",
                )
            )
    return out
