"""``repro lint --explain ADNxxx`` — the rule catalog, self-describing.

Every registered rule carries its description (the rule function's
docstring) and default severity in the registry; this module adds a
minimal triggering example per code so ``--explain`` can show what the
finding looks like in source. ``tests/test_lint.py`` asserts the
example table covers every registered rule.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .registry import Rule, all_rules

#: minimal DSL (or spec) fragment that triggers each registered rule
EXAMPLES: Dict[str, str] = {
    "ADN201": """\
element WriteOnly {
    state audit (ts: float, user: str);
    on request {
        INSERT INTO audit SELECT now(), input.username FROM input;
        SELECT * FROM input;  -- audit is written but never read
    }
}""",
    "ADN202": """\
element Unused {
    state never_touched (k: str KEY, v: int);  -- no handler accesses it
    on request { SELECT * FROM input; }
}""",
    "ADN203": """\
element Unreachable {
    on request {
        SELECT * FROM input WHERE false;  -- folds to constant false
        SELECT * FROM input;
    }
}""",
    "ADN204": """\
element SilentDrop {
    state log_tab (ts: float) APPEND;
    on request {
        INSERT INTO log_tab SELECT now() FROM input;
        -- no SELECT emits: every request is silently dropped here
    }
}""",
    "ADN205": """\
element DeadVar {
    var seq: int = 0;
    on request {
        SET seq = seq + 1;  -- written, never read anywhere
        SELECT * FROM input;
    }
}""",
    "ADN301": """\
element RaceTable {
    state quota (user: str, used: int);
    on request {
        -- read-modify-write with no KEY pinning: replicas would race
        UPDATE quota SET used = used * 2 WHERE user == input.username;
        SELECT * FROM input;
    }
}""",
    "ADN302": """\
element RaceVar {
    var seq: int = 0;
    on request {
        SET seq = seq + 1;
        SELECT input.*, seq AS seq_no FROM input;  -- read back: RMW var
    }
}""",
    "ADN303": """\
element ShardOnly {
    state counters (method: str KEY, hits: int);
    on request {
        -- every access pins the KEY: scales by partitioning only
        UPDATE counters SET hits = hits + 1 WHERE method == input.method;
        SELECT * FROM input;
    }
}""",
    "ADN310": """\
app Reordered {
    service A; service B;
    -- adjacent pair does not commute: the second element reads a field
    -- the first rewrites, so swapping them changes behaviour
    chain A -> B { RewriteUser, AclByUser }
}""",
    "ADN401": """\
element NeedsEverything {
    state big (k: str KEY, v: bytes);
    on request { SELECT * FROM input WHERE contains(big, input.username); }
}
-- lint with --no-engine --no-sidecars --no-kernel and no SmartNICs or
-- programmable switch: no remaining platform can host stateful logic
""",
    "ADN402": """\
app Contradiction {
    service A; service B;
    chain A -> B { Compress @ A, Decompress @ A }
    -- Decompress must sit with the receiver, the pin forces the sender
}""",
    "ADN403": """\
app Fragile {
    service A; service B;
    -- RateLimit holds read-modify-write vars: its state cannot be
    -- replicated, so a crash of its host loses the limiter's history
    chain A -> B { RateLimit }
}""",
    "ADN404": """\
filter retry_forever = retry {
    max_attempts: 5;
    -- no deadline_budget_ms: every transient failure amplifies 5x
};""",
    "ADN405": """\
app NoCustody {
    service gw; service mid; service leaf;
    chain gw -> mid { Logging }                -- no budget established
    chain mid -> leaf { guarded }              -- retry consumes one
}
filter guarded = retry { max_attempts: 3; deadline_budget_ms: 20.0; };""",
    "ADN406": """\
element HugeTable {
    state seen (k: str KEY, v: int);
    meta { table_entries: 10000000; }  -- 10M rows x 40 B > NIC memory
    on request { UPDATE seen SET v = 1 WHERE k == input.username; }
}
app Offloaded {
    service A; service B;
    chain A -> B { HugeTable }
}
-- lint with --smartnics: the element passes the eBPF-subset check but
-- its table cannot fit the device; placement falls back to the host
""",
    "ADN407": """\
element DurableLimit {
    meta { checkpoint: true; }  -- recovery is now the controller's job
    state quota (user: str KEY, used: int);
    on request {
        UPDATE quota SET used = used + 1 WHERE user == input.username;
        SELECT * FROM input;
    }
}
app Fragile {
    service A; service B;
    chain A -> B { DurableLimit }
}
-- lint without --standby-controller: the single controller that would
-- replay DurableLimit's checkpoint is itself a point of failure
""",
    "ADN501": """\
element MissingField {
    on request {
        -- 'nonexistent' is guaranteed absent from the schema here
        SELECT input.nonexistent FROM input;
    }
}""",
    "ADN502": """\
element TypeClash {
    on request {
        SELECT input.username + 1 AS bad FROM input;  -- str + int
    }
}""",
    "ADN503": """\
element DivZero {
    on request { SELECT input.obj_id / 0 AS bad FROM input; }
}""",
    "ADN504": """\
element StateClash {
    state t (k: str KEY, v: int);
    on request {
        INSERT INTO t SELECT input.username, input.payload FROM input;
        -- payload: bytes written into v: int
        SELECT * FROM input;
    }
}""",
    "ADN505": """\
element MaybeFault {
    on request {
        -- obj_id - obj_id could be zero; the checker cannot prove it
        SELECT input.username, 1 / (input.obj_id - 7) AS risky FROM input;
    }
}""",
    "ADN601": """\
app Storm {
    service a; service b; service c;
    chain a -> b { r3 }
    chain b -> c { r3 }   -- 3 x 3 = 9x worst-case amplification
}
filter r3 = retry { max_attempts: 3; deadline_budget_ms: 50.0; };""",
    "ADN602": """\
app BadBudget {
    service a; service b; service c;
    chain a -> b { tight }
    chain b -> c { loose }   -- child budgets more ms than the parent has
}
filter tight = retry { max_attempts: 2; deadline_budget_ms: 10.0; };
filter loose = retry { max_attempts: 2; deadline_budget_ms: 200.0; };""",
    "ADN700": """\
element DoubleCharge {
    state counters (method: str KEY, hits: int);
    on request {
        -- not idempotent, not rpc_id-keyed: a retried attempt
        -- increments again (at-least-once delivery double-charges)
        UPDATE counters SET hits = hits + 1 WHERE method == input.method;
        SELECT * FROM input;
    }
}""",
    "ADN701": """\
element OrderDependent {
    state usage (username: str KEY, used: int);
    on request {
        -- the aggregated guard makes this a compare-and-swap: sibling
        -- RPCs racing through fan-out edges interleave differently
        UPDATE usage SET used = used + 1
            WHERE username == input.username
              AND sum_of(usage, used) < 100;
        SELECT * FROM input;
    }
}""",
    "ADN702": """\
element Drifting {
    state cache_tab (obj_id: int KEY, stamp: float);
    on request {
        -- keyed insert (coarse verdict: shardable) but the written
        -- value is nondeterministic: replicas holding the same key
        -- silently diverge, so scale-out must be refused
        INSERT INTO cache_tab SELECT input.obj_id, now() FROM input;
        SELECT * FROM input;
    }
}""",
    "ADN703": """\
element RetryVisible {
    var seq: int = 0;
    on request {
        SET seq = seq + 1;
        -- the emitted field reads state a duplicate attempt has
        -- already advanced: the caller can observe its own retry
        SELECT input.*, seq AS attempt_no FROM input;
    }
}""",
}


def find_rule(code: str) -> Optional[Rule]:
    """Registered rule for ``code`` (case-insensitive), or None."""
    wanted = code.strip().upper()
    for registered in all_rules():
        if registered.code == wanted:
            return registered
    return None


def explain_rule(code: str) -> Optional[str]:
    """Human-readable explainer for one rule code, or None if unknown."""
    registered = find_rule(code)
    if registered is None:
        return None
    lines: List[str] = [
        f"{registered.code} ({registered.name}) — "
        f"default severity: {registered.severity.value}",
        "",
        registered.doc or "(no description)",
    ]
    example = EXAMPLES.get(registered.code)
    if example:
        lines += ["", "Minimal triggering example:", ""]
        lines += ["    " + line for line in example.splitlines()]
    return "\n".join(lines)


def missing_examples() -> List[str]:
    """Registered codes with no example — must stay empty (tested)."""
    return [r.code for r in all_rules() if r.code not in EXAMPLES]
