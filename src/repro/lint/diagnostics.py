"""Structured lint findings."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from ..dsl.span import Span


class Severity(enum.Enum):
    """How bad a finding is, ordered: error > warning > hint."""

    ERROR = "error"
    WARNING = "warning"
    HINT = "hint"

    @property
    def rank(self) -> int:
        return {"error": 3, "warning": 2, "hint": 1}[self.value]

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        return cls(name.lower())


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, a place, a message, and a fix hint."""

    code: str  # e.g. "ADN301"
    severity: Severity
    message: str
    path: str = "<string>"
    span: Optional[Span] = None
    element: str = ""  # element/app the finding is about, if any
    fix: str = ""  # human-readable suggestion

    @property
    def line(self) -> int:
        return self.span.line if self.span else 0

    @property
    def column(self) -> int:
        return self.span.column if self.span else 0

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "element": self.element,
            "fix": self.fix,
        }

    def format_text(self) -> str:
        where = f"{self.path}:{self.line}:{self.column}"
        head = f"{where}: {self.severity.value} {self.code}: {self.message}"
        if self.fix:
            head += f"\n    fix: {self.fix}"
        return head


def sort_key(diagnostic: Diagnostic):
    """Stable presentation order: by position, then code."""
    return (
        diagnostic.path,
        diagnostic.line,
        diagnostic.column,
        diagnostic.code,
    )
