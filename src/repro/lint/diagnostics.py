"""Structured lint findings."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import FrozenSet, Iterable, List, Optional

from ..dsl.span import Span


class Severity(enum.Enum):
    """How bad a finding is, ordered: error > warning > hint."""

    ERROR = "error"
    WARNING = "warning"
    HINT = "hint"

    @property
    def rank(self) -> int:
        return {"error": 3, "warning": 2, "hint": 1}[self.value]

    @classmethod
    def from_name(cls, name: str) -> "Severity":
        return cls(name.lower())


@dataclass(frozen=True)
class Diagnostic:
    """One finding: a stable code, a place, a message, and a fix hint."""

    code: str  # e.g. "ADN301"
    severity: Severity
    message: str
    path: str = "<string>"
    span: Optional[Span] = None
    element: str = ""  # element/app the finding is about, if any
    fix: str = ""  # human-readable suggestion

    @property
    def line(self) -> int:
        return self.span.line if self.span else 0

    @property
    def column(self) -> int:
        return self.span.column if self.span else 0

    def to_dict(self) -> dict:
        return {
            "code": self.code,
            "severity": self.severity.value,
            "message": self.message,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "element": self.element,
            "fix": self.fix,
        }

    def format_text(self) -> str:
        where = f"{self.path}:{self.line}:{self.column}"
        head = f"{where}: {self.severity.value} {self.code}: {self.message}"
        if self.fix:
            head += f"\n    fix: {self.fix}"
        return head


def sort_key(diagnostic: Diagnostic):
    """Stable presentation order: by position, then code."""
    return (
        diagnostic.path,
        diagnostic.line,
        diagnostic.column,
        diagnostic.code,
    )


#: rules with both a DSL-side lint variant and a spec-side graph-checker
#: variant — two findings with the same (code, element) describe one
#: root cause and must not report twice (`repro check --graph` runs
#: both paths over one invocation)
CROSS_VARIANT_CODES: FrozenSet[str] = frozenset(
    {"ADN405", "ADN601", "ADN602"}
)


def dedupe_diagnostics(
    diagnostics: Iterable[Diagnostic],
    cross_variant: FrozenSet[str] = CROSS_VARIANT_CODES,
) -> List[Diagnostic]:
    """Collapse duplicate findings and sort by (file, span, rule id).

    Exact duplicates (same position, code, element, and message) always
    collapse. For the cross-variant codes, findings additionally
    collapse on (code, element): the DSL-side and spec-side emitters
    word one root cause differently, so the highest-severity variant
    (ties broken by position — a real span beats none) wins.
    """
    ordered = sorted(diagnostics, key=sort_key)
    winners: dict = {}
    for diag in ordered:
        if diag.code not in cross_variant or not diag.element:
            continue
        key = (diag.code, diag.element)
        prev = winners.get(key)
        if prev is None or diag.severity.rank > prev.severity.rank or (
            diag.severity.rank == prev.severity.rank
            and prev.line == 0
            and diag.line > 0
        ):
            winners[key] = diag
    out: List[Diagnostic] = []
    seen_exact = set()
    for diag in ordered:
        exact = (
            diag.path,
            diag.line,
            diag.column,
            diag.code,
            diag.element,
            diag.message,
        )
        if exact in seen_exact:
            continue
        seen_exact.add(exact)
        if diag.code in cross_variant and diag.element:
            if winners.get((diag.code, diag.element)) is not diag:
                continue
        out.append(diag)
    out.sort(key=sort_key)
    return out
