"""``adn-lint``: static analysis over ADN programs.

The paper's premise is that a restricted DSL lets the compiler *prove*
properties instead of discovering failures at runtime. This package
surfaces those proofs (and their failures) to the developer as
structured :class:`Diagnostic`\\ s with stable rule codes, severities,
and source spans — ``python -m repro lint`` is the entry point.

Rule code blocks:

* ``ADN1xx`` — front-end failures (syntax, validation);
* ``ADN2xx`` — dead state and dead handlers;
* ``ADN3xx`` — state races / replication safety;
* ``ADN4xx`` — placement infeasibility.

See ``docs/linting.md`` for the full catalog.
"""

from .diagnostics import Diagnostic, Severity
from .engine import LintOptions, LintResult, lint_file, lint_source
from .registry import all_rules, rule

__all__ = [
    "Diagnostic",
    "LintOptions",
    "LintResult",
    "Severity",
    "all_rules",
    "lint_file",
    "lint_source",
    "rule",
]
