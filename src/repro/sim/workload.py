"""Workload generators.

The paper's evaluation uses a closed-loop client: one thread keeping 128
concurrent RPCs in flight, short byte-string request/response (§6). The
closed-loop generator reproduces that; an open-loop (Poisson) generator
is provided for latency-vs-load sweeps and the autoscaling experiment.
"""

from __future__ import annotations

import random
from typing import Callable, Dict, Generator, Optional

from ..runtime.message import RpcOutcome
from .engine import Simulator
from .metrics import RunMetrics

#: An RPC path: a generator function taking per-call app fields and
#: yielding simulation events, returning an RpcOutcome.
CallFn = Callable[..., Generator]


def _default_fields(rng: random.Random, index: int) -> Dict[str, object]:
    """The paper's workload: short byte strings, with the fields the
    evaluated elements inspect."""
    return {
        "payload": b"x" * 64,
        "username": "usr2" if rng.random() < 0.9 else "usr1",
        "obj_id": rng.randrange(1 << 16),
    }


class ClosedLoopClient:
    """``concurrency`` logical workers, each looping issue→wait→repeat
    until ``total_rpcs`` complete across all workers."""

    def __init__(
        self,
        sim: Simulator,
        call: CallFn,
        concurrency: int = 128,
        total_rpcs: int = 2000,
        seed: int = 1,
        fields_fn: Optional[Callable[[random.Random, int], Dict[str, object]]] = None,
        warmup_rpcs: int = 0,
        think_s: float = 0.0,
    ):
        self.sim = sim
        self.call = call
        self.concurrency = concurrency
        self.total_rpcs = total_rpcs
        self.warmup_rpcs = warmup_rpcs
        #: per-worker pause between completions. Zero keeps the paper's
        #: tight closed loop; a positive think time matters when the path
        #: can answer instantly (an open circuit breaker short-circuits
        #: with no simulated delay, and a zero-think loop would then
        #: drain the whole workload in zero simulated time)
        self.think_s = think_s
        self.rng = random.Random(seed)
        self.fields_fn = fields_fn or _default_fields
        self.metrics = RunMetrics()
        self._remaining = total_rpcs + warmup_rpcs
        self._started_at: Optional[float] = None

    def run(self, limit_s: float = 300.0) -> RunMetrics:
        """Run to completion; returns the metrics."""
        workers = [
            self.sim.process(self._worker()) for _ in range(self.concurrency)
        ]
        done = self.sim.all_of(workers)
        self.sim.run_until_complete(
            self.sim.process(self._await(done)), limit=limit_s
        )
        if self._started_at is not None:
            self.metrics.elapsed_s = self.sim.now - self._started_at
        return self.metrics

    def _await(self, event) -> Generator:
        yield event

    def _worker(self) -> Generator:
        while self._remaining > 0:
            self._remaining -= 1
            index = (self.total_rpcs + self.warmup_rpcs) - self._remaining
            warmup = index <= self.warmup_rpcs
            if not warmup and self._started_at is None:
                self._started_at = self.sim.now
            fields = self.fields_fn(self.rng, index)
            self.metrics.issued += 1
            outcome: RpcOutcome = yield self.sim.process(self.call(**fields))
            if warmup:
                continue
            # an aborted RPC still completes from the client's view (the
            # network answered it); it is counted in the rate and also
            # tallied as aborted
            self.metrics.completed += 1
            self.metrics.latency.record(outcome.latency_s)
            if not outcome.ok:
                self.metrics.aborted += 1
            if self.think_s > 0:
                yield self.sim.timeout(self.think_s)


class OpenLoopClient:
    """Poisson arrivals at ``rate_rps``; unbounded concurrency."""

    def __init__(
        self,
        sim: Simulator,
        call: CallFn,
        rate_rps: float,
        duration_s: float,
        seed: int = 1,
        fields_fn: Optional[Callable[[random.Random, int], Dict[str, object]]] = None,
    ):
        self.sim = sim
        self.call = call
        self.rate_rps = rate_rps
        self.duration_s = duration_s
        self.rng = random.Random(seed)
        self.fields_fn = fields_fn or _default_fields
        self.metrics = RunMetrics()

    def run(self, drain_s: float = 1.0) -> RunMetrics:
        self.sim.process(self._arrivals())
        self.sim.run(until=self.sim.now + self.duration_s + drain_s)
        self.metrics.elapsed_s = self.duration_s
        return self.metrics

    def _arrivals(self) -> Generator:
        index = 0
        started = self.sim.now
        while self.sim.now - started < self.duration_s:
            yield self.sim.timeout(self.rng.expovariate(self.rate_rps))
            index += 1
            fields = self.fields_fn(self.rng, index)
            self.metrics.issued += 1
            self.sim.process(self._one(fields))

    def _one(self, fields: Dict[str, object]) -> Generator:
        outcome: RpcOutcome = yield self.sim.process(self.call(**fields))
        self.metrics.completed += 1
        if not outcome.ok:
            self.metrics.aborted += 1
        self.metrics.latency.record(outcome.latency_s)


class SteppedLoadClient:
    """Open-loop load that steps through (rate, duration) phases — the
    autoscaling experiment's workload spike."""

    def __init__(
        self,
        sim: Simulator,
        call: CallFn,
        phases,
        seed: int = 1,
    ):
        self.sim = sim
        self.call = call
        self.phases = list(phases)
        self.rng = random.Random(seed)
        self.metrics = RunMetrics()
        self.per_phase: list = []

    def run(self, drain_s: float = 1.0) -> RunMetrics:
        total = sum(duration for _rate, duration in self.phases)
        self.sim.process(self._arrivals())
        self.sim.run(until=self.sim.now + total + drain_s)
        self.metrics.elapsed_s = total
        return self.metrics

    def _arrivals(self) -> Generator:
        index = 0
        for rate, duration in self.phases:
            phase_metrics = RunMetrics()
            phase_metrics.elapsed_s = duration
            self.per_phase.append(phase_metrics)
            started = self.sim.now
            while self.sim.now - started < duration:
                yield self.sim.timeout(self.rng.expovariate(rate))
                index += 1
                fields = _default_fields(self.rng, index)
                self.metrics.issued += 1
                phase_metrics.issued += 1
                self.sim.process(self._one(fields, phase_metrics))

    def _one(self, fields, phase_metrics) -> Generator:
        outcome: RpcOutcome = yield self.sim.process(self.call(**fields))
        for metrics in (self.metrics, phase_metrics):
            metrics.completed += 1
            if not outcome.ok:
                metrics.aborted += 1
            metrics.latency.record(outcome.latency_s)
