"""Simulation resources: FCFS servers (CPU cores, NIC engines) and
FIFO stores (queues between processes).

``Resource`` tracks cumulative busy time, which the benchmarks use for
the CPU-overhead comparison (the paper cites 1.6–7x CPU inflation for
service meshes).
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, List, Optional

from ..errors import SimulationError
from .engine import Event, Simulator


class Resource:
    """A server pool with ``capacity`` identical slots and a FIFO queue."""

    def __init__(self, sim: Simulator, capacity: int = 1, name: str = ""):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self._in_use = 0
        self._waiters: Deque[Event] = deque()
        self.busy_time = 0.0  # cumulative seconds of slot occupancy
        self.served = 0

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Event that triggers when a slot is granted to the caller."""
        event = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters and self._in_use <= self.capacity:
            waiter = self._waiters.popleft()
            waiter.succeed()  # slot transfers directly to the next waiter
        else:
            # no waiter, or capacity was shrunk below current occupancy:
            # let the slot drain
            self._in_use -= 1

    def set_capacity(self, capacity: int) -> None:
        """Resize the pool (autoscaling). Growing wakes queued waiters;
        shrinking lets occupied slots drain naturally."""
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        while self._waiters and self._in_use < self.capacity:
            self._in_use += 1
            self._waiters.popleft().succeed()

    def use(self, duration: float) -> Generator[Event, None, None]:
        """``yield from resource.use(t)`` — acquire, hold for ``t``,
        release; accounts busy time."""
        if duration < 0:
            raise SimulationError(f"negative service time {duration}")
        yield self.request()
        try:
            if duration > 0:
                yield self.sim.timeout(duration)
            self.busy_time += duration
            self.served += 1
        finally:
            self.release()

    def utilization(self, elapsed: float) -> float:
        """Average fraction of capacity busy over ``elapsed`` seconds."""
        if elapsed <= 0:
            return 0.0
        return self.busy_time / (elapsed * self.capacity)


class Store:
    """Unbounded FIFO queue with blocking ``get``."""

    def __init__(self, sim: Simulator, name: str = ""):
        self.sim = sim
        self.name = name
        self._items: Deque[object] = deque()
        self._getters: Deque[Event] = deque()
        self.put_count = 0

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: object) -> None:
        self.put_count += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class ResourceGroup:
    """Named resources with aggregate accounting (e.g. all cores of one
    machine)."""

    def __init__(self) -> None:
        self._resources: List[Resource] = []

    def add(self, resource: Resource) -> Resource:
        self._resources.append(resource)
        return resource

    def total_busy_time(self) -> float:
        return sum(resource.busy_time for resource in self._resources)

    def find(self, name: str) -> Optional[Resource]:
        for resource in self._resources:
            if resource.name == name:
                return resource
        return None
