"""Simulation resources: FCFS servers (CPU cores, NIC engines) and
FIFO stores (queues between processes).

``Resource`` tracks cumulative busy time, which the benchmarks use for
the CPU-overhead comparison (the paper cites 1.6–7x CPU inflation for
service meshes).

Overload control (repro.overload) builds on two properties here:

* **bounded queues** — a ``queue_limit`` turns the silent infinite wait
  of a saturated resource into an explicit, observable reject
  (``can_enqueue`` / the ``rejected`` counter), which is what lets a
  processor shed cheap instead of queueing forever;
* **queueing-delay accounting** — every grant records how long the
  waiter sat in the queue, so admission controllers (CoDel-style
  shedding) and autoscalers can act on *sojourn time*, the signal that
  rises before throughput collapses.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Generator, List, Optional, Tuple

from ..errors import SimulationError
from .engine import Event, Simulator


class Resource:
    """A server pool with ``capacity`` identical slots and a FIFO queue.

    With ``queue_limit`` set, at most that many waiters may queue; the
    caller must check :attr:`can_enqueue` before ``request()`` and count
    the reject via :meth:`reject` instead of waiting.
    """

    def __init__(
        self,
        sim: Simulator,
        capacity: int = 1,
        name: str = "",
        queue_limit: Optional[int] = None,
    ):
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        if queue_limit is not None and queue_limit < 0:
            raise SimulationError(
                f"queue_limit must be >= 0, got {queue_limit}"
            )
        self.sim = sim
        self.capacity = capacity
        self.name = name
        self.queue_limit = queue_limit
        self._in_use = 0
        self._waiters: Deque[Tuple[Event, float]] = deque()
        self.busy_time = 0.0  # cumulative seconds of slot occupancy
        self.served = 0
        #: requests turned away because the queue was at its limit
        self.rejected = 0
        #: queueing-delay accounting: total seconds waiters spent queued
        #: before their grant, the number of grants, and the most recent
        #: grant's wait (the CoDel sojourn signal)
        self.queue_wait_s_total = 0.0
        self.grants = 0
        self.last_grant_wait_s = 0.0
        #: capacity-seconds accounting across ``set_capacity`` resizes
        self._created_at = sim.now
        self._capacity_integral = 0.0
        self._capacity_since = sim.now

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queue_length(self) -> int:
        return len(self._waiters)

    @property
    def can_enqueue(self) -> bool:
        """Would a ``request()`` right now be admitted (granted or
        queued within the limit)?"""
        if self._in_use < self.capacity:
            return True
        if self.queue_limit is None:
            return True
        return len(self._waiters) < self.queue_limit

    def reject(self) -> None:
        """Record one explicit queue-full reject (the caller sheds the
        work instead of waiting)."""
        self.rejected += 1

    def request(self) -> Event:
        """Event that triggers when a slot is granted to the caller."""
        event = self.sim.event()
        if self._in_use < self.capacity:
            self._in_use += 1
            self._record_grant(0.0)
            event.succeed()
        else:
            self._waiters.append((event, self.sim.now))
        return event

    def release(self) -> None:
        if self._in_use <= 0:
            raise SimulationError(f"release of idle resource {self.name!r}")
        if self._waiters and self._in_use <= self.capacity:
            waiter, enqueued_at = self._waiters.popleft()
            self._record_grant(self.sim.now - enqueued_at)
            waiter.succeed()  # slot transfers directly to the next waiter
        else:
            # no waiter, or capacity was shrunk below current occupancy:
            # let the slot drain
            self._in_use -= 1

    def _record_grant(self, waited_s: float) -> None:
        self.grants += 1
        self.queue_wait_s_total += waited_s
        self.last_grant_wait_s = waited_s

    def set_capacity(self, capacity: int) -> None:
        """Resize the pool (autoscaling). Growing wakes queued waiters;
        shrinking lets occupied slots drain naturally."""
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self._capacity_integral += self.capacity * (
            self.sim.now - self._capacity_since
        )
        self._capacity_since = self.sim.now
        self.capacity = capacity
        while self._waiters and self._in_use < self.capacity:
            self._in_use += 1
            waiter, enqueued_at = self._waiters.popleft()
            self._record_grant(self.sim.now - enqueued_at)
            waiter.succeed()

    def use(self, duration: float) -> Generator[Event, None, None]:
        """``yield from resource.use(t)`` — acquire, hold for ``t``,
        release; accounts busy time."""
        if duration < 0:
            raise SimulationError(f"negative service time {duration}")
        yield self.request()
        try:
            if duration > 0:
                yield self.sim.timeout(duration)
            self.busy_time += duration
            self.served += 1
        finally:
            self.release()

    def capacity_seconds(self) -> float:
        """Integral of capacity over this resource's lifetime — the
        correct denominator for utilization across resizes."""
        return self._capacity_integral + self.capacity * (
            self.sim.now - self._capacity_since
        )

    def mean_service_s(self) -> float:
        """Average observed service time per completed use."""
        if self.served == 0:
            return 0.0
        return self.busy_time / self.served

    def estimated_sojourn_s(self) -> float:
        """Instantaneous estimate of the queueing delay a request
        admitted *now* would see: work ahead of it (queued + in service)
        served at the observed mean rate across all slots. This is the
        shed-before-queueing signal — unlike measured grant waits it
        rises the moment a burst lands, not one service time later."""
        mean = self.mean_service_s()
        if mean <= 0.0:
            return 0.0
        ahead = len(self._waiters) + self._in_use
        return ahead * mean / self.capacity

    def utilization(self, elapsed: float) -> float:
        """Average fraction of capacity busy over ``elapsed`` seconds.

        Integrates capacity-seconds across ``set_capacity`` resizes: a
        resource that ran half the window at capacity 1 and half at 3
        divides by 2 capacity-seconds per second, not by the current
        capacity (which would misreport utilization after any autoscale
        event).
        """
        if elapsed <= 0:
            return 0.0
        lifetime = self.sim.now - self._created_at
        if lifetime <= 0:
            # no simulated time has passed since creation: fall back to
            # the current capacity (nothing to integrate)
            return self.busy_time / (elapsed * self.capacity)
        mean_capacity = self.capacity_seconds() / lifetime
        return self.busy_time / (elapsed * mean_capacity)


class Store:
    """FIFO queue with blocking ``get`` — unbounded by default, bounded
    when ``queue_limit`` is set (``put`` then reports the reject instead
    of growing without bound)."""

    def __init__(
        self,
        sim: Simulator,
        name: str = "",
        queue_limit: Optional[int] = None,
    ):
        if queue_limit is not None and queue_limit < 1:
            raise SimulationError(
                f"queue_limit must be >= 1, got {queue_limit}"
            )
        self.sim = sim
        self.name = name
        self.queue_limit = queue_limit
        self._items: Deque[object] = deque()
        self._getters: Deque[Event] = deque()
        self.put_count = 0
        self.rejected = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def can_put(self) -> bool:
        if self._getters:
            return True  # hand-off, never queued
        if self.queue_limit is None:
            return True
        return len(self._items) < self.queue_limit

    def put(self, item: object) -> bool:
        """Deposit one item; returns False (an explicit reject) when the
        store is bounded and full."""
        if not self.can_put:
            self.rejected += 1
            return False
        self.put_count += 1
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)
        return True

    def get(self) -> Event:
        event = self.sim.event()
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event


class ResourceGroup:
    """Named resources with aggregate accounting (e.g. all cores of one
    machine)."""

    def __init__(self) -> None:
        self._resources: List[Resource] = []

    def add(self, resource: Resource) -> Resource:
        self._resources.append(resource)
        return resource

    def total_busy_time(self) -> float:
        return sum(resource.busy_time for resource in self._resources)

    def find(self, name: str) -> Optional[Resource]:
        for resource in self._resources:
            if resource.name == name:
                return resource
        return None
