"""Discrete-event simulation engine.

A small process-based DES kernel (in the style of SimPy, implemented from
scratch): *processes* are Python generators that yield :class:`Event`
objects; the simulator advances virtual time, firing events in timestamp
order with FIFO tie-breaking.

Everything in the data-plane substrate — CPU cores, NICs, links, RPC
queues — is built from three primitives here: :class:`Event`,
:class:`Process`, and the resources in :mod:`repro.sim.resources`.

Time is in **seconds** (floats); cost-model constants are microseconds
and converted at the call site via :data:`US`.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Callable, Generator, List, Optional, Tuple

from ..errors import SimulationError

#: one microsecond, in simulator seconds
US = 1e-6
#: one millisecond
MS = 1e-3


class Event:
    """A one-shot occurrence processes can wait on.

    An event is *triggered* once (``succeed``/``fail``); callbacks run at
    the simulated time of triggering. Yielding an event from a process
    suspends the process until the event triggers.
    """

    __slots__ = ("sim", "callbacks", "value", "triggered", "fired", "ok")

    def __init__(self, sim: "Simulator"):
        self.sim = sim
        self.callbacks: List[Callable[["Event"], None]] = []
        self.value: object = None
        self.triggered = False  # outcome decided (or scheduled, for timeouts)
        self.fired = False  # callbacks have run
        self.ok = True

    def succeed(self, value: object = None) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.value = value
        self.sim._schedule_at(self.sim.now, self._fire)
        return self

    def fail(self, exception: BaseException) -> "Event":
        if self.triggered:
            raise SimulationError("event already triggered")
        self.triggered = True
        self.ok = False
        self.value = exception
        self.sim._schedule_at(self.sim.now, self._fire)
        return self

    def _fire(self) -> None:
        self.fired = True
        callbacks, self.callbacks = self.callbacks, []
        for callback in callbacks:
            callback(self)

    def add_callback(self, callback: Callable[["Event"], None]) -> None:
        if self.fired:
            self.sim._schedule_at(self.sim.now, lambda: callback(self))
        else:
            self.callbacks.append(callback)


class Timeout(Event):
    """An event that triggers after a fixed delay."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", delay: float, value: object = None):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        super().__init__(sim)
        self.triggered = True  # scheduled, cannot be re-succeeded
        self.value = value
        sim._schedule_at(sim.now + delay, self._fire)


class Process(Event):
    """A running generator; also an event that triggers when it returns."""

    __slots__ = ("generator",)

    def __init__(self, sim: "Simulator", generator: Generator):
        super().__init__(sim)
        self.generator = generator
        sim._schedule_at(sim.now, lambda: self._step(None, True))

    def _step(self, value: object, ok: bool) -> None:
        try:
            if ok:
                target = self.generator.send(value)
            else:
                target = self.generator.throw(value)  # type: ignore[arg-type]
        except StopIteration as stop:
            if not self.triggered:
                self.triggered = True
                self.value = stop.value
                self.sim._schedule_at(self.sim.now, self._fire)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process yielded {target!r}; processes must yield Events"
            )
        target.add_callback(self._resume)

    def _resume(self, event: Event) -> None:
        self._step(event.value, event.ok)


class AllOf(Event):
    """Triggers when every child event has triggered."""

    __slots__ = ("_pending",)

    def __init__(self, sim: "Simulator", events: List[Event]):
        super().__init__(sim)
        self._pending = len(events)
        if self._pending == 0:
            self.succeed([])
            return
        self.value = [None] * len(events)
        for index, event in enumerate(events):
            event.add_callback(self._make_child_callback(index))

    def _make_child_callback(self, index: int):
        def on_child(event: Event) -> None:
            self.value[index] = event.value  # type: ignore[index]
            self._pending -= 1
            if self._pending == 0 and not self.triggered:
                self.triggered = True
                self.sim._schedule_at(self.sim.now, self._fire)

        return on_child


class AnyOf(Event):
    """Triggers when the first child event triggers (others are ignored)."""

    __slots__ = ()

    def __init__(self, sim: "Simulator", events: List[Event]):
        super().__init__(sim)
        for event in events:
            event.add_callback(self._on_child)

    def _on_child(self, event: Event) -> None:
        if not self.triggered:
            self.triggered = True
            self.value = event.value
            self.sim._schedule_at(self.sim.now, self._fire)


class Simulator:
    """The event loop: a time-ordered heap of callbacks."""

    def __init__(self) -> None:
        self.now: float = 0.0
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()

    # -- scheduling ---------------------------------------------------------

    def _schedule_at(self, when: float, callback: Callable[[], None]) -> None:
        if when < self.now - 1e-15:
            raise SimulationError(
                f"cannot schedule at {when} (now is {self.now})"
            )
        heapq.heappush(self._heap, (when, next(self._sequence), callback))

    def timeout(self, delay: float, value: object = None) -> Timeout:
        return Timeout(self, delay, value)

    def event(self) -> Event:
        return Event(self)

    def process(self, generator: Generator) -> Process:
        return Process(self, generator)

    def all_of(self, events: List[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: List[Event]) -> AnyOf:
        return AnyOf(self, events)

    # -- running -------------------------------------------------------------

    def run(self, until: Optional[float] = None) -> None:
        """Run until the heap drains or simulated time reaches ``until``."""
        while self._heap:
            when, _seq, callback = self._heap[0]
            if until is not None and when > until:
                self.now = until
                return
            heapq.heappop(self._heap)
            self.now = when
            callback()
        # when the heap drains before ``until``, time stays at the last
        # event — advancing to an arbitrary horizon would corrupt
        # elapsed-time metrics

    def run_until_complete(self, process: Process, limit: float = 1e6) -> object:
        """Run until ``process`` finishes; returns its value."""
        self.run(until=limit)
        if not process.triggered:
            raise SimulationError(
                f"process did not finish within {limit} simulated seconds"
            )
        return process.value
