"""Calibrated cost model for every data-plane processing step.

Each step has two components:

* ``*_us`` — CPU microseconds charged against the executing core
  (occupies the resource: determines throughput under load);
* ``*_extra_us`` — additional wall-clock latency that does *not* occupy
  the bottleneck core (scheduler wakeups, loopback queueing, interrupt
  coalescing; determines unloaded latency).

Separating the two is what lets a single model reproduce both of the
paper's headline asymmetries: ADN beats Envoy by 17–20x on latency
(latency is dominated by the extra, non-CPU stack crossings Envoy adds)
but "only" 5–6x on throughput (throughput is bounded by CPU occupancy of
the bottleneck thread: the Envoy worker vs. the mRPC engine).

Calibration sources (values are per small (~64 B) message unless noted):

* Envoy sidecar per-traversal CPU ≈ 30 µs and wall latency ≈ 240 µs —
  consistent with "Dissecting Service Mesh Overheads" [66] (protocol
  parsing dominates), SPRIGHT [52] (3–7x degradation), and Istio/Linkerd
  benchmark reports [3, 9, 12] that show ~0.4–1 ms added per sidecar pair
  at p50 with filters enabled.
* mRPC engine per-message CPU ≈ 10 µs and unloaded RTT ≈ 60 µs —
  consistent with mRPC (NSDI '23) [25], which reports tens-of-µs RTTs
  and ~100 krps per engine core over TCP with adaptive batching.
* Kernel TCP send/receive path ≈ 7 µs CPU + ~15 µs wakeup latency, ToR
  round ≈ 5 µs/hop — standard datacenter numbers.

The defaults reproduce Figure 5's shape; tests assert bands, not points.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from ..platforms import Platform


@dataclass
class CostModel:
    """All tunable per-step costs, in microseconds."""

    # -- application endpoints -------------------------------------------
    app_logic_us: float = 1.0  # server business logic per request
    client_issue_us: float = 1.5  # client-side bookkeeping per RPC issued
    client_complete_us: float = 1.5  # client-side completion handling

    # -- conventional gRPC stack (baseline path) ---------------------------
    protobuf_serialize_us: float = 6.0
    protobuf_deserialize_us: float = 6.0
    protobuf_per_byte_us: float = 0.004
    http2_framing_us: float = 10.0  # HTTP/2 + gRPC channel work per msg
    kernel_tcp_us: float = 7.0  # syscall + TCP/IP per message
    kernel_wakeup_extra_us: float = 15.0  # scheduling latency (not CPU)
    iptables_redirect_us: float = 2.0  # netfilter REDIRECT to sidecar
    loopback_extra_us: float = 10.0  # loopback crossing to local proxy

    # -- Envoy sidecar, per traversal (one direction through one proxy) ----
    envoy_socket_us: float = 5.0
    envoy_http2_parse_us: float = 7.0
    envoy_header_decode_us: float = 2.0
    envoy_route_us: float = 2.0
    envoy_filter_us: float = 2.5  # per configured generic filter
    envoy_payload_marshal_us: float = 4.0  # body unmarshal for L7 filters
    envoy_reserialize_us: float = 4.0
    envoy_extra_latency_us: float = 210.0  # queueing/wakeups, not CPU
    envoy_wasm_filter_extra_us: float = 8.0  # per WASM (vs built-in) filter
    envoy_workers: int = 1  # one connection pins one worker thread

    # -- mRPC engine (ADN's software processor) ----------------------------
    mrpc_shm_post_us: float = 1.5  # app <-> engine shared-memory handoff
    mrpc_dispatch_us: float = 1.2  # engine event-loop dispatch per msg
    mrpc_tcp_batched_us: float = 2.0  # CPU per msg with adaptive batching
    mrpc_tcp_unbatched_extra_us: float = 5.5  # latency-only at low load
    mrpc_rx_wakeup_extra_us: float = 7.0  # receive-side wakeup (latency only)
    adn_header_codec_us: float = 0.5  # compact header encode/decode
    adn_header_per_field_us: float = 0.05
    element_dispatch_us: float = 0.3  # per element module invocation

    # -- platform multipliers on element execution cost ---------------------
    #: generated code vs hand-written: hand-coded modules skip generic
    #: tuple materialization (paper §6: ADN is 3–12% behind hand-coded)
    handcoded_element_factor: float = 0.72
    platform_element_factor: Dict[Platform, float] = field(
        default_factory=lambda: {
            Platform.RPC_LIB: 1.0,
            Platform.MRPC: 1.0,
            Platform.SIDECAR: 1.35,  # separate process, cache-cold
            Platform.KERNEL_EBPF: 0.8,  # no userspace crossing
            Platform.SMARTNIC: 0.9,  # slower cores, on-path
            Platform.SWITCH_P4: 0.0,  # line rate; latency charged below
        }
    )
    #: per-element *latency* adders by platform (crossing costs)
    platform_element_extra_us: Dict[Platform, float] = field(
        default_factory=lambda: {
            Platform.RPC_LIB: 0.0,
            Platform.MRPC: 0.0,
            Platform.SIDECAR: 25.0,  # extra process hop (shm or loopback)
            Platform.KERNEL_EBPF: 1.0,
            Platform.SMARTNIC: 2.0,
            Platform.SWITCH_P4: 0.5,  # pipeline pass
        }
    )
    #: per-element sandbox trampoline when hosted as a WASM proxy filter
    wasm_trampoline_us: float = 1.0

    # -- hardware offload substrate (repro.offload) -------------------------
    #: per-element match-action CPU on SmartNIC cores (charged to the
    #: NIC's own cores, never to host threads)
    nic_match_action_us: float = 0.4
    #: latency per extra pipeline pass when a placed chain exceeds the
    #: device's stage count (DeviceProfile.pipeline_stages) and must
    #: recirculate
    nic_recirculate_extra_us: float = 1.8
    switch_recirculate_extra_us: float = 0.6
    #: receive-side dispatching on the NIC: CPU the NIC spends steering
    #: a received RPC to the right host core (charged to the NIC)
    nic_rx_dispatch_us: float = 1.0
    #: host wakeup latency when the NIC has pre-steered the message to
    #: its core — replaces the engine's generic ``mrpc_rx_wakeup_extra_us``
    nic_rx_wakeup_extra_us: float = 2.0

    # -- network -----------------------------------------------------------
    wire_latency_us: float = 5.0  # per switch hop (propagation + switching)
    wire_per_byte_us: float = 0.0008  # 10 Gb/s serialization

    # -- derived helpers ----------------------------------------------------

    def envoy_traversal_cpu_us(
        self, filters: int, wasm_filters: int = 0, payload_bytes: int = 0
    ) -> float:
        """CPU to push one message through one sidecar, one direction."""
        return (
            self.envoy_socket_us
            + self.envoy_http2_parse_us
            + self.envoy_header_decode_us
            + self.envoy_route_us
            + filters * self.envoy_filter_us
            + wasm_filters * self.envoy_wasm_filter_extra_us
            + self.envoy_payload_marshal_us
            + self.envoy_reserialize_us
            + payload_bytes * self.protobuf_per_byte_us
        )

    def grpc_send_cpu_us(self, payload_bytes: int = 0) -> float:
        """Client/server CPU to emit one message through the gRPC stack."""
        return (
            self.protobuf_serialize_us
            + payload_bytes * self.protobuf_per_byte_us
            + self.http2_framing_us
            + self.kernel_tcp_us
        )

    def grpc_recv_cpu_us(self, payload_bytes: int = 0) -> float:
        return (
            self.kernel_tcp_us
            + self.http2_framing_us
            + self.protobuf_deserialize_us
            + payload_bytes * self.protobuf_per_byte_us
        )

    def wire_us(self, size_bytes: int, hops: int = 1) -> float:
        return self.wire_latency_us * hops + size_bytes * self.wire_per_byte_us

    def header_codec_us(self, field_count: int) -> float:
        return self.adn_header_codec_us + field_count * self.adn_header_per_field_us


#: The default calibration used by benchmarks and examples.
DEFAULT_COST_MODEL = CostModel()
