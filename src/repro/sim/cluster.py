"""Cluster topology: machines, threads, NICs, and a programmable ToR
switch, all backed by simulation resources.

The paper's testbed is two Xeon servers connected by a switch; the
default cluster mirrors that, and richer topologies (SmartNICs, extra
machines for scale-out) are opt-in flags so the Figure 2 configurations
can be expressed.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from ..errors import SimulationError
from ..net.l2 import VirtualL2
from .costmodel import DEFAULT_COST_MODEL, CostModel
from .engine import Simulator
from .resources import Resource


@dataclass
class Machine:
    """A host: named single-capacity threads (app threads, proxy workers,
    mRPC engines) plus an optional SmartNIC processor."""

    name: str
    sim: Simulator
    cores: int = 20
    has_smartnic: bool = False
    supports_ebpf: bool = True
    threads: Dict[str, Resource] = field(default_factory=dict)
    smartnic_cores: Optional[Resource] = None
    #: liveness flag flipped by the fault injector; a down machine
    #: blackholes traffic and stops heartbeating until restart
    up: bool = True
    crashed_at: Optional[float] = None
    restarted_at: Optional[float] = None
    #: control-channel reachability (repro.faults CONTROL_PARTITION):
    #: when False the machine is alive and serving dataplane traffic,
    #: but its heartbeat/command channel to the controller is severed —
    #: telemetry stops flowing and config pushes cannot land
    control_reachable: bool = True

    def __post_init__(self) -> None:
        if self.has_smartnic:
            self.smartnic_cores = Resource(
                self.sim, capacity=4, name=f"{self.name}/smartnic"
            )

    def crash(self) -> None:
        """Power-fail the host: everything in memory (element state,
        in-flight work) is gone; traffic toward it blackholes."""
        self.up = False
        self.crashed_at = self.sim.now

    def restart(self) -> None:
        """Bring the host back with empty memory. Processor instances
        must be re-created by whoever owns them (the fault injector
        does this for registered stacks)."""
        self.up = True
        self.restarted_at = self.sim.now

    def thread(self, name: str, capacity: int = 1) -> Resource:
        """Get or create a named thread pool on this machine."""
        key = f"{name}[{capacity}]"
        if key not in self.threads:
            if sum(r.capacity for r in self.threads.values()) + capacity > self.cores:
                raise SimulationError(
                    f"machine {self.name!r} out of cores for thread {name!r}"
                )
            self.threads[key] = Resource(
                self.sim, capacity=capacity, name=f"{self.name}/{name}"
            )
        return self.threads[key]

    def cpu_busy_s(self) -> float:
        """Total CPU-seconds consumed on this machine's host cores."""
        return sum(resource.busy_time for resource in self.threads.values())


@dataclass
class Switch:
    """The ToR switch; when programmable it can host P4 elements.

    Switch element execution does not consume host CPU — the pipeline
    runs at line rate — so the switch has no Resource; it contributes
    only per-pass latency (cost model) and entry-capacity limits.
    """

    name: str = "tor"
    programmable: bool = False
    pipeline_stages: int = 12
    table_entries: int = 65536
    installed_elements: List[str] = field(default_factory=list)

    def can_host(self, element_count: int) -> bool:
        return (
            self.programmable
            and len(self.installed_elements) + element_count
            <= self.pipeline_stages
        )


class Cluster:
    """Machines + switch + virtual L2, sharing one simulator and cost
    model."""

    def __init__(
        self,
        sim: Simulator,
        costs: Optional[CostModel] = None,
        programmable_switch: bool = False,
    ):
        self.sim = sim
        self.costs = costs or DEFAULT_COST_MODEL
        self.machines: Dict[str, Machine] = {}
        self.switch = Switch(programmable=programmable_switch)
        self.l2 = VirtualL2()

    def add_machine(
        self,
        name: str,
        cores: int = 20,
        has_smartnic: bool = False,
        supports_ebpf: bool = True,
    ) -> Machine:
        if name in self.machines:
            raise SimulationError(f"duplicate machine {name!r}")
        machine = Machine(
            name=name,
            sim=self.sim,
            cores=cores,
            has_smartnic=has_smartnic,
            supports_ebpf=supports_ebpf,
        )
        self.machines[name] = machine
        return machine

    def machine(self, name: str) -> Machine:
        try:
            return self.machines[name]
        except KeyError:
            raise SimulationError(f"unknown machine {name!r}") from None

    def cpu_busy_by_machine(self) -> Dict[str, float]:
        return {name: m.cpu_busy_s() for name, m in self.machines.items()}

    def machine_up(self, name: str) -> bool:
        """Liveness of a placement location. Locations without a host
        machine (the switch pipeline) never crash in this model."""
        machine = self.machines.get(name)
        return machine is None or machine.up

    def control_reachable(self, name: str) -> bool:
        """Can the controller reach this location's heartbeat/command
        channel? Unknown locations (the switch) are always reachable."""
        machine = self.machines.get(name)
        return machine is None or machine.control_reachable


def two_machine_cluster(
    sim: Simulator,
    costs: Optional[CostModel] = None,
    smartnics: bool = False,
    programmable_switch: bool = False,
) -> Cluster:
    """The paper's testbed: two hosts behind one ToR switch."""
    cluster = Cluster(sim, costs=costs, programmable_switch=programmable_switch)
    cluster.add_machine("client-host", has_smartnic=smartnics)
    cluster.add_machine("server-host", has_smartnic=smartnics)
    return cluster
