"""Metric collection: latency samples, throughput, CPU accounting.

The recorders are deliberately simple (lists + sorting) because bench
runs are a few thousand RPCs; exactness beats streaming quantile sketches
at this scale.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Optional


class LatencySeries:
    """Latency samples with percentile queries (values in seconds)."""

    def __init__(self, name: str = ""):
        self.name = name
        self.samples: List[float] = []

    def record(self, value: float) -> None:
        self.samples.append(value)

    def __len__(self) -> int:
        return len(self.samples)

    def percentile(self, p: float) -> float:
        """Linear-interpolated percentile, ``p`` in [0, 100]."""
        if not self.samples:
            return math.nan
        ordered = sorted(self.samples)
        if len(ordered) == 1:
            return ordered[0]
        rank = (p / 100.0) * (len(ordered) - 1)
        low = int(math.floor(rank))
        high = min(low + 1, len(ordered) - 1)
        fraction = rank - low
        return ordered[low] * (1 - fraction) + ordered[high] * fraction

    @property
    def median(self) -> float:
        return self.percentile(50)

    @property
    def p99(self) -> float:
        return self.percentile(99)

    @property
    def mean(self) -> float:
        if not self.samples:
            return math.nan
        return sum(self.samples) / len(self.samples)

    def median_us(self) -> float:
        return self.median * 1e6

    def mean_us(self) -> float:
        return self.mean * 1e6


@dataclass
class RunMetrics:
    """Everything measured in one experiment run."""

    #: end-to-end request→response latency at the client
    latency: LatencySeries = field(default_factory=LatencySeries)
    completed: int = 0
    aborted: int = 0
    issued: int = 0
    elapsed_s: float = 0.0
    #: cumulative CPU busy seconds by machine name
    cpu_busy_s: Dict[str, float] = field(default_factory=dict)
    #: wire bytes sent per hop label
    wire_bytes: Dict[str, int] = field(default_factory=dict)
    notes: Dict[str, object] = field(default_factory=dict)

    @property
    def throughput_rps(self) -> float:
        if self.elapsed_s <= 0:
            return 0.0
        return self.completed / self.elapsed_s

    @property
    def throughput_krps(self) -> float:
        return self.throughput_rps / 1e3

    def cpu_us_per_rpc(self, machine: Optional[str] = None) -> float:
        """Average CPU microseconds consumed per completed RPC."""
        if self.completed == 0:
            return math.nan
        if machine is not None:
            busy = self.cpu_busy_s.get(machine, 0.0)
        else:
            busy = sum(self.cpu_busy_s.values())
        return busy / self.completed * 1e6

    def check_littles_law(self, concurrency: int, tolerance: float = 0.25) -> bool:
        """Sanity invariant for closed-loop runs: N ≈ X · R."""
        if self.completed == 0 or not self.latency.samples:
            return False
        implied = self.throughput_rps * self.latency.mean
        return abs(implied - concurrency) / concurrency <= tolerance

    def summary(self) -> str:
        return (
            f"completed={self.completed} aborted={self.aborted} "
            f"rate={self.throughput_krps:.1f} krps "
            f"median={self.latency.median_us():.1f} us "
            f"p99={self.latency.percentile(99) * 1e6:.1f} us"
        )
