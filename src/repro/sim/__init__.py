"""Discrete-event simulation substrate: engine, resources, cluster,
cost model, workload generators, and metrics."""

from .cluster import Cluster, Machine, Switch, two_machine_cluster
from .costmodel import DEFAULT_COST_MODEL, CostModel
from .engine import MS, US, AllOf, AnyOf, Event, Process, Simulator, Timeout
from .metrics import LatencySeries, RunMetrics
from .resources import Resource, ResourceGroup, Store
from .workload import ClosedLoopClient, OpenLoopClient, SteppedLoadClient

__all__ = [
    "AllOf",
    "AnyOf",
    "ClosedLoopClient",
    "Cluster",
    "CostModel",
    "DEFAULT_COST_MODEL",
    "Event",
    "LatencySeries",
    "MS",
    "Machine",
    "OpenLoopClient",
    "Process",
    "Resource",
    "ResourceGroup",
    "RunMetrics",
    "Simulator",
    "SteppedLoadClient",
    "Store",
    "Switch",
    "Timeout",
    "US",
    "two_machine_cluster",
]
