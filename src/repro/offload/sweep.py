"""The NIC-shed-vs-server-shed benchmark (ROADMAP item 5's payoff).

PR 5's overload sweep showed that *shedding at all* beats queueing.
This sweep asks the follow-up question the offload substrate exists to
answer: **where** should the shed happen? Both variants drive the same
two-service mesh (gateway → backend, an ``Acl, Logging, Compression``
edge chain) at 0.5x..3x capacity with admission control on:

* ``shed_at="server"`` — the whole chain runs in the backend host's
  mRPC engine. Every shed still costs the host real work: the engine
  wakes up, decodes the header, runs admission, and pays the return
  transport for the abort;
* ``shed_at="nic"`` — the edge declares ``offload="nic"``: split-chain
  compilation moves the device-legal ``Acl, Logging`` prefix onto the
  backend's SmartNIC (``Compression`` is payload-touching and stays on
  the host). The NIC's admission controller watches the *host engine's*
  backpressure and sheds in front of it; a shed RPC never wakes the
  host, and the abort's return transport is paid by NIC cores.

At 3x load the difference is structural, not a tuning artifact: the
host-only variant spends engine cycles on RPCs it then rejects, the NIC
variant spends those cycles on admitted work. Mesh goodput rises and
host CPU-seconds per admitted RPC falls. Everything is seeded — same
config, same numbers, every run (the benchmark pins are bit-identical).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..dsl.schema import FieldType, RpcSchema
from ..dsl.stdlib import load_stdlib
from ..graph.model import GraphBuilder
from ..graph.placement import MachineSpec, solve_graph_placement
from ..graph.runtime import GraphRuntime, build_graph_cluster
from ..overload.admission import AdmissionConfig
from ..platforms import Platform
from ..runtime.message import reset_rpc_ids
from ..runtime.processor import PlacementPlan, PlacementSegment
from ..sim.costmodel import CostModel
from ..sim.engine import Simulator

OFFLOAD_SCHEMA = RpcSchema.of(
    "offload",
    payload=FieldType.BYTES,
    username=FieldType.STR,
    obj_id=FieldType.INT,
)

#: the two shed points under comparison
SHED_POINTS = ("server", "nic")


@dataclass(frozen=True)
class OffloadSweepConfig:
    """One comparison's shape. Mirrors the PR 5 sweep: the inflated
    ``service_cost_us`` sets capacity so the whole sweep stays cheap."""

    #: the edge chain: Acl + Logging are NIC-legal (eBPF subset, tables
    #: fit); Compression touches the payload and must stay on the host —
    #: exactly the split the paper's Figure 2 config 3 gestures at
    elements: Tuple[str, ...] = ("Acl", "Logging", "Compression")
    service_cost_us: float = 36.0
    #: nominal 1x load; the host-only variant saturates its engine just
    #: above this (3 elements x 2 directions x service_cost_us + transport)
    capacity_rps: float = 4_000.0
    multipliers: Tuple[float, ...] = (0.5, 1.0, 2.0, 3.0)
    duration_s: float = 0.25
    drain_s: float = 0.05
    seed: int = 1
    # protection knobs (both variants get identical protection; only the
    # shed point moves)
    queue_limit: int = 48
    target_delay_ms: float = 2.0
    codel_interval_ms: float = 10.0
    deadline_budget_ms: float = 20.0
    max_attempts: int = 4
    per_attempt_timeout_ms: float = 5.0


@dataclass
class OffloadPoint:
    """One (shed-point, offered-load) cell of the comparison."""

    shed_at: str
    multiplier: float
    offered_rps: float
    issued: int = 0
    ok: int = 0
    aborted: int = 0
    goodput_rps: float = 0.0
    p50_ok_ms: float = 0.0
    aborted_by: Dict[str, int] = field(default_factory=dict)
    #: admission sheds, split by where they happened
    sheds_at_nic: int = 0
    sheds_at_host: int = 0
    queue_rejects: int = 0
    deadline_drops: int = 0
    #: CPU-seconds burned on the backend host's threads (the NIC's own
    #: cores are accounted separately — that is the point)
    host_cpu_s: float = 0.0
    nic_cpu_s: float = 0.0
    #: the acceptance metric: host CPU-milliseconds per admitted RPC
    host_cpu_ms_per_ok: float = 0.0
    #: elements the split moved onto the device ([] for host-only)
    offloaded_prefix: List[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "shed_at": self.shed_at,
            "multiplier": self.multiplier,
            "offered_rps": self.offered_rps,
            "issued": self.issued,
            "ok": self.ok,
            "aborted": self.aborted,
            "goodput_rps": round(self.goodput_rps, 3),
            "p50_ok_ms": round(self.p50_ok_ms, 4),
            "aborted_by": dict(sorted(self.aborted_by.items())),
            "sheds_at_nic": self.sheds_at_nic,
            "sheds_at_host": self.sheds_at_host,
            "queue_rejects": self.queue_rejects,
            "deadline_drops": self.deadline_drops,
            "host_cpu_s": round(self.host_cpu_s, 6),
            "nic_cpu_s": round(self.nic_cpu_s, 6),
            "host_cpu_ms_per_ok": round(self.host_cpu_ms_per_ok, 6),
            "offloaded_prefix": list(self.offloaded_prefix),
        }


def build_offload_mesh(
    sim: Simulator,
    shed_at: str,
    config: Optional[OffloadSweepConfig] = None,
) -> GraphRuntime:
    """The mesh under test: gateway on the client host, backend on the
    server host, one edge carrying the chain. ``shed_at="nic"`` lets
    the edge's declared offload tier stand; ``shed_at="server"``
    overrides the edge plan to all-host so both variants run the exact
    same elements on the exact same machines minus the split."""
    if shed_at not in SHED_POINTS:
        raise ValueError(
            f"unknown shed point {shed_at!r} (choose from {SHED_POINTS})"
        )
    config = config or OffloadSweepConfig()
    program = load_stdlib(schema=OFFLOAD_SCHEMA)
    graph = (
        GraphBuilder("offload-sweep")
        .service("gateway", machine="client-host")
        .service("backend", machine="server-host")
        .edge(
            "gateway",
            "backend",
            elements=config.elements,
            admission=True,
            queue_limit=config.queue_limit,
            deadline_budget_ms=config.deadline_budget_ms,
            max_attempts=config.max_attempts,
            per_attempt_timeout_ms=config.per_attempt_timeout_ms,
            offload="nic" if shed_at == "nic" else None,
        )
        .build()
    )
    machines = [MachineSpec("client-host"), MachineSpec("server-host")]
    placement = solve_graph_placement(
        graph, program, OFFLOAD_SCHEMA, machines=machines
    )
    edge_key = ("gateway", "backend")
    if shed_at == "server":
        # force the comparison baseline: the whole chain in the backend
        # host's engine (the PR 5 protected-stack shape)
        chain = placement.edge_chains[edge_key]
        placement.edge_plans[edge_key] = PlacementPlan(
            segments=[
                PlacementSegment(
                    platform=Platform.MRPC,
                    machine="server-host",
                    elements=chain.element_order,
                    stages=chain.ir.stages,
                    queue_limit=config.queue_limit,
                )
            ],
            description="offload sweep: host-only baseline",
        )
    costs = CostModel(element_dispatch_us=config.service_cost_us)
    cluster = build_graph_cluster(sim, placement, costs=costs)
    return GraphRuntime(
        sim,
        cluster,
        placement,
        OFFLOAD_SCHEMA,
        admission=AdmissionConfig(
            target_delay_ms=config.target_delay_ms,
            interval_ms=config.codel_interval_ms,
            seed=config.seed,
        ),
        seed=config.seed,
    )


def run_offload_point(
    multiplier: float,
    shed_at: str,
    config: Optional[OffloadSweepConfig] = None,
) -> OffloadPoint:
    """One fresh simulation at ``multiplier`` x nominal capacity."""
    config = config or OffloadSweepConfig()
    reset_rpc_ids()
    sim = Simulator()
    runtime = build_offload_mesh(sim, shed_at, config)
    offered_rps = multiplier * config.capacity_rps
    rng = random.Random(config.seed)

    point = OffloadPoint(
        shed_at=shed_at,
        multiplier=multiplier,
        offered_rps=offered_rps,
    )
    ok_latencies: List[float] = []

    def one(fields: Dict[str, object]):
        outcome = yield sim.process(runtime.entry_call(**fields))
        if outcome.ok:
            point.ok += 1
            ok_latencies.append(outcome.completed_at - outcome.issued_at)
        else:
            point.aborted += 1
            reason = outcome.aborted_by or "unknown"
            point.aborted_by[reason] = point.aborted_by.get(reason, 0) + 1

    def arrivals():
        started = sim.now
        while sim.now - started < config.duration_s:
            yield sim.timeout(rng.expovariate(offered_rps))
            point.issued += 1
            sim.process(
                one(
                    {
                        # usr2 holds write permission in the stdlib Acl
                        # table: the interesting drops are sheds, not
                        # denials
                        "payload": b"x" * 64,
                        "username": "usr2",
                        "obj_id": rng.randrange(1 << 12),
                    }
                )
            )

    sim.process(arrivals())
    sim.run(until=sim.now + config.duration_s + config.drain_s)

    point.goodput_rps = point.ok / config.duration_s
    if ok_latencies:
        ok_latencies.sort()
        point.p50_ok_ms = ok_latencies[len(ok_latencies) // 2] * 1e3

    cluster = runtime.cluster
    for stack in runtime.stacks.values():
        for processor in stack.processors:
            if processor.segment.platform is Platform.SMARTNIC:
                point.sheds_at_nic += processor.rpcs_shed
            else:
                point.sheds_at_host += processor.rpcs_shed
            point.queue_rejects += processor.rpcs_queue_rejected
            point.deadline_drops += processor.rpcs_deadline_expired
        point.deadline_drops += stack.deadline_expired_at_server
    server = cluster.machine("server-host")
    point.host_cpu_s = server.cpu_busy_s()
    if server.smartnic_cores is not None:
        point.nic_cpu_s = server.smartnic_cores.busy_time
    if point.ok:
        point.host_cpu_ms_per_ok = point.host_cpu_s * 1e3 / point.ok
    decision = runtime.placement.edge_offloads.get(("gateway", "backend"))
    if decision is not None:
        point.offloaded_prefix = list(decision.prefix)
    return point


def run_offload_comparison(
    config: Optional[OffloadSweepConfig] = None,
) -> Dict[str, List[OffloadPoint]]:
    """Both shed points across the full multiplier range."""
    config = config or OffloadSweepConfig()
    return {
        shed_at: [
            run_offload_point(multiplier, shed_at, config)
            for multiplier in config.multipliers
        ]
        for shed_at in SHED_POINTS
    }


def format_comparison(results: Dict[str, List[OffloadPoint]]) -> str:
    """A paper-style text table: one block per shed point."""
    lines: List[str] = []
    for shed_at in SHED_POINTS:
        points = results.get(shed_at, [])
        if not points:
            continue
        prefix = points[0].offloaded_prefix
        where = (
            f"NIC runs {', '.join(prefix)}" if prefix else "all on host"
        )
        lines.append(f"shed at {shed_at} ({where})")
        lines.append(
            f"{'offered x':>10s} {'goodput rps':>12s} {'p50 ok ms':>10s} "
            f"{'nic sheds':>10s} {'host sheds':>11s} {'qfull':>6s} "
            f"{'host cpu s':>11s} {'cpu ms/ok':>10s}"
        )
        for point in points:
            lines.append(
                f"{point.multiplier:>10.1f} {point.goodput_rps:>12.0f} "
                f"{point.p50_ok_ms:>10.2f} {point.sheds_at_nic:>10d} "
                f"{point.sheds_at_host:>11d} {point.queue_rejects:>6d} "
                f"{point.host_cpu_s:>11.4f} {point.host_cpu_ms_per_ok:>10.4f}"
            )
        lines.append("")
    return "\n".join(lines).rstrip()
