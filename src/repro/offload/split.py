"""Split-chain compilation: carve a device-legal prefix off a chain.

The placement solver already decides *where* elements go; this module
answers the harder operational question for ROADMAP item 5 — given a
chain assigned to an edge, which *prefix* can execute on the NIC or
switch **in front of** the host, and is that split provably sound?

The split is conservative by construction:

* elements join the prefix front-to-back only — an RPC crosses the
  device exactly once on its way to the host, so offloaded elements
  must form a contiguous prefix of the (already optimized and
  reordered) chain;
* an element joins only if the device's backend accepts it (the
  NIC runs the eBPF subset under SmartNIC capacity limits, the switch
  runs P4 within the hop's parse window) — a *fused* element is refused
  whole (backends keep hardware programs per-element), so a fusion
  straddling the ideal split boundary pins the whole fused group to
  the host rather than splitting it open;
* cumulative state-table bytes and registers are checked against the
  device's :class:`~repro.offload.device.DeviceProfile`; the element
  that would overflow produces an **ADN406** diagnostic and the walk
  stops — capacity refusals fall back to host placement, never crash;
* finally the split is **translation-validated**: the prefix+suffix
  recomposition must be semantically equal to the original chain
  (:func:`repro.analysis.validate.validate_rewrite`). A failed verdict
  cancels the offload.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..analysis.validate import ValidationVerdict, validate_rewrite
from ..compiler.compiler import CompiledChain
from ..compiler.headers import check_switch_window, plan_hop_headers
from ..dsl.schema import RpcSchema
from ..errors import HeaderLayoutError
from ..lint.diagnostics import Diagnostic, Severity
from ..platforms import Platform
from ..runtime.processor import SWITCH_LOCATION, PlacementPlan, PlacementSegment
from .device import DeviceProfile, check_capacity, device_profile_for

#: offload tier name → (device platform, backend that must accept the
#: element, host-side suffix platform)
OFFLOAD_TIERS: Dict[str, Tuple[Platform, str]] = {
    "nic": (Platform.SMARTNIC, "nic"),
    "switch": (Platform.SWITCH_P4, "p4"),
}


@dataclass
class SplitDecision:
    """The outcome of one split-chain solve."""

    tier: str
    platform: Platform
    profile: DeviceProfile
    #: element names executing on the device, in chain order
    prefix: Tuple[str, ...] = ()
    #: element names staying on the host, in chain order
    suffix: Tuple[str, ...] = ()
    #: why the walk stopped where it did ("" when the whole chain fits)
    boundary_reason: str = ""
    #: ADN406 etc. raised while solving (host fallback, not a crash)
    diagnostics: List[Diagnostic] = field(default_factory=list)
    #: translation-validation verdict for the split (None when there was
    #: nothing to validate, i.e. empty prefix)
    verdict: Optional[ValidationVerdict] = None
    #: device table bytes pinned by the prefix
    table_bytes: int = 0

    @property
    def offloaded(self) -> bool:
        return bool(self.prefix)

    def to_dict(self) -> dict:
        return {
            "tier": self.tier,
            "prefix": list(self.prefix),
            "suffix": list(self.suffix),
            "boundary_reason": self.boundary_reason,
            "table_bytes": self.table_bytes,
            "validated": None if self.verdict is None else self.verdict.ok,
            "diagnostics": [diag.to_dict() for diag in self.diagnostics],
        }


def _switch_window_ok(
    chain: CompiledChain, schema: RpcSchema, name: str
) -> bool:
    """P4 parse-window constraint (same rule the placement solver
    applies): the element may only read fields inside the hop's minimal
    header window."""
    index = chain.element_order.index(name)
    try:
        plans = plan_hop_headers(chain.ir, schema, [index - 1])
    except HeaderLayoutError:
        return False
    layout = plans[0].layout
    analysis = chain.elements[name].analysis
    handler = analysis.handlers.get("request") if analysis else None
    reads = sorted(handler.fields_read) if handler else []
    try:
        check_switch_window(layout, reads)
    except HeaderLayoutError:
        return False
    return True


def _capacity_diagnostic(
    name: str, profile: DeviceProfile, why: str, path: str
) -> Diagnostic:
    return Diagnostic(
        code="ADN406",
        severity=Severity.WARNING,
        message=(
            f"element {name!r} does not fit the {profile.name} with "
            f"the prefix already placed there: {why}; falling back to "
            "host placement for it and everything after it"
        ),
        path=path,
        element=name,
        fix=(
            "shrink the element's state tables (lower its "
            "`table_entries` meta) or accept the host fallback"
        ),
    )


def split_chain(
    chain: CompiledChain,
    schema: RpcSchema,
    tier: str,
    path: str = "<chain>",
    registry=None,
) -> SplitDecision:
    """Carve the longest device-legal, capacity-fitting prefix off
    ``chain`` for the given offload tier ("nic" or "switch")."""
    if tier not in OFFLOAD_TIERS:
        raise ValueError(
            f"unknown offload tier {tier!r} "
            f"(choose from {sorted(OFFLOAD_TIERS)})"
        )
    platform, backend = OFFLOAD_TIERS[tier]
    profile = device_profile_for(platform)
    decision = SplitDecision(tier=tier, platform=platform, profile=profile)
    order = list(chain.element_order)

    prefix: List[str] = []
    for name in order:
        compiled = chain.elements[name]
        ir = compiled.ir
        # the device sits in front of the server; an element pinned to
        # the sender cannot run there
        if ir.position == "sender":
            decision.boundary_reason = (
                f"{name} is pinned to the sender side"
            )
            break
        if backend not in compiled.legal_backends():
            report = compiled.legality.get(backend)
            violations = list(report.violations) if report else ["illegal"]
            why = "; ".join(violations)
            if "fused_from" in ir.meta:
                why = (
                    "fused element straddles the split boundary "
                    f"({why})"
                )
            elif violations and all(
                v.startswith("device capacity:") for v in violations
            ):
                # the nic backend folds per-element capacity into its
                # legality; that refusal is still a capacity fallback
                # and deserves the same ADN406 the cumulative check emits
                decision.diagnostics.append(
                    _capacity_diagnostic(name, profile, why, path)
                )
            decision.boundary_reason = f"{name}: {why}"
            break
        if tier == "switch" and not _switch_window_ok(chain, schema, name):
            decision.boundary_reason = (
                f"{name} reads fields outside the hop's P4 parse window"
            )
            break
        capacity = check_capacity(
            profile, [chain.elements[member].ir for member in prefix + [name]]
        )
        if not capacity.fits:
            why = "; ".join(capacity.violations)
            decision.boundary_reason = f"{name}: device capacity ({why})"
            decision.diagnostics.append(
                _capacity_diagnostic(name, profile, why, path)
            )
            break
        prefix.append(name)

    suffix = order[len(prefix):]
    decision.prefix = tuple(prefix)
    decision.suffix = tuple(suffix)
    decision.table_bytes = check_capacity(
        profile, [chain.elements[member].ir for member in prefix]
    ).table_bytes

    if prefix:
        before = [chain.elements[name].ir for name in order]
        after = [chain.elements[name].ir for name in prefix + suffix]
        decision.verdict = validate_rewrite(
            before,
            after,
            schema,
            registry=registry,
            pass_name=f"offload-split:{tier}",
        )
        if decision.verdict.ok is False:
            decision.boundary_reason = (
                "translation validation refused the split: "
                f"{decision.verdict.counterexample}"
            )
            decision.prefix = ()
            decision.suffix = tuple(order)
            decision.table_bytes = 0
    return decision


def _local_stages(
    chain: CompiledChain, elements: Sequence[str]
) -> Tuple[Tuple[str, ...], ...]:
    """Restrict the chain's parallel stages to one segment's elements,
    preserving stage grouping (same rule as the placement solver)."""
    member_set = set(elements)
    local: List[Tuple[str, ...]] = []
    for stage in chain.ir.stages:
        members = tuple(name for name in stage if name in member_set)
        if members:
            local.append(members)
    return tuple(local)


def solve_offload_plan(
    chain: CompiledChain,
    schema: RpcSchema,
    tier: str,
    server_machine: str = "server-host",
    queue_limit: Optional[int] = None,
    path: str = "<chain>",
    registry=None,
) -> Tuple[PlacementPlan, SplitDecision]:
    """Build a placement plan that runs the device-legal prefix on the
    offload tier in front of ``server_machine`` and the rest in the
    host's mRPC engine. An empty prefix degenerates to the all-host
    plan (the documented fallback)."""
    decision = split_chain(chain, schema, tier, path=path, registry=registry)
    segments: List[PlacementSegment] = []
    if decision.prefix:
        machine = (
            SWITCH_LOCATION
            if decision.platform is Platform.SWITCH_P4
            else server_machine
        )
        segments.append(
            PlacementSegment(
                platform=decision.platform,
                machine=machine,
                elements=decision.prefix,
                stages=_local_stages(chain, decision.prefix),
                queue_limit=queue_limit,
            )
        )
    if decision.suffix or not decision.prefix:
        segments.append(
            PlacementSegment(
                platform=Platform.MRPC,
                machine=server_machine,
                elements=decision.suffix,
                stages=_local_stages(chain, decision.suffix),
                queue_limit=queue_limit,
            )
        )
    label = (
        f"offload={tier} prefix={len(decision.prefix)}"
        if decision.prefix
        else f"offload={tier} host-fallback"
    )
    plan = PlacementPlan(segments=segments, description=label)
    return plan, decision
