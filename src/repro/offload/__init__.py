"""Offload substrate: simulated NIC/switch dataplanes that execute
legal element prefixes in front of the host (ROADMAP item 5).

* :mod:`repro.offload.device` — per-platform capability descriptors
  (pipeline stages, table bytes, registers) and static table-memory
  estimators;
* :mod:`repro.offload.split` — split-chain compilation: carve the
  longest device-legal prefix off a chain, translation-validate the
  split, and fall back to host placement with a diagnostic when the
  device refuses;
* :mod:`repro.offload.sweep` — the NIC-shed-vs-server-shed overload
  benchmark (goodput and host CPU per admitted RPC at 3x load).
"""

from .device import (
    DEVICE_PROFILES,
    CapacityReport,
    DeviceProfile,
    chain_table_bytes,
    check_capacity,
    device_profile_for,
    element_table_bytes,
)
from .split import SplitDecision, solve_offload_plan, split_chain

__all__ = [
    "DEVICE_PROFILES",
    "CapacityReport",
    "DeviceProfile",
    "SplitDecision",
    "chain_table_bytes",
    "check_capacity",
    "device_profile_for",
    "element_table_bytes",
    "solve_offload_plan",
    "split_chain",
]
