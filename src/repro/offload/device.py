"""Hardware device model for the offload substrate.

The paper (§3, Figure 2) lets elements run on a SmartNIC or a
programmable switch, but those devices are nothing like host cores: a
match-action pipeline has a *fixed number of stages* (a chain longer
than the pipeline must recirculate, paying another pass through it), a
*bounded table memory* (SRAM/TCAM measured in megabytes, not the host's
gigabytes), and a small register file for scalar state. This module is
the single source of truth for those capabilities:

* :class:`DeviceProfile` — one device's capability descriptor (stages,
  table bytes, registers); the matching execution costs (per-packet
  match-action cost, recirculation penalty, NIC-side receive dispatch)
  live in :class:`~repro.sim.costmodel.CostModel` with every other
  calibrated microsecond;
* :data:`DEVICE_PROFILES` — the default profile per hardware-ish
  platform. ``KERNEL_EBPF`` gets a profile too, with host-memory-sized
  tables: the kernel runs the same instruction subset as the SmartNIC
  but is *not* memory-bound the way the NIC is — conflating the two
  (the old shared ``"ebpf"`` backend name) is exactly the bug the
  per-platform descriptors fix;
* :func:`element_table_bytes` / :func:`chain_table_bytes` — static
  estimators of how much device memory an element's state tables pin,
  derived from the same column widths and default map capacity the eBPF
  emitter generates (``ADN_HASH_MAP(..., 65536)`` /
  ``ADN_RINGBUF(..., 1 << 20)``);
* :func:`check_capacity` — does a run of elements fit a device? Returns
  a report, never raises: capacity refusals downstream become host
  fallbacks with a diagnostic (ADN406), not crashes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

from ..dsl.schema import FieldType
from ..ir.nodes import ElementIR
from ..platforms import Platform

#: default hash-map capacity the eBPF/NIC emitters allocate per keyed
#: table — the estimator must agree with the generated code
DEFAULT_TABLE_ENTRIES = 65536

#: bytes reserved per append-only table (lowered to a ring buffer of
#: fixed size, matching ``ADN_RINGBUF(..., 1 << 20)``)
RINGBUF_BYTES = 1 << 20

#: element meta key overriding the per-table entry count (how an element
#: declares that its tables are sized for, say, per-flow state)
TABLE_ENTRIES_META = "table_entries"

#: on-device width of one column, in bytes (mirrors the eBPF backend's
#: ``_C_TYPES``: fixed 32-byte strings, 8-byte scalars, byte flags)
_COLUMN_BYTES: Dict[FieldType, int] = {
    FieldType.INT: 8,
    FieldType.FLOAT: 8,  # Q32.32 fixed point
    FieldType.BOOL: 1,
    FieldType.STR: 32,
    FieldType.BYTES: 32,
}


@dataclass(frozen=True)
class DeviceProfile:
    """Capabilities and cost parameters of one hardware processor."""

    name: str
    platform: Platform
    #: match-action pipeline stages one pass executes; a chain placing
    #: more elements than this recirculates (extra passes)
    pipeline_stages: int
    #: total SRAM available for element state tables
    table_bytes: int
    #: scalar registers (one per element ``var``)
    registers: int

    def recirculations(self, element_count: int) -> int:
        """Extra pipeline passes needed to run ``element_count``
        elements (0 when the chain fits one pass)."""
        if element_count <= 0:
            return 0
        return (element_count - 1) // self.pipeline_stages


#: default capability descriptors per platform. The asymmetry between
#: SMARTNIC and KERNEL_EBPF table budgets is the de-conflation: both run
#: the eBPF instruction subset, but the kernel maps live in host DRAM
#: while the NIC's live in a few MB of on-card SRAM.
DEVICE_PROFILES: Dict[Platform, DeviceProfile] = {
    Platform.SMARTNIC: DeviceProfile(
        name="smartnic",
        platform=Platform.SMARTNIC,
        pipeline_stages=8,
        table_bytes=16 * 1024 * 1024,  # 16 MiB on-card SRAM
        registers=64,
    ),
    Platform.SWITCH_P4: DeviceProfile(
        name="switch",
        platform=Platform.SWITCH_P4,
        pipeline_stages=12,
        table_bytes=8 * 1024 * 1024,  # 8 MiB across pipeline stages
        registers=32,
    ),
    Platform.KERNEL_EBPF: DeviceProfile(
        name="kernel",
        platform=Platform.KERNEL_EBPF,
        pipeline_stages=32,  # tail-call chain depth, effectively deep
        table_bytes=512 * 1024 * 1024,  # BPF maps live in host DRAM
        registers=512,
    ),
}


def device_profile_for(platform: Platform) -> Optional[DeviceProfile]:
    """The capability descriptor for a platform, or None for software
    platforms (whose capacity is modeled by host cores, not here)."""
    return DEVICE_PROFILES.get(platform)


def table_entries_for(ir: ElementIR) -> int:
    """Entries allocated per keyed table of this element (meta override
    or the emitter default)."""
    raw = ir.meta.get(TABLE_ENTRIES_META, DEFAULT_TABLE_ENTRIES)
    try:
        return max(1, int(raw))
    except (TypeError, ValueError):
        return DEFAULT_TABLE_ENTRIES


def element_table_bytes(ir: ElementIR) -> int:
    """Device memory one element's state tables pin: keyed tables at
    their allocated entry count times the on-device row width,
    append-only tables at the fixed ring-buffer size."""
    entries = table_entries_for(ir)
    total = 0
    for decl in ir.states:
        if decl.append_only:
            total += RINGBUF_BYTES
            continue
        row = sum(
            _COLUMN_BYTES.get(column.type, 8) for column in decl.columns
        )
        total += entries * row
    return total


def element_registers(ir: ElementIR) -> int:
    """Scalar registers an element's ``var`` declarations pin."""
    return len(ir.vars)


def chain_table_bytes(irs: Iterable[ElementIR]) -> int:
    return sum(element_table_bytes(ir) for ir in irs)


@dataclass
class CapacityReport:
    """Outcome of checking a run of elements against one device."""

    profile: DeviceProfile
    table_bytes: int = 0
    registers: int = 0
    violations: List[str] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.violations is None:
            self.violations = []

    @property
    def fits(self) -> bool:
        return not self.violations


def check_capacity(
    profile: DeviceProfile, irs: Sequence[ElementIR]
) -> CapacityReport:
    """Do these elements' state tables and registers fit the device?

    Never raises — callers turn a non-fitting report into a host
    fallback plus an ADN406 diagnostic.
    """
    report = CapacityReport(profile=profile)
    for ir in irs:
        report.table_bytes += element_table_bytes(ir)
        report.registers += element_registers(ir)
    if report.table_bytes > profile.table_bytes:
        report.violations.append(
            f"state tables need {report.table_bytes} bytes; "
            f"{profile.name} offers {profile.table_bytes}"
        )
    if report.registers > profile.registers:
        report.violations.append(
            f"element vars need {report.registers} registers; "
            f"{profile.name} offers {profile.registers}"
        )
    return report
